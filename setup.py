"""Shim so `pip install -e .` works offline (no `wheel` package available,
so the PEP 517 editable path can't build; this enables the legacy path:
`pip install -e . --no-build-isolation`)."""

from setuptools import setup

setup()
