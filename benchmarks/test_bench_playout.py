"""Benchmark E14 — client playout quality across the capacity cliff."""

from benchmarks.conftest import headline, publish
from repro.experiments.playout import format_playout, run_playout


def test_bench_playout(benchmark):
    points = benchmark.pedantic(
        run_playout, kwargs={"stream_counts": (22, 24), "duration": 45.0}, rounds=1
    )
    inside, beyond = points
    publish(
        benchmark, "playout", format_playout(points),
        stalls_at_22=inside.total_underflows,
        stalls_at_24=beyond.total_underflows,
    )
    headline(
        "playout", "underflows_at_22", inside.total_underflows, "still-frames",
    )
    headline(
        "playout", "underflows_at_24", beyond.total_underflows, "still-frames",
    )
    # §2.2.1's buffer argument holds inside capacity: zero still-frames.
    assert inside.underflowing_streams == 0
    # Past the Graph 1 cliff the buffer can no longer hide the server.
    assert beyond.underflowing_streams > inside.underflowing_streams
    assert beyond.total_underflows > 0
