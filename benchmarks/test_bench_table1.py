"""Benchmark E1 — regenerates Table 1 (baseline measurements)."""

from benchmarks.conftest import headline, publish
from repro.experiments.table1 import PAPER_TABLE1, format_table1, run_table1


def test_bench_table1(benchmark):
    rows = benchmark.pedantic(run_table1, kwargs={"duration": 20.0}, rounds=1)
    text = format_table1(rows)
    by_label = {row.label: row for row in rows}
    publish(
        benchmark, "table1", text,
        fddi_only=by_label["0 disk"].fddi_only,
        one_disk=by_label["1 disk (one HBA)"].disks_only[0],
        two_hba_combined_fddi=by_label["2 disk (two HBA)"].combined_fddi,
    )
    headline(
        "table1", "fddi_only_mb_s",
        round(by_label["0 disk"].fddi_only, 2), "MB/s",
    )
    headline(
        "table1", "two_hba_combined_fddi_mb_s",
        round(by_label["2 disk (two HBA)"].combined_fddi, 2), "MB/s",
    )
    # Paper shape: FDDI-only tops the chart; two active HBAs collapse it.
    assert by_label["0 disk"].fddi_only > 8.0
    assert (
        by_label["2 disk (two HBA)"].combined_fddi
        < by_label["2 disk (one HBA)"].combined_fddi * 0.65
    )
