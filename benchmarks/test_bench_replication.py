"""Benchmark E11 — the §2.3.3 replication alternative (extension)."""

from benchmarks.conftest import headline, publish
from repro.experiments.replication import format_replication, run_replication


def test_bench_replication(benchmark):
    results = benchmark.pedantic(run_replication, rounds=1)
    single, replicated = results
    publish(
        benchmark, "replication", format_replication(results),
        single_admitted=single.admitted,
        replicated_admitted=replicated.admitted,
        copy_blocks=replicated.extra_blocks,
    )
    headline(
        "replication", "admitted_gain",
        replicated.admitted - single.admitted, "streams",
        copy_blocks=replicated.extra_blocks,
    )
    # A second copy of the hot item converts the idle disk's bandwidth
    # into admitted streams, at a disk-space cost (§2.3.3).
    assert replicated.admitted > single.admitted
    assert replicated.extra_blocks > 0
    assert replicated.queued < single.queued
