"""Benchmark E22 — live TV channels under a channel-surfing population."""

from benchmarks.conftest import headline, publish
from repro.experiments.live import format_live, run_live, run_live_chaos


def test_bench_live(benchmark):
    def run():
        return run_live(), run_live_chaos()

    point, reports = benchmark.pedantic(run, rounds=1)
    publish(
        benchmark, "live", format_live(point, reports),
        channels=point.n_channels,
        surfers=point.n_surfers,
        joins=point.joins,
        peak_viewers=point.peak_viewers,
        pauses=point.pauses,
        rewinds=point.rewinds,
        merges=point.merges,
        pages_trimmed=point.pages_trimmed,
        chaos_seeds=len(reports),
    )
    headline(
        "live", "viewers_per_disk", round(point.viewers_per_disk, 1),
        "viewers", peak=point.peak_viewers, busy_disks=point.busy_disks,
        note="disk cost is per channel, not per viewer",
    )
    headline(
        "live", "rewind_hit_rate", round(point.rewind_hit_rate, 3), "ratio",
        rewinds=point.rewinds, ring_seconds=5.0,
    )
    headline(
        "live", "surf_join_latency_p95",
        round(point.join_latency_p95 * 1e3, 1), "ms",
        mean_ms=round(point.join_latency_mean * 1e3, 1),
        joins=point.joins,
    )
    # Acceptance bar: >=3 channels ingest live while >=50 viewers surf
    # with pause/rewind-live; one fan-out slot per channel carries many
    # viewers; the time-shift ring both serves rewinds and reclaims its
    # blocks; and the seeded chaos sweep ends with zero invariant
    # violations across every tier.
    assert point.n_channels >= 3
    assert point.n_surfers >= 50
    assert point.channels_opened == point.n_channels
    assert point.channels_closed == point.n_channels
    assert point.joins >= point.n_surfers
    assert point.peak_viewers > 2 * point.busy_disks
    assert point.rewinds > 0 and point.rewind_hit_rate > 0.5
    assert point.merges > 0
    assert point.pages_trimmed > 0
    assert point.drain_violations == 0
    assert reports and all(report.ok for report in reports)
