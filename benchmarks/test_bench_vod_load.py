"""Benchmark E12 — offered-load admission sweep (extension)."""

from benchmarks.conftest import headline, publish
from repro.experiments.vod_load import format_vod_load, run_vod_load


def test_bench_vod_load(benchmark):
    points = benchmark.pedantic(run_vod_load, rounds=1)
    publish(
        benchmark, "vod_load", format_vod_load(points),
        blocking=[p.blocking_probability for p in points],
    )
    headline(
        "vod_load", "peak_blocking_probability",
        round(points[-1].blocking_probability, 4), "fraction",
        concurrent_peak=max(p.concurrent_peak for p in points),
    )
    # Blocking is monotone in offered load and concurrency never exceeds
    # the MSU's stream capacity.
    blocking = [p.blocking_probability for p in points]
    assert blocking == sorted(blocking)
    assert points[0].blocking_probability < 0.02
    assert points[-1].blocking_probability > 0.15
    assert all(p.concurrent_peak <= 23 for p in points)
