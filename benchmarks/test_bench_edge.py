"""Benchmark E21 — the edge proxy tier vs. the E18 multicast baseline."""

from benchmarks.conftest import headline, publish
from repro.experiments.edge import format_edge, run_edge


def test_bench_edge(benchmark):
    points = benchmark.pedantic(run_edge, rounds=1)
    off, on = points
    gain = on.concurrent_peak / off.concurrent_peak
    publish(
        benchmark, "edge", format_edge(points),
        peak_off=off.concurrent_peak,
        peak_on=on.concurrent_peak,
        edge_patches=on.edge_patches,
        msu_patches=on.msu_patches,
        edge_hit_ratio=on.edge_hit_ratio,
        edge_admitted=on.edge_admitted,
        edge_bytes_served=on.edge_bytes_served,
    )
    headline(
        "edge", "viewers_per_disk_gain", round(gain, 2), "x",
        zipf_s=1.0, baseline="E18 multicast, same offered load",
    )
    headline("edge", "concurrent_peak", on.concurrent_peak, "viewers")
    headline(
        "edge", "edge_covered_patches", on.edge_patches, "joins",
        msu_patches=on.msu_patches,
    )
    # Acceptance bar: with edges the same disk sustains at least twice
    # the concurrent viewers of the multicast baseline, the gain really
    # came from edge-covered (zero-disk-cost) patches, and every book —
    # multicast ledger and edge uplink — balances once the world drains.
    assert not off.edges_enabled and on.edges_enabled
    assert on.concurrent_peak >= 2 * off.concurrent_peak
    assert on.edge_patches > 0
    assert on.edge_admitted > 0
    assert on.edge_bytes_served > 0
    assert on.msu_patches <= on.edge_patches
    assert on.ledger_outstanding == 0.0
    assert on.edge_uplink_outstanding == 0.0
