"""Benchmark E2 — regenerates Graph 1 (constant-rate lateness CDFs)."""

from benchmarks.conftest import headline, publish
from repro.experiments.graph1 import format_graph1, run_graph1


def test_bench_graph1(benchmark):
    curves = benchmark.pedantic(
        run_graph1, kwargs={"stream_counts": (22, 23, 24), "duration": 60.0}, rounds=1
    )
    text = format_graph1(curves)
    publish(
        benchmark, "graph1", text,
        within_50ms_at_22=curves[22].fraction_within(50) * 100,
        within_50ms_at_23=curves[23].fraction_within(50) * 100,
        within_50ms_at_24=curves[24].fraction_within(50) * 100,
        max_ms_at_22=curves[22].max_late_ms,
    )
    headline(
        "graph1", "within_50ms_at_22",
        round(curves[22].fraction_within(50), 4), "fraction",
        paper_claim=0.996,
    )
    headline(
        "graph1", "max_late_ms_at_22", round(curves[22].max_late_ms, 1), "ms",
    )
    # Paper: 22 streams excellent (99.6% within 50 ms, none past 150 ms);
    # 23 degrades gradually; 24 collapses.
    assert curves[22].fraction_within(50) > 0.99
    assert curves[22].max_late_ms <= 150.0
    assert curves[23].fraction_within(50) > 0.8
    assert curves[24].fraction_within(50) < 0.5
