"""Benchmark E9 — regenerates the timer-granularity jitter sweep (§2.2.1).

Also benchmarks the raw event-scheduling engines (DESIGN.md §13): both
engines churn an identical timer workload and publish their sustained
events/second, with a regression guard on the wheel.
"""

import time

from benchmarks.conftest import headline, publish
from repro.experiments.timer_jitter import format_timer_jitter, run_timer_jitter
from repro.sim import Simulator


def test_bench_timer(benchmark):
    curves = benchmark.pedantic(
        run_timer_jitter,
        kwargs={"granularities_ms": (10.0, 1.0, 0.0), "duration": 30.0},
        rounds=1,
    )
    publish(
        benchmark, "timer_jitter", format_timer_jitter(curves),
        max_ms_10ms_timer=curves[10.0].max_late_ms,
        max_ms_cycle_counter=curves[0.0].max_late_ms,
    )
    headline(
        "timer_jitter", "max_late_ms_10ms_timer",
        round(curves[10.0].max_late_ms, 2), "ms",
        cycle_counter=round(curves[0.0].max_late_ms, 2),
    )
    # Coarser clocking adds jitter, but comfortably inside the paper's
    # 150 ms worst-case bound.
    assert curves[10.0].max_late_ms > curves[0.0].max_late_ms
    assert curves[10.0].max_late_ms <= 150.0


#: Conservative absolute floor for the wheel engine's raw scheduler
#: throughput.  The reference machine sustains well over 400k events/s;
#: anything under this floor means the engine itself broke, not that CI
#: got a slow runner.
WHEEL_FLOOR_EVENTS_PER_SEC = 50_000.0


def _engine_churn(engine: str, n_streams: int = 200, duration: float = 10.0):
    """Pure scheduler load: ``n_streams`` interleaved periodic timers.

    Periods are co-prime-ish multiples of 1 ms so the wheel's near-band
    buckets, slot-heap rotation and far-heap refill all get exercised
    (not just one dense slot).
    """
    sim = Simulator(engine=engine)

    def tick(period):
        while True:
            yield sim.sleep(period)

    for i in range(n_streams):
        sim.process(tick(0.001 + (i % 37) * 0.0007), name=f"t{i}")
    start = time.perf_counter()
    sim.run(until=duration)
    wall = time.perf_counter() - start
    return sim.events_executed / wall if wall > 0 else 0.0


def test_bench_engine_throughput(benchmark):
    heap_rate = _engine_churn("heap")
    wheel_rate = benchmark.pedantic(_engine_churn, args=("wheel",), rounds=1)
    report = (
        "Raw scheduler throughput (200 interleaved periodic timers)\n"
        f"  heap engine:  {heap_rate:>10.0f} events/s\n"
        f"  wheel engine: {wheel_rate:>10.0f} events/s\n"
        f"  (wheel/heap: {wheel_rate / heap_rate:.2f}x)"
    )
    publish(
        benchmark, "engine_throughput", report,
        heap_events_per_sec=round(heap_rate),
        wheel_events_per_sec=round(wheel_rate),
    )
    headline(
        "engine_throughput", "wheel_events_per_sec",
        round(wheel_rate), "events/s",
        heap_events_per_sec=round(heap_rate),
        ratio=round(wheel_rate / heap_rate, 3),
    )
    # Regression guard: wall-clock baselines don't transfer between
    # machines, so the guard is relative — the wheel must stay within
    # 20% of the heap engine measured in the same process — backed by a
    # conservative absolute floor.
    assert wheel_rate >= 0.8 * heap_rate, (
        f"wheel engine regressed: {wheel_rate:.0f} events/s vs "
        f"heap {heap_rate:.0f} events/s"
    )
    assert wheel_rate >= WHEEL_FLOOR_EVENTS_PER_SEC
