"""Benchmark E9 — regenerates the timer-granularity jitter sweep (§2.2.1)."""

from benchmarks.conftest import headline, publish
from repro.experiments.timer_jitter import format_timer_jitter, run_timer_jitter


def test_bench_timer(benchmark):
    curves = benchmark.pedantic(
        run_timer_jitter,
        kwargs={"granularities_ms": (10.0, 1.0, 0.0), "duration": 30.0},
        rounds=1,
    )
    publish(
        benchmark, "timer_jitter", format_timer_jitter(curves),
        max_ms_10ms_timer=curves[10.0].max_late_ms,
        max_ms_cycle_counter=curves[0.0].max_late_ms,
    )
    headline(
        "timer_jitter", "max_late_ms_10ms_timer",
        round(curves[10.0].max_late_ms, 2), "ms",
        cycle_counter=round(curves[0.0].max_late_ms, 2),
    )
    # Coarser clocking adds jitter, but comfortably inside the paper's
    # 150 ms worst-case bound.
    assert curves[10.0].max_late_ms > curves[0.0].max_late_ms
    assert curves[10.0].max_late_ms <= 150.0
