"""Benchmark E18 — multicast channels vs. unicast on the Zipf VoD workload."""

from benchmarks.conftest import headline, publish
from repro.experiments.multicast import format_multicast, run_multicast


def test_bench_multicast(benchmark):
    points = benchmark.pedantic(run_multicast, rounds=1)
    off, on = points
    publish(
        benchmark, "multicast", format_multicast(points),
        peak_off=off.concurrent_peak,
        peak_on=on.concurrent_peak,
        channels_created=on.channels_created,
        channel_occupancy=on.channel_occupancy,
        patch_ratio=on.patch_ratio,
        slots_saved=on.slots_saved,
        merges=on.merges,
    )
    headline(
        "multicast", "viewers_per_disk_gain",
        round(on.concurrent_peak / off.concurrent_peak, 2), "x",
    )
    headline(
        "multicast", "channel_occupancy",
        round(on.channel_occupancy, 2), "viewers/channel",
    )
    headline("multicast", "slots_saved", on.slots_saved, "disk slots")
    # The acceptance bar: one disk sustains at least twice the concurrent
    # viewers with multicast on, the gain really came from batching and
    # patching, and the admission books balance once everything drains.
    assert not off.multicast_enabled and on.multicast_enabled
    assert on.concurrent_peak >= 2 * off.concurrent_peak
    assert on.channel_occupancy > 1.0
    assert on.slots_saved > 0
    assert on.merges > 0
    assert on.ledger_outstanding == 0.0
    # Every patch the run granted stayed inside the configured horizon.
    horizon_us = 6.0 * 1e6
    for offset_us, patch_us in on.patch_bounds:
        assert patch_us <= horizon_us + 1e6  # horizon + one-page margin
    # The network really fanned out: more receiver copies than sends.
    assert on.multicast_copies > on.multicast_sends
