"""Benchmark E8 — regenerates the IB-tree integration ablation (§2.2.1)."""

from benchmarks.conftest import headline, publish
from repro.experiments.ibtree_ablation import (
    format_ibtree_ablation,
    run_ibtree_ablation,
)


def test_bench_ibtree(benchmark):
    result = benchmark.pedantic(
        run_ibtree_ablation, kwargs={"npackets": 9_000}, rounds=1
    )
    publish(
        benchmark, "ibtree", format_ibtree_ablation(result),
        read_overhead=result.read_overhead_fraction,
        write_penalty=result.write_penalty,
    )
    headline(
        "ibtree", "read_overhead_fraction",
        round(result.read_overhead_fraction, 5), "fraction", paper_claim=0.001,
    )
    headline("ibtree", "write_penalty", round(result.write_penalty, 4), "fraction")
    # Paper: embedded internal pages appear in ~0.1% of data pages and do
    # not appreciably affect read bandwidth; separate pages cost extra
    # duty-cycle slots and seeks on the write path.
    assert 0.0005 <= result.read_overhead_fraction <= 0.002
    assert result.write_penalty > 0.0
