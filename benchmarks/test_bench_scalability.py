"""Benchmark E6 — regenerates the §3.3 Coordinator scalability figures."""

import pytest

from benchmarks.conftest import headline, publish
from repro.experiments.scalability import format_scalability, run_scalability


def test_bench_scalability(benchmark):
    result = benchmark.pedantic(
        run_scalability, kwargs={"total_requests": 10_000}, rounds=1
    )
    publish(
        benchmark, "scalability", format_scalability(result),
        request_rate=result.request_rate,
        cpu_utilization=result.cpu_utilization,
        network_utilization=result.network_utilization,
    )
    headline(
        "scalability", "coordinator_cpu_utilization",
        round(result.cpu_utilization, 4), "fraction",
        request_rate=round(result.request_rate, 1), paper_claim=0.14,
    )
    # Paper: ~60 req/s -> CPU 14%, network 6%, "relatively insignificant".
    assert result.cpu_utilization == pytest.approx(0.14, abs=0.03)
    assert result.network_utilization == pytest.approx(0.06, abs=0.02)
    cpu50, net50 = result.extrapolate(50.0)
    assert cpu50 < 0.2 and net50 < 0.1
