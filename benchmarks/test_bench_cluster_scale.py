"""Benchmark E13 — scaling by adding MSUs (abstract / §3.3, extension)."""

from benchmarks.conftest import headline, publish
from repro.experiments.cluster_scale import format_cluster_scale, run_cluster_scale


def test_bench_cluster_scale(benchmark):
    points = benchmark.pedantic(run_cluster_scale, rounds=1)
    publish(
        benchmark, "cluster_scale", format_cluster_scale(points),
        aggregate=[p.aggregate_mb_s for p in points],
        worst_quality=[p.worst_within_50ms for p in points],
    )
    headline(
        "cluster_scale", "aggregate_mb_s",
        round(points[-1].aggregate_mb_s, 2), "MB/s",
        n_msus=points[-1].n_msus,
    )
    headline(
        "cluster_scale", "coordinator_cpu",
        round(max(p.coordinator_cpu for p in points), 4), "fraction",
    )
    base, last = points[0], points[-1]
    scale = last.n_msus / base.n_msus
    # Aggregate bandwidth scales linearly with MSU count ...
    assert last.aggregate_mb_s / base.aggregate_mb_s > scale * 0.9
    # ... per-stream quality does not degrade as MSUs are added ...
    assert all(p.worst_within_50ms > 0.98 for p in points)
    # ... and the shared Coordinator stays far from saturation (§3.3).
    assert all(p.coordinator_cpu < 0.05 for p in points)
