"""Benchmark E15 — simultaneous recording capacity (extension)."""

from benchmarks.conftest import headline, publish
from repro.experiments.recording import format_recording, run_recording


def test_bench_recording(benchmark):
    points = benchmark.pedantic(run_recording, rounds=1)
    publish(
        benchmark, "recording", format_recording(points),
        drains=[p.drain_seconds for p in points],
    )
    headline(
        "recording", "max_drain_seconds",
        round(max(p.drain_seconds for p in points), 3), "seconds",
        all_complete=all(p.complete for p in points),
    )
    # Every packet of every recording is durably stored ...
    assert all(p.complete for p in points)
    # ... and the disk write backlog grows with the offered load.
    drains = [p.drain_seconds for p in points]
    assert drains == sorted(drains)
    assert drains[-1] > drains[0]
