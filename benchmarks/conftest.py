"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports (run with ``-s`` to see the
tables inline; they are also attached to the benchmark JSON via
``extra_info`` and written under ``benchmarks/results/``).
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(benchmark, name: str, text: str, **extra) -> None:
    """Print, persist and attach one experiment's rendered output."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    benchmark.extra_info["report"] = text
    for key, value in extra.items():
        benchmark.extra_info[key] = value
