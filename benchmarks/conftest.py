"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports (run with ``-s`` to see the
tables inline; they are also attached to the benchmark JSON via
``extra_info`` and written under ``benchmarks/results/``).
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: One consolidated perf-trajectory artifact all benchmarks append to.
#: Every ``test_bench_*`` publishes its headline numbers here under a
#: single schema, so a CI run (or a human) can diff the whole perf
#: surface across commits from one JSON file instead of scraping
#: nineteen rendered tables.
TRAJECTORY_SCHEMA = "calliope-bench-trajectory-v1"
TRAJECTORY_PATH = RESULTS_DIR / "BENCH_trajectory.json"


def publish(benchmark, name: str, text: str, **extra) -> None:
    """Print, persist and attach one experiment's rendered output."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    benchmark.extra_info["report"] = text
    for key, value in extra.items():
        benchmark.extra_info[key] = value


def headline(bench: str, metric: str, value, units: str, **context) -> None:
    """Record one headline number in the shared trajectory artifact.

    Entries are keyed on ``(bench, metric)`` — re-running a benchmark
    replaces its previous numbers, so the file always holds exactly one
    row per headline across a whole ``pytest benchmarks`` run.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    entries = []
    try:
        doc = json.loads(TRAJECTORY_PATH.read_text())
        if isinstance(doc, dict) and doc.get("schema") == TRAJECTORY_SCHEMA:
            entries = [
                e for e in doc.get("entries", [])
                if (e.get("bench"), e.get("metric")) != (bench, metric)
            ]
    except (OSError, ValueError):
        pass
    entries.append({
        "bench": bench,
        "metric": metric,
        "value": value,
        "units": units,
        "context": dict(context),
    })
    entries.sort(key=lambda e: (e["bench"], e["metric"]))
    TRAJECTORY_PATH.write_text(
        json.dumps({"schema": TRAJECTORY_SCHEMA, "entries": entries},
                   indent=2, sort_keys=True) + "\n"
    )
