"""Benchmark E16 — interval/prefix caching on the disk-bound VoD workload."""

from benchmarks.conftest import headline, publish
from repro.experiments.cache import format_cache, run_cache


def test_bench_cache(benchmark):
    points = benchmark.pedantic(run_cache, rounds=1)
    off, on = points
    publish(
        benchmark, "cache", format_cache(points),
        peak_off=off.concurrent_peak,
        peak_on=on.concurrent_peak,
        hit_ratio=on.snapshot.hit_ratio,
        slots_saved=on.snapshot.slots_saved,
        cache_admitted=on.cache_admitted,
    )
    headline(
        "cache", "concurrent_peak_gain",
        round(on.concurrent_peak / off.concurrent_peak, 2), "x",
    )
    headline("cache", "hit_ratio", round(on.snapshot.hit_ratio, 3), "fraction")
    # The acceptance bar: the same disk sustains >=20% more concurrent
    # streams with the cache on, and the gain really came from the cache.
    assert not off.cache_enabled and on.cache_enabled
    assert on.concurrent_peak >= 1.2 * off.concurrent_peak
    assert on.snapshot.hit_ratio > 0.0
    assert on.snapshot.slots_saved > 0
    assert on.cache_admitted > 0
    assert on.blocking_probability < off.blocking_probability
