"""Benchmark E5 — regenerates the §3.2.3 memory-path comparison."""

import pytest

from benchmarks.conftest import headline, publish
from repro.experiments.memorypath import format_memorypath, run_memorypath


def test_bench_memorypath(benchmark):
    result = benchmark.pedantic(run_memorypath, kwargs={"duration": 20.0}, rounds=1)
    publish(
        benchmark, "memorypath", format_memorypath(result),
        theoretical=result.theoretical, measured=result.measured,
    )
    headline(
        "memorypath", "measured_mb_s", round(result.measured, 2), "MB/s",
        theoretical=round(result.theoretical, 2),
    )
    assert result.theoretical == pytest.approx(7.5, abs=0.05)
    assert result.measured == pytest.approx(6.3, abs=0.3)
