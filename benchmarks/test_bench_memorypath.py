"""Benchmark E5 — regenerates the §3.2.3 memory-path comparison."""

import pytest

from benchmarks.conftest import publish
from repro.experiments.memorypath import format_memorypath, run_memorypath


def test_bench_memorypath(benchmark):
    result = benchmark.pedantic(run_memorypath, kwargs={"duration": 20.0}, rounds=1)
    publish(
        benchmark, "memorypath", format_memorypath(result),
        theoretical=result.theoretical, measured=result.measured,
    )
    assert result.theoretical == pytest.approx(7.5, abs=0.05)
    assert result.measured == pytest.approx(6.3, abs=0.3)
