"""Benchmark E17 — MSU failover: heartbeat detection and stream migration."""

from benchmarks.conftest import headline, publish
from repro.experiments.failover import format_failover, run_failover


def test_bench_failover(benchmark):
    points = benchmark.pedantic(run_failover, rounds=1)
    with_replicas, single_copy = points
    publish(
        benchmark, "failover", format_failover(points),
        victims_replicated=with_replicas.victim_streams,
        resumed_replicated=with_replicas.resumed,
        resumed_within_budget=with_replicas.resumed_within_budget,
        detection_budget_s=with_replicas.detection_budget_s,
        max_resume_gap_s=with_replicas.max_resume_gap_s,
        time_to_full_capacity_s=with_replicas.time_to_full_capacity_s,
        victims_single_copy=single_copy.victim_streams,
        queued_resumes=single_copy.queued_resumes,
        served_after_recovery=single_copy.served_after_recovery,
    )
    headline(
        "failover", "resumed_within_budget",
        with_replicas.resumed_within_budget, "streams",
        victims=with_replicas.victim_streams,
    )
    headline(
        "failover", "max_resume_gap_s",
        round(with_replicas.max_resume_gap_s, 3), "seconds",
        budget_s=with_replicas.detection_budget_s,
    )
    # The acceptance bar: with replicas, >=80% of the dead MSU's streams
    # resume on survivors within the heartbeat timeout plus one duty
    # cycle; without replicas nothing resumes during the outage — every
    # ticket parks on the queue and is served once the MSU recovers.
    assert with_replicas.victim_streams > 0
    assert with_replicas.resumed >= 0.8 * with_replicas.victim_streams
    assert (
        with_replicas.resumed_within_budget
        >= 0.8 * with_replicas.victim_streams
    )
    assert with_replicas.max_resume_gap_s <= with_replicas.detection_budget_s
    assert single_copy.victim_streams > 0
    assert single_copy.resumed_within_budget == 0
    assert single_copy.resumed_before_recovery == 0
    assert single_copy.queued_resumes > 0
    assert single_copy.served_after_recovery == single_copy.victim_streams
