"""Benchmark E10 — regenerates the striping trade-off ablation (§2.3.3)."""

import numpy as np

from benchmarks.conftest import headline, publish
from repro.experiments.striping import (
    format_startup_latency,
    format_striping,
    run_startup_latency,
    run_striping,
)


def test_bench_striping(benchmark):
    results = benchmark.pedantic(run_striping, kwargs={"duration": 60.0}, rounds=1)
    per_disk, striped = results
    publish(
        benchmark, "striping", format_striping(results),
        per_disk_fetch_ms=per_disk.mean_fetch_ms,
        striped_fetch_ms=striped.mean_fetch_ms,
    )
    headline(
        "striping", "mean_fetch_ms_striped",
        round(striped.mean_fetch_ms, 3), "ms",
        per_disk=round(per_disk.mean_fetch_ms, 3),
    )
    # Striping balances the skewed load across disks ...
    spread = max(per_disk.per_disk_mb_s) - min(per_disk.per_disk_mb_s)
    balanced = max(striped.per_disk_mb_s) - min(striped.per_disk_mb_s)
    assert balanced < spread * 0.25
    # ... which relieves the overloaded hot disk's latency.
    assert striped.mean_fetch_ms < per_disk.mean_fetch_ms


def test_bench_striping_vcr_startup(benchmark):
    """§2.3.3's other half: striped VCR restart delay, measured through
    the full MSU — landing on the paper's own "we were probably wrong"."""
    results = benchmark.pedantic(run_startup_latency, rounds=1)
    publish(
        benchmark, "striping_startup", format_startup_latency(results),
        per_disk_mean_ms=float(np.mean(results["per-disk"]) * 1000),
        striped_mean_ms=float(np.mean(results["striped"]) * 1000),
    )
    headline(
        "striping_startup", "striped_startup_ms",
        round(float(np.mean(results["striped"]) * 1000), 2), "ms",
        per_disk=round(float(np.mean(results["per-disk"]) * 1000), 2),
    )
    per_disk = np.mean(results["per-disk"])
    striped = np.mean(results["striped"])
    assert striped < per_disk * 2.0 and per_disk < striped * 2.0
