"""Benchmark E20 — Coordinator recovery: WAL replay and reconciliation."""

from benchmarks.conftest import headline, publish
from repro.experiments.recovery import format_recovery, run_recovery


def test_bench_recovery(benchmark):
    points = benchmark.pedantic(run_recovery, rounds=1)
    biggest = points[-1]
    publish(
        benchmark, "recovery", format_recovery(points),
        scales=[p.viewers for p in points],
        time_to_recover_s=biggest.time_to_recover_s,
        wal_records=biggest.wal_records,
        streams_kept=biggest.streams_kept,
        streams_dropped=biggest.streams_dropped,
        tickets_recovered=biggest.tickets_recovered,
        books_identical=all(p.books_identical for p in points),
    )
    headline(
        "recovery", "time_to_recover_s",
        round(biggest.time_to_recover_s, 4), "seconds",
        viewers=biggest.viewers,
    )
    headline(
        "recovery", "wal_records", biggest.wal_records, "records",
        viewers=biggest.viewers,
    )
    # The acceptance bar: every stream admitted before the kill survives
    # the outage and the restart (kept by reconciliation, none dropped),
    # and the rebuilt books are byte-identical to a from-scratch
    # reconciliation at every load level.
    for point in points:
        assert point.active_before == point.viewers
        assert point.streams_kept == point.active_before
        assert point.streams_dropped == 0
        assert point.discrepancies == 0
        assert point.books_identical
    # Replay volume grows with load; recovery stays sub-second because
    # reconciliation waits only on one StateReport round trip.
    assert points[-1].wal_records > points[0].wal_records
    assert all(p.time_to_recover_s < 1.0 for p in points)
