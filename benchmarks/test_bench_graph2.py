"""Benchmarks E3/E4 — regenerate Graph 2 (variable-rate lateness CDFs)."""

from benchmarks.conftest import headline, publish
from repro.experiments.graph2 import format_graph2, run_graph2


def test_bench_graph2(benchmark):
    curves = benchmark.pedantic(
        run_graph2, kwargs={"stream_counts": (15, 16, 17), "duration": 60.0}, rounds=1
    )
    text = format_graph2(curves)
    publish(
        benchmark, "graph2", text,
        within_50ms_at_15=curves[15].fraction_within(50) * 100,
        within_50ms_at_17=curves[17].fraction_within(50) * 100,
    )
    headline(
        "graph2", "within_50ms_at_15",
        round(curves[15].fraction_within(50), 4), "fraction",
    )
    # Paper shape: worse than constant rate, degrading from 15 to 17.
    assert curves[15].fraction_within(50) > curves[17].fraction_within(50)
    assert curves[15].fraction_within(25) < 0.9


def test_bench_graph2_single_file(benchmark):
    """E4: a single synchronized file caps out at 11 streams, not 15."""
    curves = benchmark.pedantic(
        run_graph2,
        kwargs={"stream_counts": (11, 15), "duration": 60.0, "single_file": True},
        rounds=1,
    )
    text = format_graph2(curves, single_file=True)
    publish(
        benchmark, "graph2_single_file", text,
        within_100ms_at_11=curves[11].fraction_within(100) * 100,
        within_100ms_at_15=curves[15].fraction_within(100) * 100,
    )
    headline(
        "graph2_single_file", "within_100ms_at_11",
        round(curves[11].fraction_within(100), 4), "fraction",
    )
    assert curves[11].fraction_within(100) > curves[15].fraction_within(100)
