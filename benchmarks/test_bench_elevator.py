"""Benchmark E7 — regenerates the §2.3.3 elevator-scheduling aside."""

import pytest

from benchmarks.conftest import headline, publish
from repro.experiments.elevator import format_elevator, run_elevator


def test_bench_elevator(benchmark):
    result = benchmark.pedantic(run_elevator, kwargs={"duration": 60.0}, rounds=1)
    publish(
        benchmark, "elevator", format_elevator(result),
        fcfs=result.fcfs, elevator=result.elevator, gain=result.elevator_gain,
    )
    headline(
        "elevator", "throughput_gain", round(result.elevator_gain, 4),
        "fraction", paper_claim=0.06,
    )
    # Paper: "an elevator scheduling algorithm improves throughput by only
    # about 6% for our disks".
    assert result.elevator_gain == pytest.approx(0.06, abs=0.04)
