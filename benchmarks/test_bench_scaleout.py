"""Benchmark E24 — Coordinator scale-out: warm takeover + sharded admission."""

from benchmarks.conftest import headline, publish
from repro.experiments.scaleout import (
    format_scaleout,
    run_sharding,
    run_takeover,
)


def _run():
    return run_takeover(), run_sharding()


def test_bench_scaleout(benchmark):
    takeovers, shardings = benchmark.pedantic(_run, rounds=1)
    biggest = takeovers[-1]
    best = shardings[-1]
    base = shardings[0]
    speedup = (
        best.admissions_per_s / base.admissions_per_s
        if base.admissions_per_s > 0 else 0.0
    )
    publish(
        benchmark, "scaleout", format_scaleout(takeovers, shardings),
        takeover_scales=[p.viewers for p in takeovers],
        takeover_s=biggest.takeover_s,
        detection_s=biggest.detection_s,
        streams_dropped=sum(p.streams_dropped for p in takeovers),
        shard_counts=[p.shards for p in shardings],
        admissions_per_s=[round(p.admissions_per_s, 1) for p in shardings],
        speedup=round(speedup, 2),
    )
    headline(
        "scaleout", "takeover_s", round(biggest.takeover_s, 4), "seconds",
        viewers=biggest.viewers, report_grace_s=biggest.report_grace_s,
    )
    headline(
        "scaleout", "admissions_per_s",
        round(best.admissions_per_s, 1), "admissions/s",
        shards=best.shards, viewers=best.viewers,
    )
    headline(
        "scaleout", "shard_speedup", round(speedup, 2), "x",
        shards=best.shards, baseline_shards=base.shards,
    )
    # The acceptance bar: every takeover lands within one report_grace
    # with zero admitted streams dropped (MSUs never stop serving, the
    # warm reconcile adopts everything the heartbeats confirm), and four
    # shards admit the burst materially faster than the serial baseline
    # without escrow ever double-spending (grants/steals are journaled;
    # the scaleout-escrow invariant audits the same machinery in chaos).
    for point in takeovers:
        assert point.within_grace
        assert point.streams_dropped == 0
        assert point.active_after == point.active_before
        assert point.records_tailed > 0
    for point in shardings:
        assert point.admitted == point.viewers
    assert speedup >= 2.5
