"""Benchmark E23 — engine overhaul speedup and city-scale runs.

Two headline claims from the engine overhaul (DESIGN.md §13):

* the fast configuration (timer wheel + coarsened pacing) runs the same
  paced workload at least 5x faster than the reference configuration
  (heap engine, one wakeup per packet), and
* an installation of 1000 MSUs serving 100,000 concurrent viewers —
  the abstract's "hundreds of PCs producing thousands of streams" taken
  another order of magnitude out — simulates in CI-tolerable wall time.
"""

from benchmarks.conftest import headline, publish
from repro.experiments.city_scale import (
    engine_speedup,
    format_city_scale,
    format_engine_bench,
    run_city_scale,
    run_engine_bench,
)

#: Wall-time budget for the full city-scale sweep (the 1000-MSU point
#: alone takes ~1-2 s on the reference machine; 120 s absorbs any CI
#: runner slowdown while still catching an engine that fell off a cliff).
CITY_SCALE_BUDGET_S = 120.0


def test_bench_engine_speedup(benchmark):
    results = benchmark.pedantic(run_engine_bench, rounds=1)
    reference, fast = results
    speedup = engine_speedup(results)
    publish(
        benchmark, "engine_speedup", format_engine_bench(results),
        speedup=round(speedup, 2),
        reference_events_per_sec=round(reference.events_per_sec),
        fast_events_per_sec=round(fast.events_per_sec),
    )
    headline(
        "city_scale", "engine_speedup", round(speedup, 2), "x",
        reference_wall_s=round(reference.wall_seconds, 3),
        fast_wall_s=round(fast.wall_seconds, 3),
        streams=reference.streams,
    )
    headline(
        "city_scale", "fast_events_per_sec",
        round(fast.events_per_sec), "events/s",
        reference=round(reference.events_per_sec),
    )
    assert speedup >= 5.0, (
        f"engine overhaul speedup {speedup:.1f}x below the 5x headline"
    )


def test_bench_city_scale(benchmark):
    points = benchmark.pedantic(run_city_scale, rounds=1)
    publish(
        benchmark, "city_scale", format_city_scale(points),
        largest_msus=points[-1].n_msus,
        largest_viewers=points[-1].viewers,
        largest_wall_s=round(points[-1].wall_seconds, 2),
    )
    largest = points[-1]
    headline(
        "city_scale", "wall_s_1000msu_100k_viewers",
        round(largest.wall_seconds, 2), "s",
        sim_seconds=largest.sim_seconds,
        events=largest.events,
        events_per_sec=round(largest.events_per_sec),
    )
    assert largest.n_msus == 1000 and largest.viewers == 100_000
    assert sum(p.wall_seconds for p in points) <= CITY_SCALE_BUDGET_S
    # Delivered bandwidth must scale linearly with installation size
    # (MSUs share nothing but the Coordinator, abstract/§3.3).
    base = points[0]
    expected = base.aggregate_mb_s * (largest.viewers / base.viewers)
    assert abs(largest.aggregate_mb_s - expected) / expected < 0.05
