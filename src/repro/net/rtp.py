"""RTP header encoding (the Internet Real-time Transport Protocol [13]).

Calliope records RTP sessions off the MBone; the MSU's RTP extension
module derives delivery times from the header timestamp rather than the
arrival time, which "does not include the effects of network-induced
jitter" (§2.3.2).  The 12-byte fixed header is packed for real.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ProtocolError

__all__ = ["RtpHeader", "RTP_CLOCK_HZ"]

_FMT = "!BBHII"
_SIZE = struct.calcsize(_FMT)

#: The media clock used by the video payload types we record (90 kHz).
RTP_CLOCK_HZ = 90_000


@dataclass(frozen=True)
class RtpHeader:
    """The RTP fixed header (version 2, no CSRC list)."""

    payload_type: int
    sequence: int
    timestamp: int
    ssrc: int
    marker: bool = False

    SIZE = _SIZE

    def pack(self) -> bytes:
        """Serialize to the 12-byte wire format."""
        vpxcc = 2 << 6  # version 2, no padding/extension/CSRC
        mpt = (int(self.marker) << 7) | (self.payload_type & 0x7F)
        return struct.pack(
            _FMT, vpxcc, mpt, self.sequence & 0xFFFF,
            self.timestamp & 0xFFFFFFFF, self.ssrc & 0xFFFFFFFF,
        )

    @classmethod
    def parse(cls, data: bytes) -> "RtpHeader":
        """Parse a wire packet's header (payload follows at ``SIZE``)."""
        if len(data) < _SIZE:
            raise ProtocolError(f"RTP packet of {len(data)} bytes too short")
        vpxcc, mpt, seq, ts, ssrc = struct.unpack_from(_FMT, data, 0)
        if vpxcc >> 6 != 2:
            raise ProtocolError(f"unsupported RTP version {vpxcc >> 6}")
        return cls(
            payload_type=mpt & 0x7F,
            sequence=seq,
            timestamp=ts,
            ssrc=ssrc,
            marker=bool(mpt >> 7),
        )

    def timestamp_us(self, clock_hz: int = RTP_CLOCK_HZ) -> int:
        """Media timestamp converted to microseconds."""
        return int(self.timestamp * 1_000_000 // clock_hz)
