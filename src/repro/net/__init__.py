"""Network substrate: simulated wires, real header bytes.

* :mod:`repro.net.network` — hosts, UDP sockets and datagram delivery with
  configurable latency/jitter; TCP-like control channels with in-order
  delivery and break detection (the Coordinator's MSU failure detector).
* :mod:`repro.net.rtp` / :mod:`repro.net.vat` — real header pack/parse for
  the two MBone protocols Calliope records (§2.1, §2.3.2).
* :mod:`repro.net.protocols` — the MSU protocol-extension modules: a
  module supplies per-protocol socket handling and the delivery-time
  derivation used when constructing schedules during recording.
* :mod:`repro.net.messages` — Coordinator/MSU/client control messages.
"""

from repro.net.network import Datagram, Host, Network, ControlChannel, UdpSocket
from repro.net.protocols import (
    ProtocolModule,
    ProtocolRegistry,
    RawProtocol,
    RtpProtocol,
    VatProtocol,
    default_registry,
)
from repro.net.rtp import RtpHeader
from repro.net.vat import VatHeader

__all__ = [
    "ControlChannel",
    "Datagram",
    "Host",
    "Network",
    "ProtocolModule",
    "ProtocolRegistry",
    "RawProtocol",
    "RtpHeader",
    "RtpProtocol",
    "UdpSocket",
    "VatHeader",
    "VatProtocol",
    "default_registry",
]
