"""VAT header encoding (the LBL audio-conferencing tool [17]).

VAT predates RTP; its 8-byte header carries flags, an audio format code, a
conference id and a media timestamp in sample units (8 kHz).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ProtocolError

__all__ = ["VatHeader", "VAT_CLOCK_HZ"]

_FMT = "!BBHI"
_SIZE = struct.calcsize(_FMT)

#: VAT audio sample clock (8 kHz mu-law).
VAT_CLOCK_HZ = 8_000


@dataclass(frozen=True)
class VatHeader:
    """The VAT packet header."""

    flags: int
    audio_format: int
    conference: int
    timestamp: int  # in samples

    SIZE = _SIZE

    def pack(self) -> bytes:
        """Serialize to the 8-byte wire format."""
        return struct.pack(
            _FMT, self.flags & 0xFF, self.audio_format & 0xFF,
            self.conference & 0xFFFF, self.timestamp & 0xFFFFFFFF,
        )

    @classmethod
    def parse(cls, data: bytes) -> "VatHeader":
        """Parse a wire packet's header (payload follows at ``SIZE``)."""
        if len(data) < _SIZE:
            raise ProtocolError(f"VAT packet of {len(data)} bytes too short")
        flags, fmt, conf, ts = struct.unpack_from(_FMT, data, 0)
        return cls(flags, fmt, conf, ts)

    def timestamp_us(self, clock_hz: int = VAT_CLOCK_HZ) -> int:
        """Media timestamp converted to microseconds."""
        return int(self.timestamp * 1_000_000 // clock_hz)
