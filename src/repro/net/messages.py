"""Control-plane messages (client <-> Coordinator <-> MSU <-> client).

Plain dataclasses carried over :class:`~repro.net.network.ControlChannel`
instances.  ``WIRE_BYTES`` approximates each message's on-the-wire size for
the intra-server network-utilization accounting of §3.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "WIRE_BYTES",
    "OpenSession",
    "SessionOpened",
    "ListContents",
    "ContentListing",
    "RegisterPort",
    "RegisterCompositePort",
    "PortRegistered",
    "PlayRequest",
    "RecordRequest",
    "RequestFailed",
    "StreamScheduled",
    "DeleteContent",
    "Deleted",
    "CloseSession",
    "MsuHello",
    "ScheduleRead",
    "ScheduleRecord",
    "StreamTerminated",
    "Heartbeat",
    "ReportState",
    "StateReport",
    "ResumePlay",
    "StreamMigrated",
    "ChannelCreate",
    "ChannelSubscribe",
    "PatchDrained",
    "ChannelDowngrade",
    "LiveOpen",
    "LiveStop",
    "LiveRewound",
    "PinPrefix",
    "CacheReport",
    "EdgeHello",
    "PlacePrefix",
    "EvictPrefix",
    "EdgeReport",
    "EdgeServe",
    "EdgeServeDone",
    "StreamReady",
    "VcrCommand",
    "EndOfStream",
    "VCR_PLAY",
    "VCR_PAUSE",
    "VCR_SEEK",
    "VCR_FAST_FORWARD",
    "VCR_FAST_BACKWARD",
    "VCR_NORMAL",
    "VCR_QUIT",
    "VCR_REWIND",
]

#: Nominal wire size of a control message including TCP/IP and Ethernet
#: framing (the §3.3 network-utilization accounting counts full frames).
WIRE_BYTES = 300


# -- client <-> Coordinator --------------------------------------------------

@dataclass(frozen=True)
class OpenSession:
    customer: str
    request_id: int = 0


@dataclass(frozen=True)
class SessionOpened:
    session_id: int
    request_id: int = 0


@dataclass(frozen=True)
class ListContents:
    session_id: int
    request_id: int = 0


@dataclass(frozen=True)
class ContentListing:
    items: Tuple[Tuple[str, str], ...]  # (name, type name)
    request_id: int = 0


@dataclass(frozen=True)
class RegisterPort:
    """Associate a name, a content type and a UDP address (§2.1)."""

    session_id: int
    port_name: str
    type_name: str
    address: Tuple[str, int]
    request_id: int = 0


@dataclass(frozen=True)
class RegisterCompositePort:
    """Build a composite display port from registered component ports."""

    session_id: int
    port_name: str
    type_name: str
    component_ports: Tuple[str, ...]
    request_id: int = 0


@dataclass(frozen=True)
class PortRegistered:
    port_name: str
    request_id: int = 0


@dataclass(frozen=True)
class PlayRequest:
    session_id: int
    content_name: str
    port_name: str
    request_id: int = 0


@dataclass(frozen=True)
class RecordRequest:
    """Recording needs a length estimate for space allocation (§2.1)."""

    session_id: int
    content_name: str
    type_name: str
    port_name: str
    estimate_seconds: float
    request_id: int = 0


@dataclass(frozen=True)
class RequestFailed:
    reason: str
    request_id: int = 0


@dataclass(frozen=True)
class StreamScheduled:
    """The request was placed; the MSU will contact the client."""

    group_id: int
    msu_name: str
    request_id: int = 0


@dataclass(frozen=True)
class DeleteContent:
    session_id: int
    content_name: str
    request_id: int = 0


@dataclass(frozen=True)
class Deleted:
    content_name: str
    request_id: int = 0


@dataclass(frozen=True)
class CloseSession:
    session_id: int


# -- Coordinator <-> MSU ----------------------------------------------------

@dataclass(frozen=True)
class MsuHello:
    """Sent when an MSU (re)connects; restores it to the schedule (§2.2)."""

    msu_name: str
    disks: Tuple[Tuple[str, int], ...]  # (disk id, free blocks)
    #: Bytes/sec the MSU's page cache can serve (0 = no cache); the
    #: Coordinator admits cache-covered streams against this budget.
    cache_bps: float = 0.0


@dataclass(frozen=True)
class ScheduleRead:
    group_id: int
    stream_id: int
    content_name: str
    disk_id: str
    protocol: str
    rate: float
    variable: bool
    display_address: Tuple[str, int]
    client_host: str
    group_size: int = 1
    #: Admission expects this stream to be served from the MSU's page
    #: cache (a leader is active on the same content/disk); the disk
    #: process falls back to disk reads on a miss either way.
    cached: bool = False
    #: First page the MSU should deliver.  Non-zero when an edge proxy
    #: serves the opening pages ``[0, start_page)`` from its pinned
    #: prefix while this MSU tail stream runs the rest.
    start_page: int = 0


@dataclass(frozen=True)
class ScheduleRecord:
    group_id: int
    stream_id: int
    content_name: str
    disk_id: str
    protocol: str
    rate: float
    variable: bool
    source_address: Tuple[str, int]  # where the client will send from
    reserve_blocks: int
    client_host: str
    group_size: int = 1


@dataclass(frozen=True)
class DeleteFile:
    """Coordinator -> MSU: remove a stored file (admin delete, §2.1)."""

    content_name: str
    disk_id: str


@dataclass(frozen=True)
class PinPrefix:
    """Coordinator -> MSU: pin a hot title's opening pages in the cache.

    Driven by the admin database's per-title request counts (extension:
    popularity-aware prefix caching).
    """

    content_name: str
    disk_id: str
    pages: int


@dataclass(frozen=True)
class CacheReport:
    """MSU -> Coordinator: periodic cache-served-bandwidth report.

    The Coordinator folds this into the MSU's resource record so the
    administrator (and the metrics report) can see how many duty-cycle
    disk slots the cache is saving and how full the pool runs.
    """

    msu_name: str
    hits: int
    misses: int
    bytes_served: int
    slots_saved: int
    pool_used: int
    pool_capacity: int


@dataclass(frozen=True)
class StreamTerminated:
    """MSU -> Coordinator when a stream/group finishes (§2.2)."""

    group_id: int
    stream_id: int
    reason: str = "quit"
    recorded_blocks: int = 0


@dataclass(frozen=True)
class Heartbeat:
    """MSU -> Coordinator: periodic liveness beacon with stream positions.

    Detects a silent MSU failure faster than waiting for the broken
    control connection (§2.2 only covers the TCP-break case), and the
    carried positions let the Coordinator resume each playback stream
    near where it stopped when migrating to a replica.

    ``positions`` holds one ``(group_id, stream_id, page_index,
    position_us)`` tuple per active playback stream.
    """

    msu_name: str
    seq: int
    positions: Tuple[Tuple[int, int, int, int], ...] = ()


@dataclass(frozen=True)
class ReportState:
    """Coordinator -> MSU: describe everything you are serving right now.

    Sent by a freshly restarted Coordinator (repro.recovery) to each MSU
    that says hello, so the replayed admission books can be reconciled
    against what the real-time half actually has in flight.
    """


@dataclass(frozen=True)
class StateReport:
    """MSU -> Coordinator: full inventory for crash-recovery reconciliation.

    ``streams`` holds one ``(group_id, stream_id, content_name, disk_id,
    kind, rate)`` tuple per active unicast stream, where ``kind`` is
    ``"play"``, ``"record"`` or ``"patch"``.  ``channels`` holds one
    ``(channel_id, group_id, stream_id, content_name, disk_id,
    subscribers)`` tuple per multicast channel, with ``subscribers`` as
    ``(group_id, stream_id)`` pairs.  ``pins`` lists pinned prefixes as
    ``(disk_id, content_name, pages)``.  ``disks`` mirrors MsuHello's
    allocator free-block counts.
    """

    msu_name: str
    disks: Tuple[Tuple[str, int], ...] = ()
    cache_bps: float = 0.0
    streams: Tuple[Tuple[int, int, str, str, str, float], ...] = ()
    channels: Tuple[Tuple[int, int, int, str, str, Tuple[Tuple[int, int], ...]], ...] = ()
    pins: Tuple[Tuple[str, str, int], ...] = ()
    #: Live channels as ``(channel_id, group_id, stream_id, content_name,
    #: disk_id, rate, subscribers)`` — the in-flight ingest itself travels
    #: in ``streams`` (kind ``"record"``, under its own ingest group).
    live_channels: Tuple[Tuple[int, int, int, str, str, float, Tuple[Tuple[int, int], ...]], ...] = ()


@dataclass(frozen=True)
class ResumePlay:
    """Coordinator -> MSU: continue a migrated stream from mid-file.

    Identical to :class:`ScheduleRead` plus a starting position — the
    last page/media-time the failed MSU reported via :class:`Heartbeat`.
    """

    group_id: int
    stream_id: int
    content_name: str
    disk_id: str
    protocol: str
    rate: float
    variable: bool
    display_address: Tuple[str, int]
    client_host: str
    start_page: int = 0
    start_us: int = 0
    group_size: int = 1


@dataclass(frozen=True)
class StreamMigrated:
    """Coordinator -> client: the group moved to a surviving MSU.

    The client library keeps the group's view alive and waits (with
    retry/backoff) for the new MSU's delivery connection to replace the
    broken one.  ``streams`` carries ``(stream_id, resume_us)`` pairs.
    """

    group_id: int
    msu_name: str
    streams: Tuple[Tuple[int, int], ...] = ()
    request_id: int = 0


# -- multicast channels (Coordinator <-> MSU) ---------------------------------

@dataclass(frozen=True)
class ChannelCreate:
    """Coordinator -> MSU: open a multicast channel for one title.

    The MSU schedules a single disk stream (one duty-cycle slot, one
    paced schedule) whose packets go to ``mcast_address``; subscribers
    are attached with :class:`ChannelSubscribe` and join/leave without
    re-anchoring the schedule.
    """

    channel_id: int
    group_id: int        # the channel's own MSU-side group
    stream_id: int
    content_name: str
    disk_id: str
    protocol: str
    rate: float
    variable: bool
    mcast_address: Tuple[str, int]


@dataclass(frozen=True)
class ChannelSubscribe:
    """Coordinator -> MSU: attach one viewer to a multicast channel.

    ``patch_end_page`` > 0 asks the MSU to also run a bounded unicast
    patch stream covering pages ``[0, patch_end_page)`` so a late joiner
    catches up with the channel; ``patch_cached`` records that admission
    charged the patch to the cache budget (pinned prefix), not the disk.
    """

    channel_id: int
    group_id: int        # the viewer's group
    stream_id: int
    client_host: str
    display_address: Tuple[str, int]
    patch_end_page: int = 0
    patch_cached: bool = False


@dataclass(frozen=True)
class PatchDrained:
    """MSU -> Coordinator: a joiner's patch finished; it merged onto the
    channel, so admission refunds the patch charge."""

    channel_id: int
    group_id: int
    stream_id: int


@dataclass(frozen=True)
class ChannelDowngrade:
    """MSU -> Coordinator: a subscriber left its channel for unicast.

    Sent when a VCR command (pause/seek/scan) makes the shared schedule
    unusable for this viewer; the MSU has already installed a private
    unicast stream at ``position_us`` and the Coordinator must move the
    viewer's admission charge from patch/channel to a full unicast slot.
    """

    channel_id: int
    group_id: int
    stream_id: int
    position_us: int = 0


# -- live channels (Coordinator <-> MSU) --------------------------------------

@dataclass(frozen=True)
class LiveOpen:
    """Coordinator -> MSU: start a live channel (ingest + fan-out).

    The MSU creates the ring file, installs a recording stream fed by
    the broadcaster at ``source_host`` (which learns the ingest address
    through the usual :class:`StreamReady` ``record_address``), and a
    tail-following :class:`ChannelStream` fanning the same file out to
    ``mcast_address`` while it is still being appended.  ``ring_blocks``
    bounds the time-shift window: pages older than the window are
    reclaimed, except when the channel doubles as a scheduled recording
    (``ring_blocks`` 0 keeps everything).
    """

    channel_id: int
    group_id: int          # the fan-out stream's own MSU-side group
    stream_id: int
    ingest_group_id: int   # the broadcaster's group (holds the RecordStream)
    ingest_stream_id: int
    content_name: str
    disk_id: str
    protocol: str
    rate: float
    variable: bool
    source_host: str
    mcast_address: Tuple[str, int]
    reserve_blocks: int = 0
    ring_blocks: int = 0   # 0 = no trimming (scheduled recording)


@dataclass(frozen=True)
class LiveStop:
    """Coordinator -> MSU: end a live channel's ingest (EPG off-air).

    The recording stream finishes (trailer pages + root), the fan-out
    drains to the true end of file and completes normally, and every
    viewer hears :class:`EndOfStream` — the same path a broadcaster quit
    takes through the VCR channel.
    """

    channel_id: int


@dataclass(frozen=True)
class LiveRewound:
    """MSU -> Coordinator: a live viewer rewound into the ring window.

    The MSU already runs the unicast rewind patch over
    ``[start_page, end_page)``; the Coordinator charges a refundable
    patch slot (released again by :class:`PatchDrained` when the viewer
    re-merges with the live fan-out).  ``hit`` is False when part of the
    requested window had already been reclaimed and the patch was
    clamped to the oldest resident page.
    """

    channel_id: int
    group_id: int
    stream_id: int
    start_page: int
    end_page: int
    hit: bool = True


# -- edge proxies (Coordinator <-> EdgeProxy) ---------------------------------

@dataclass(frozen=True)
class EdgeHello:
    """Sent when an edge proxy (re)connects to the Coordinator.

    ``pinned`` carries the edge's surviving prefix inventory as
    ``(content_name, pages)`` pairs — the authoritative truth the
    Coordinator's placement view adopts wholesale (edge-wins
    reconciliation, mirroring the MSU StateReport contract).
    """

    edge_name: str
    memory_budget: int
    uplink_bps: float
    pinned: Tuple[Tuple[str, int], ...] = ()


@dataclass(frozen=True)
class PlacePrefix:
    """Coordinator -> edge: fetch and pin a title's opening pages.

    The edge trickle-fetches ``pages`` pages of ``page_size`` bytes from
    the title's home MSU and pins them; the fill is best effort and the
    Coordinator learns the outcome from the next :class:`EdgeReport`.
    """

    content_name: str
    msu_name: str
    disk_id: str
    pages: int
    page_size: int
    rate: float


@dataclass(frozen=True)
class EvictPrefix:
    """Coordinator -> edge: drop a title's pinned prefix (placement loop)."""

    content_name: str


@dataclass(frozen=True)
class EdgeReport:
    """Edge -> Coordinator: periodic inventory + counters report."""

    edge_name: str
    pinned: Tuple[Tuple[str, int], ...] = ()
    bytes_pinned: int = 0
    uplink_used_bps: float = 0.0
    prefix_bytes_served: int = 0
    patch_bytes_served: int = 0
    hits: int = 0
    misses: int = 0


@dataclass(frozen=True)
class EdgeServe:
    """Coordinator -> edge: pace pages ``[start_page, end_page)`` of a
    title at ``rate`` to ``display_address``.

    ``kind`` is ``"prefix"`` (opening leg of a spliced unicast play,
    sharing the MSU tail stream's ids), ``"patch"`` (a late joiner's
    multicast catch-up window) or ``"interval"`` (a trailing viewer
    riding a recently-served window).
    """

    group_id: int
    stream_id: int
    content_name: str
    display_address: Tuple[str, int]
    start_page: int
    end_page: int
    rate: float
    page_size: int
    kind: str = "prefix"


@dataclass(frozen=True)
class EdgeServeDone:
    """Edge -> Coordinator: a serve finished; refund its uplink charge."""

    edge_name: str
    group_id: int
    stream_id: int
    nbytes: int
    kind: str = "prefix"


# -- MSU <-> client ------------------------------------------------------------

@dataclass(frozen=True)
class StreamReady:
    """The MSU's control connection greeting: VCR commands may begin."""

    group_id: int
    msu_name: str
    stream_id: int = -1
    content_name: str = ""
    group_size: int = 1
    #: For recordings: the MSU address the client should send media to.
    record_address: Optional[Tuple[str, int]] = None


VCR_PLAY = "play"
VCR_PAUSE = "pause"
VCR_SEEK = "seek"
VCR_FAST_FORWARD = "fast-forward"
VCR_FAST_BACKWARD = "fast-backward"
VCR_NORMAL = "normal"
VCR_QUIT = "quit"
#: Live channels only: jump back ``position_seconds`` into the
#: time-shift ring window (pause-live resume uses it implicitly).
VCR_REWIND = "rewind"


@dataclass(frozen=True)
class VcrCommand:
    group_id: int
    command: str
    position_seconds: float = 0.0  # for seek


@dataclass(frozen=True)
class EndOfStream:
    group_id: int
    stream_id: int
