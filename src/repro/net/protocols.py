"""MSU protocol-extension modules (§2.3.2).

"An MSU protocol extension module is comprised of two functions.  The
first performs any operations required by the protocol beyond the normal
sending or receiving of data packets. ... The MSU calls the second
extension function during recording to construct a delivery schedule."

A module therefore supplies:

* :meth:`ProtocolModule.delivery_time_us` — the delivery-time derivation
  used while recording.  The default derives it from the packet's arrival
  time; protocols with header timestamps (RTP, VAT) override it so the
  stored schedule "does not include the effects of network-induced jitter".
* :meth:`ProtocolModule.classify` — whether an incoming packet is data or
  an interleaved control message (RTP's control socket traffic is stored
  in-stream as KIND_CONTROL records and demultiplexed again on playback).
* :meth:`ProtocolModule.playback_ports` — how many UDP ports the display
  port consumes (RTP uses two: data and control).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ProtocolError
from repro.net.rtp import RtpHeader
from repro.net.vat import VatHeader
from repro.storage.ibtree import KIND_CONTROL, KIND_DATA

__all__ = [
    "ProtocolModule",
    "RawProtocol",
    "RtpProtocol",
    "VatProtocol",
    "ProtocolRegistry",
    "default_registry",
]


class ProtocolModule:
    """Base module: fixed-size packets at a constant rate, arrival-timed.

    This default handles "any protocol and/or encoding which can be
    handled by transmitting fixed sized packets at a constant rate".
    """

    name = "raw"

    def new_context(self) -> Dict:
        """Fresh per-stream recording state."""
        return {"first_arrival_us": None}

    def playback_ports(self) -> int:
        """UDP ports a display port of this protocol occupies."""
        return 1

    def classify(self, payload: bytes, ctx: Dict) -> int:
        """KIND_DATA or KIND_CONTROL for an incoming packet."""
        return KIND_DATA

    def delivery_time_us(self, payload: bytes, arrival_us: int, ctx: Dict) -> int:
        """Delivery-schedule offset for a packet recorded at ``arrival_us``.

        Offsets are relative to the start of the recording session
        ("arrival times in delivery schedules are not absolute", §2.2.1).
        """
        if ctx["first_arrival_us"] is None:
            ctx["first_arrival_us"] = arrival_us
        return arrival_us - ctx["first_arrival_us"]


class RawProtocol(ProtocolModule):
    """Explicit name for the default fixed-rate module."""


class _TimestampedProtocol(ProtocolModule):
    """Shared logic for protocols with a media timestamp in the header."""

    clock_hz = 1

    def new_context(self) -> Dict:
        return {"first_arrival_us": None, "first_ts_us": None}

    def _header_timestamp_us(self, payload: bytes) -> Optional[int]:
        raise NotImplementedError

    def delivery_time_us(self, payload: bytes, arrival_us: int, ctx: Dict) -> int:
        if ctx["first_arrival_us"] is None:
            ctx["first_arrival_us"] = arrival_us
        ts_us = self._header_timestamp_us(payload)
        if ts_us is None:
            # Control messages have no media timestamp: use arrival.
            return arrival_us - ctx["first_arrival_us"]
        if ctx["first_ts_us"] is None:
            ctx["first_ts_us"] = ts_us
        offset = ts_us - ctx["first_ts_us"]
        if offset < 0:
            raise ProtocolError(
                f"{self.name}: media timestamp moved backwards by {-offset} us"
            )
        return offset


class RtpProtocol(_TimestampedProtocol):
    """RTP [13]: two ports (data + control), timestamp-derived schedule."""

    name = "rtp"
    clock_hz = 90_000

    def playback_ports(self) -> int:
        return 2  # data and control

    def classify(self, payload: bytes, ctx: Dict) -> int:
        # The recording path marks control-socket traffic before storage;
        # anything unparseable as RTP is treated as a control message.
        try:
            RtpHeader.parse(payload)
            return KIND_DATA
        except ProtocolError:
            return KIND_CONTROL

    def _header_timestamp_us(self, payload: bytes) -> Optional[int]:
        try:
            return RtpHeader.parse(payload).timestamp_us(self.clock_hz)
        except ProtocolError:
            return None


class VatProtocol(_TimestampedProtocol):
    """VAT [17] audio: timestamp-derived schedule, single port."""

    name = "vat"
    clock_hz = 8_000

    def _header_timestamp_us(self, payload: bytes) -> Optional[int]:
        try:
            return VatHeader.parse(payload).timestamp_us(self.clock_hz)
        except ProtocolError:
            return None


class ProtocolRegistry:
    """The MSU's installed protocol modules; extensible at runtime."""

    def __init__(self):
        self._modules: Dict[str, ProtocolModule] = {}

    def install(self, module: ProtocolModule) -> None:
        """Add a module (new protocols "can be added to the system easily")."""
        self._modules[module.name] = module

    def get(self, name: str) -> ProtocolModule:
        """Look up a module; raises for unknown protocols."""
        try:
            return self._modules[name]
        except KeyError:
            raise ProtocolError(f"no protocol module {name!r} installed") from None

    def names(self):
        """Installed module names, sorted."""
        return sorted(self._modules)


def default_registry() -> ProtocolRegistry:
    """The modules a stock MSU ships with: raw, RTP and VAT."""
    reg = ProtocolRegistry()
    reg.install(RawProtocol())
    reg.install(RtpProtocol())
    reg.install(VatProtocol())
    return reg
