"""Hosts, sockets, datagram networks and control channels.

Calliope's topology (§2): a low-bandwidth intra-server Ethernet carries
Coordinator/MSU control traffic over TCP; a high-bandwidth delivery
network (FDDI) carries real-time data to clients over UDP, plus one TCP
control connection per active stream for VCR commands.

A :class:`Host` may own a simulated :class:`~repro.hardware.machine.Machine`
(MSUs and the Coordinator do), in which case packets pay the full host
send/receive path on that machine's NIC; plain client hosts pay only wire
latency (client CPUs are outside the paper's measurement scope).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional, Tuple

import numpy as np

from repro.errors import ProtocolError
from repro.hardware.machine import Machine
from repro.hardware.nic import NetworkInterface
from repro.sim import Simulator, Store

__all__ = [
    "Datagram", "UdpSocket", "Host", "Network", "ControlChannel",
    "MULTICAST_PREFIX", "is_multicast",
]

Address = Tuple[str, int]  # (host name, port)

#: Host names starting with this prefix are multicast group addresses:
#: they name a delivery group on the network, not a registered host.
MULTICAST_PREFIX = "mcast:"


def is_multicast(address: Address) -> bool:
    """True when ``address`` names a multicast group, not a host."""
    return address[0].startswith(MULTICAST_PREFIX)


@dataclass(frozen=True)
class Datagram:
    """One UDP datagram on a simulated wire."""

    src: Address
    dst: Address
    payload: bytes
    sent_at: float = 0.0


class UdpSocket:
    """A bound UDP endpoint: a mailbox of received datagrams."""

    def __init__(self, sim: Simulator, host: "Host", port: int):
        self.sim = sim
        self.host = host
        self.port = port
        self._mailbox = Store(sim, name=f"{host.name}:{port}")
        self.received = 0
        self.dropped = 0
        #: Optional callback invoked on every delivery (e.g. IOP wakeup).
        self.notify: Optional[Callable[[], None]] = None

    @property
    def address(self) -> Address:
        """The (host, port) this socket is bound to."""
        return (self.host.name, self.port)

    def recv(self):
        """Event that fires with the next :class:`Datagram`."""
        return self._mailbox.get()

    def try_recv(self) -> Optional[Datagram]:
        """Non-blocking receive."""
        return self._mailbox.try_get()

    def pending(self) -> int:
        """Datagrams waiting in the mailbox."""
        return len(self._mailbox)

    def send(self, dst: Address, payload: bytes) -> Generator:
        """Send a datagram (full host path if this host has a machine)."""
        yield from self.host.network.send(
            Datagram(self.address, dst, payload, self.host.sim.now)
        )

    def send_many(self, dst: Address, payloads) -> Generator:
        """Send several datagrams to one destination under one host pass.

        The burst pays the NIC's aggregate send cost once (one CPU hold,
        see :meth:`NetworkInterface.udp_send_burst`), then each datagram
        takes the normal per-packet wire tail — loss draws, multicast
        fan-out and wire delays happen per datagram in list order, so the
        RNG stream and arrival schedule match ``n`` sequential sends that
        left the host back to back.
        """
        now = self.host.sim.now
        src = self.address
        yield from self.host.network.send_burst(
            [Datagram(src, dst, p, now) for p in payloads]
        )

    def close(self) -> None:
        """Unbind the socket; further arrivals are dropped."""
        self.host.unbind(self.port)


class Host:
    """A named endpoint on a network, optionally backed by a Machine NIC."""

    def __init__(
        self,
        sim: Simulator,
        network: "Network",
        name: str,
        machine: Optional[Machine] = None,
        nic: Optional[NetworkInterface] = None,
    ):
        self.sim = sim
        self.network = network
        self.name = name
        self.machine = machine
        self.nic = nic
        self._sockets: Dict[int, UdpSocket] = {}
        self._next_port = 5000
        network._register(self)

    def bind(self, port: Optional[int] = None) -> UdpSocket:
        """Create a UDP socket on ``port`` (or an ephemeral one)."""
        if port is None:
            while self._next_port in self._sockets:
                self._next_port += 1
            port = self._next_port
            self._next_port += 1
        if port in self._sockets:
            raise ProtocolError(f"{self.name}: port {port} already bound")
        sock = UdpSocket(self.sim, self, port)
        self._sockets[port] = sock
        return sock

    def unbind(self, port: int) -> None:
        """Release a bound port."""
        self._sockets.pop(port, None)

    def socket_on(self, port: int) -> Optional[UdpSocket]:
        """The socket bound to ``port``, if any."""
        return self._sockets.get(port)


class Network:
    """A datagram network: latency + optional jitter between hosts.

    ``send`` is a simulation process: it pays the sender's host path (NIC
    send on machine-backed hosts), then the wire latency, then the
    receiver's host path, then deposits into the destination mailbox.
    Unknown destinations are silently dropped (UDP semantics).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "net0",
        latency: float = 0.0005,
        jitter: float = 0.0,
        loss_rate: float = 0.0,
        seed: int = 5,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ProtocolError(f"loss rate {loss_rate} outside [0, 1)")
        self.sim = sim
        self.name = name
        self.latency = latency
        self.jitter = jitter
        self.loss_rate = loss_rate
        self._rng = np.random.default_rng(seed)
        self._hosts: Dict[str, Host] = {}
        self._groups: Dict[str, set] = {}
        #: Hosts cut off from the wire (a partition fault): datagrams to
        #: or from a partitioned host drop silently, UDP-style.
        self._partitioned: set = set()
        self.datagrams_carried = 0
        self.datagrams_lost = 0
        self.datagrams_partitioned = 0
        self.bytes_carried = 0
        #: Datagrams sent to a multicast group (counted once per send).
        self.multicast_carried = 0
        #: Per-member copies fanned out at delivery (the shared-ring model:
        #: one set of wire bytes, one receive path per listening member).
        self.multicast_copies = 0

    def _register(self, host: Host) -> None:
        if host.name in self._hosts:
            raise ProtocolError(f"duplicate host {host.name!r} on {self.name}")
        self._hosts[host.name] = host

    def host(self, name: str) -> Host:
        """Look up a registered host."""
        return self._hosts[name]

    def join_group(self, group: str, member: Address) -> None:
        """Subscribe ``member`` (a unicast socket address) to ``group``."""
        if not group.startswith(MULTICAST_PREFIX):
            raise ProtocolError(f"{group!r} is not a multicast group name")
        self._groups.setdefault(group, set()).add(tuple(member))

    def leave_group(self, group: str, member: Address) -> None:
        """Unsubscribe ``member`` from ``group`` (no-op when absent)."""
        members = self._groups.get(group)
        if members is None:
            return
        members.discard(tuple(member))
        if not members:
            del self._groups[group]

    def group_members(self, group: str) -> Tuple[Address, ...]:
        """Current members of ``group`` (deterministic order)."""
        return tuple(sorted(self._groups.get(group, ())))

    def partition(self, host_name: str) -> None:
        """Cut ``host_name`` off the wire: its traffic drops both ways."""
        self._partitioned.add(host_name)

    def heal(self, host_name: str) -> None:
        """Reconnect a partitioned host (no-op when not partitioned)."""
        self._partitioned.discard(host_name)

    def is_partitioned(self, host_name: str) -> bool:
        """True while ``host_name`` is cut off by :meth:`partition`."""
        return host_name in self._partitioned

    def _wire_delay(self) -> float:
        if self.jitter > 0:
            return self.latency + float(self._rng.uniform(0.0, self.jitter))
        return self.latency

    def send(self, dgram: Datagram) -> Generator:
        """Carry one datagram end to end (see class docstring)."""
        src_host = self._hosts.get(dgram.src[0])
        if src_host is not None and src_host.nic is not None:
            yield from src_host.nic.udp_send(max(1, len(dgram.payload)))
        self._launch(dgram)

    def send_burst(self, dgrams) -> Generator:
        """Carry several datagrams from one source under one host pass.

        The sender's NIC charges the whole burst in a single CPU hold
        (:meth:`NetworkInterface.udp_send_burst`); the wire tail — loss
        draws, partition checks, multicast fan-out, per-datagram delays —
        runs per datagram in list order, preserving the RNG draw sequence
        of back-to-back :meth:`send` calls.
        """
        if not dgrams:
            return
        src_host = self._hosts.get(dgrams[0].src[0])
        if src_host is not None and src_host.nic is not None:
            yield from src_host.nic.udp_send_burst(
                [(None, max(1, len(d.payload))) for d in dgrams]
            )
        for dgram in dgrams:
            self._launch(dgram)

    def _launch(self, dgram: Datagram) -> None:
        """Wire tail shared by ``send`` and ``send_burst``: the datagram
        has cleared the sender's host path; put it on the wire."""
        self.datagrams_carried += 1
        self.bytes_carried += len(dgram.payload)
        if dgram.src[0] in self._partitioned:
            self.datagrams_partitioned += 1
            return
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.datagrams_lost += 1  # dropped on the wire (UDP semantics)
            return
        if is_multicast(dgram.dst):
            # Shared-ring fan-out: the wire carries the bytes once; every
            # subscribed member runs its own receive path.  The datagram
            # keeps the group destination, as IP multicast does, so a
            # receiver can tell a channel flow from a unicast patch flow.
            self.multicast_carried += 1
            for member in self.group_members(dgram.dst[0]):
                self.multicast_copies += 1
                self.sim.schedule(
                    self._wire_delay(), self._arrive, dgram, member
                )
            return
        self.sim.schedule(self._wire_delay(), self._arrive, dgram)

    def _arrive(self, dgram: Datagram, member: Optional[Address] = None) -> None:
        dest = member if member is not None else dgram.dst
        if dest[0] in self._partitioned:
            self.datagrams_partitioned += 1
            return
        host = self._hosts.get(dest[0])
        if host is None:
            return
        if host.nic is not None:
            self.sim.process(self._receive_path(host, dgram, dest[1]), name="rx")
        else:
            self._deliver(host, dgram, dest[1])

    def _receive_path(self, host: Host, dgram: Datagram, port: int) -> Generator:
        yield from host.nic.udp_receive(max(1, len(dgram.payload)))
        self._deliver(host, dgram, port)

    def _deliver(self, host: Host, dgram: Datagram, port: int) -> None:
        sock = host.socket_on(port)
        if sock is None:
            return  # no listener: dropped, as UDP does
        sock._mailbox.put(dgram)
        sock.received += 1
        if sock.notify is not None:
            sock.notify()


class ControlChannel:
    """A TCP-like duplex control connection between two endpoints.

    In-order, reliable, with per-message wire latency.  ``close`` wakes the
    peer with a ``None`` message — the Coordinator detects MSU failures by
    exactly this "break in the TCP connection" (§2.2).
    """

    def __init__(self, sim: Simulator, a: str, b: str, latency: float = 0.001,
                 network: Optional[Network] = None):
        self.sim = sim
        self.latency = latency
        self.network = network
        self.ends = (a, b)
        self._mailboxes = {a: Store(sim, name=f"chan:{a}"), b: Store(sim, name=f"chan:{b}")}
        self.open = True
        self.messages_carried = 0
        self.bytes_carried = 0
        #: Optional hook called with (sender_end, message) for accounting.
        self.on_message: Optional[Callable[[str, Any], None]] = None

    def _peer(self, end: str) -> str:
        a, b = self.ends
        if end == a:
            return b
        if end == b:
            return a
        raise ProtocolError(f"{end!r} is not an end of this channel")

    def send(self, sender: str, message: Any, nbytes: int = 128) -> None:
        """Send ``message`` to the peer of ``sender`` (fire and forget)."""
        if not self.open:
            return  # writes on a broken connection vanish
        peer = self._peer(sender)
        self.messages_carried += 1
        self.bytes_carried += nbytes
        if self.network is not None:
            self.network.bytes_carried += nbytes
            self.network.datagrams_carried += 1
        if self.on_message is not None:
            self.on_message(sender, message)
        self.sim.schedule(self.latency, self._mailboxes[peer].put, message)

    def recv(self, end: str):
        """Event firing with the next message for ``end`` (None = break)."""
        self._peer(end)  # validates the end name
        return self._mailboxes[end].get()

    def close(self) -> None:
        """Break the connection; both ends see a ``None`` wake-up."""
        if not self.open:
            return
        self.open = False
        for box in self._mailboxes.values():
            self.sim.schedule(self.latency, box.put, None)
