"""Interval caching: retain a leader's pages for its trailing viewers.

Streams on the same content form leader/follower pairs by position.  When
a leading stream reads a page from disk and at least one registered
stream is still behind that position, the page is retained in the pool;
each trailing stream that passes the page drops its claim, and the page
is evicted once every claimant has consumed (or abandoned) it.  Memory
cost is therefore proportional to the leader/follower gap — the
"interval" — not to the file size.

Followers that register after a page was retained may still read it
(free riding) without holding a claim; claims only ever shrink, so the
pool cannot leak pages to viewers that never arrive.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set, Tuple

from repro.cache.pool import BufferPool

__all__ = ["IntervalCache"]

#: Cache key for one stored file: (disk id, file name).
Key = Tuple[str, str]


class _Retained:
    """One cached page and the trailing streams still owed it."""

    __slots__ = ("data", "claims")

    def __init__(self, data: bytes, claims: Set[int]):
        self.data = data
        self.claims = claims


class IntervalCache:
    """Leader/follower page retention over a shared :class:`BufferPool`."""

    def __init__(self, pool: BufferPool):
        self.pool = pool
        #: key -> {stream_id: next page index the stream will read}.
        self._positions: Dict[Key, Dict[int, int]] = {}
        #: key -> {page_index: retained page}.
        self._pages: Dict[Key, Dict[int, _Retained]] = {}
        self.hits = 0
        self.filled = 0
        self.evicted = 0

    # -- stream tracking -----------------------------------------------------

    def observe(self, key: Key, stream_id: int, next_index: int) -> None:
        """Record that ``stream_id`` will next read ``next_index`` of ``key``."""
        self._positions.setdefault(key, {})[stream_id] = next_index

    def forget_stream(self, stream_id: int) -> None:
        """A stream ended: drop its position and release its page claims."""
        for key in list(self._positions):
            self._positions[key].pop(stream_id, None)
            if not self._positions[key]:
                del self._positions[key]
        for key in list(self._pages):
            for index in list(self._pages.get(key, ())):
                page = self._pages[key][index]
                if stream_id in page.claims:
                    page.claims.discard(stream_id)
                    if not page.claims:
                        self._evict(key, index)

    # -- data path ------------------------------------------------------------

    def lookup(self, key: Key, index: int, stream_id: int) -> Optional[bytes]:
        """The retained page, if any; consumes this stream's claim on it."""
        self.observe(key, stream_id, index + 1)
        pages = self._pages.get(key)
        if pages is None or index not in pages:
            return None
        page = pages[index]
        data = page.data
        page.claims.discard(stream_id)
        if not page.claims:
            self._evict(key, index)
        self.hits += 1
        return data

    def fill(self, key: Key, index: int, data: bytes, producer_id: int) -> bool:
        """Offer a page the producer just read from disk.

        Retained only when a registered stream other than the producer is
        still at or behind ``index`` (it will want this page later) and
        the pool has room.
        """
        self.observe(key, producer_id, index + 1)
        positions = self._positions.get(key, {})
        trailing = {
            sid for sid, pos in positions.items()
            if sid != producer_id and pos <= index
        }
        if not trailing:
            return False
        pages = self._pages.setdefault(key, {})
        existing = pages.get(index)
        if existing is not None:
            existing.claims |= trailing
            return True
        if not self.pool.try_reserve(len(data)):
            return False
        pages[index] = _Retained(data, trailing)
        self.filled += 1
        return True

    def invalidate(self, key: Key) -> None:
        """Drop every retained page of one file (delete path)."""
        for index in list(self._pages.get(key, ())):
            self._evict(key, index)
        self._positions.pop(key, None)

    # -- internals ---------------------------------------------------------------

    def _evict(self, key: Key, index: int) -> None:
        page = self._pages[key].pop(index)
        self.pool.release(len(page.data))
        if not self._pages[key]:
            del self._pages[key]
        self.evicted += 1

    # -- introspection -------------------------------------------------------------

    def retained_pages(self, key: Optional[Hashable] = None) -> int:
        """Retained page count, for one file or in total."""
        if key is not None:
            return len(self._pages.get(key, ()))
        return sum(len(pages) for pages in self._pages.values())

    def retained_bytes(self) -> int:
        """Pool bytes held by retained pages (refcount-balance audits)."""
        return sum(
            len(page.data)
            for pages in self._pages.values()
            for page in pages.values()
        )

    def unclaimed_pages(self) -> int:
        """Retained pages with an empty claim set — must always be zero
        (a page's last claimant evicts it on consumption)."""
        return sum(
            1
            for pages in self._pages.values()
            for page in pages.values()
            if not page.claims
        )
