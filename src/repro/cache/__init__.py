"""MSU-resident buffer cache: interval + prefix caching (extension).

The paper ships without a block cache ("an LRU block cache would impair
performance because there is not enough data locality or sharing",
§2.3.3) — true for a general LRU cache, but the VoD experiments show
Zipf popularity concentrating demand on a few hot titles, exactly the
regime *interval caching* exploits: a trailing viewer of a title re-reads
the pages a leading viewer just read, so retaining the leader's pages in
a bounded memory pool until the follower consumes them turns the
follower's disk duty-cycle slots into memory copies.  A *prefix cache*
complements it by pinning the first blocks of hot titles, covering the
follower's catch-up gap (the pages between its start and the point where
the leader's retained pages begin).

This is the departure-from-the-paper subsystem described by the interval
caching literature (Jayarekha & Nair; Nair & Jayarekha — see PAPERS.md).
"""

from repro.cache.interval import IntervalCache
from repro.cache.manager import CacheConfig, CacheSnapshot, MsuPageCache
from repro.cache.pool import BufferPool
from repro.cache.prefix import PrefixCache

__all__ = [
    "BufferPool",
    "IntervalCache",
    "PrefixCache",
    "CacheConfig",
    "CacheSnapshot",
    "MsuPageCache",
]
