"""The MSU's page cache: one pool, two policies, one stats surface.

:class:`MsuPageCache` is what the disk processes talk to.  A lookup
consults the prefix cache first (pinned pages are never evicted by
passing viewers), then the interval cache; a miss falls through to the
disk and the read-back page is offered to the interval cache for any
trailing viewers.  Hits cost a memory copy, not a duty-cycle disk slot —
``slots_saved`` counts exactly the freed slots, which is the quantity the
Coordinator's popularity-aware admission banks on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cache.interval import IntervalCache
from repro.cache.pool import BufferPool
from repro.cache.prefix import PrefixCache
from repro.units import MIB

__all__ = ["CacheConfig", "CacheSnapshot", "MsuPageCache"]

Key = Tuple[str, str]


@dataclass(frozen=True)
class CacheConfig:
    """Sizing and reporting knobs for one MSU's page cache."""

    #: Shared memory budget for retained + pinned pages.
    pool_bytes: int = 32 * MIB
    #: Pinned opening pages per hot title (prefix cache budget).
    prefix_pages: int = 16
    #: Deliverable bytes/sec the cache path can sustain — what the MSU
    #: advertises to the Coordinator for cache-covered admission.  The
    #: memory path is far faster than a disk, so the MSU's delivery-path
    #: budget is normally what binds; this default matches it (§3.2.1).
    bandwidth: float = 4.2e6
    #: Memory-copy throughput for a cache hit (bytes/sec); a 256 KiB page
    #: costs ~3 ms, milliseconds cheaper than a disk slot's seek+transfer.
    copy_rate: float = 80e6
    #: Seconds between cache-served-bandwidth reports to the Coordinator.
    report_period: float = 1.0


@dataclass(frozen=True)
class CacheSnapshot:
    """One moment's cache statistics (reported to the Coordinator)."""

    hits: int
    misses: int
    prefix_hits: int
    interval_hits: int
    bytes_served: int
    slots_saved: int
    pool_used: int
    pool_peak: int
    pool_capacity: int
    pinned_pages: int

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def occupancy(self) -> float:
        return self.pool_used / self.pool_capacity if self.pool_capacity else 0.0


class MsuPageCache:
    """Interval + prefix caching behind one bounded pool."""

    def __init__(self, config: CacheConfig = CacheConfig()):
        self.config = config
        self.pool = BufferPool(config.pool_bytes)
        self.interval = IntervalCache(self.pool)
        self.prefix = PrefixCache(self.pool, config.prefix_pages)
        self.misses = 0
        self.bytes_served = 0

    # -- disk-process interface ----------------------------------------------

    def lookup(self, key: Key, index: int, stream_id: int) -> Optional[bytes]:
        """The cached page, or None (the caller then spends a disk slot)."""
        data = self.prefix.lookup(key, index)
        if data is not None:
            # Keep the interval tracker's position fresh so pages the
            # prefix covers are not retained for this stream again.
            self.interval.observe(key, stream_id, index + 1)
        else:
            data = self.interval.lookup(key, index, stream_id)
        if data is None:
            self.misses += 1
            return None
        self.bytes_served += len(data)
        return data

    def fill(self, key: Key, index: int, data: bytes, producer_id: int) -> bool:
        """Offer a disk-read page for retention (leader feeding followers)."""
        return self.interval.fill(key, index, data, producer_id)

    def forget_stream(self, stream_id: int) -> None:
        """A stream left its disk's duty cycle."""
        self.interval.forget_stream(stream_id)

    def invalidate(self, key: Key) -> None:
        """A file was deleted: drop its retained and pinned pages."""
        self.interval.invalidate(key)
        self.prefix.unpin(key)

    def copy_time(self, nbytes: int) -> float:
        """Simulated seconds to copy a cache hit to the stream buffer."""
        return nbytes / self.config.copy_rate if self.config.copy_rate else 0.0

    # -- admin interface -----------------------------------------------------------

    def pin_prefix(self, key: Key, index: int, data: bytes) -> bool:
        """Pin one opening page of a hot title (PinPrefix handling)."""
        return self.prefix.pin(key, index, data)

    def clear(self) -> None:
        """Lose everything (MSU crash: cache memory does not survive)."""
        self.interval = IntervalCache(self.pool)
        self.prefix = PrefixCache(self.pool, self.config.prefix_pages)
        self.pool.used = 0

    # -- statistics -------------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self.prefix.hits + self.interval.hits

    @property
    def slots_saved(self) -> int:
        """Duty-cycle read slots that never reached a disk."""
        return self.hits

    def accounted_bytes(self) -> Tuple[int, int]:
        """(interval bytes, prefix bytes) currently charged to the pool."""
        return self.interval.retained_bytes(), self.prefix.pinned_bytes()

    def audit(self) -> list:
        """Pin/refcount-balance anomalies, as strings.

        Pool accounting is synchronous, so these hold at any instant:
        every pool byte is explained by exactly one retained or pinned
        page, the pool never exceeds its capacity, and no retained page
        survives without a claimant.
        """
        problems = []
        interval_bytes, prefix_bytes = self.accounted_bytes()
        if self.pool.used != interval_bytes + prefix_bytes:
            problems.append(
                f"pool used {self.pool.used} != retained {interval_bytes} "
                f"+ pinned {prefix_bytes}"
            )
        if not 0 <= self.pool.used <= self.pool.capacity:
            problems.append(
                f"pool used {self.pool.used} outside [0, {self.pool.capacity}]"
            )
        unclaimed = self.interval.unclaimed_pages()
        if unclaimed:
            problems.append(f"{unclaimed} retained pages with no claimant")
        pinned_count = sum(
            len(pages) for pages in self.prefix._pinned.values()
        )
        if self.prefix.pinned_pages != pinned_count:
            problems.append(
                f"prefix pinned_pages {self.prefix.pinned_pages} != "
                f"{pinned_count} pages actually pinned"
            )
        return problems

    def snapshot(self) -> CacheSnapshot:
        return CacheSnapshot(
            hits=self.hits,
            misses=self.misses,
            prefix_hits=self.prefix.hits,
            interval_hits=self.interval.hits,
            bytes_served=self.bytes_served,
            slots_saved=self.slots_saved,
            pool_used=self.pool.used,
            pool_peak=self.pool.peak,
            pool_capacity=self.pool.capacity,
            pinned_pages=self.prefix.pinned_pages,
        )
