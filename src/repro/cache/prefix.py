"""Prefix caching: pin the opening blocks of hot titles.

A new viewer of a popular title always starts at page 0, so the first N
pages see the most re-reads of the whole file.  Pinning them serves two
purposes: admission latency drops (the opening buffers need no disk
slot), and a trailing viewer's catch-up gap — the pages between its start
position and the beginning of the leader's retained interval — is covered
from memory, letting interval caching take over without the follower ever
touching the disk.

The Coordinator drives pinning from the admin database's per-title
request counts (popularity-aware admission); the cache itself only
stores what it is told to pin, bounded by the shared pool.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cache.pool import BufferPool

__all__ = ["PrefixCache"]

Key = Tuple[str, str]


class PrefixCache:
    """Pinned opening pages per title, bounded by the shared pool."""

    def __init__(self, pool: BufferPool, max_pages_per_title: int = 16):
        if max_pages_per_title < 0:
            raise ValueError(f"negative prefix length: {max_pages_per_title}")
        self.pool = pool
        self.max_pages_per_title = max_pages_per_title
        self._pinned: Dict[Key, Dict[int, bytes]] = {}
        self.hits = 0
        self.pinned_pages = 0

    def pin(self, key: Key, index: int, data: bytes) -> bool:
        """Pin page ``index`` of ``key``; False when budget or pool deny it."""
        pages = self._pinned.setdefault(key, {})
        if index in pages:
            return True
        if len(pages) >= self.max_pages_per_title:
            return False
        if not self.pool.try_reserve(len(data)):
            return False
        pages[index] = data
        self.pinned_pages += 1
        return True

    def lookup(self, key: Key, index: int) -> Optional[bytes]:
        """The pinned page, if this index is part of the title's prefix."""
        data = self._pinned.get(key, {}).get(index)
        if data is not None:
            self.hits += 1
        return data

    def is_pinned(self, key: Key, index: int) -> bool:
        """Whether the page is already pinned (pin planning, no hit count)."""
        return index in self._pinned.get(key, {})

    def pinned_count(self, key: Key) -> int:
        """How many pages of this title's prefix are pinned."""
        return len(self._pinned.get(key, {}))

    def pinned_titles(self) -> Dict[Key, int]:
        """Every pinned title's key with its pinned-page count.

        The recovery StateReport uses this so a restarted Coordinator can
        reconcile its ``prefix_pinned`` flags against cache reality.
        """
        return {key: len(pages) for key, pages in self._pinned.items() if pages}

    def pinned_bytes(self) -> int:
        """Pool bytes held by pinned prefixes (refcount-balance audits)."""
        return sum(
            len(data)
            for pages in self._pinned.values()
            for data in pages.values()
        )

    def unpin(self, key: Key) -> int:
        """Release a title's whole prefix (delete path); returns pages freed."""
        pages = self._pinned.pop(key, {})
        for data in pages.values():
            self.pool.release(len(data))
        self.pinned_pages -= len(pages)
        return len(pages)
