"""A bounded byte pool shared by every cache on one MSU.

The pool does no storage of its own: the interval and prefix caches keep
the page bytes, and account every retained page here so the MSU's cache
memory stays within the configured budget.  Occupancy statistics feed the
cache experiment's report (pool occupancy is the cost axis of interval
caching: retained bytes track the leader/follower gap).
"""

from __future__ import annotations

__all__ = ["BufferPool"]


class BufferPool:
    """Byte-accounting for a fixed cache memory budget."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError(f"negative pool capacity: {capacity_bytes}")
        self.capacity = capacity_bytes
        self.used = 0
        self.peak = 0
        self.denied = 0  # reservations refused for lack of space

    @property
    def free(self) -> int:
        return self.capacity - self.used

    @property
    def occupancy(self) -> float:
        """Fraction of the pool currently holding retained pages."""
        return self.used / self.capacity if self.capacity else 0.0

    def try_reserve(self, nbytes: int) -> bool:
        """Claim ``nbytes`` if they fit; False (and counted) otherwise."""
        if nbytes < 0:
            raise ValueError(f"negative reservation: {nbytes}")
        if self.used + nbytes > self.capacity:
            self.denied += 1
            return False
        self.used += nbytes
        self.peak = max(self.peak, self.used)
        return True

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the pool."""
        if nbytes < 0 or nbytes > self.used:
            raise ValueError(
                f"release({nbytes}) with {self.used} bytes outstanding"
            )
        self.used -= nbytes
