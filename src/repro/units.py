"""Units and conversion helpers used throughout the reproduction.

Conventions (matching the paper):

* time      — seconds (float)
* sizes     — bytes (int)
* rates     — bytes/second; the paper's "MByte/sec" means 10**6 bytes/sec
* bit rates — the paper's "Mbit/sec" means 10**6 bits/sec

Block and page sizes, on the other hand, are powers of two ("256 KByte
blocks" are 256 KiB), which is how the MSU file system lays data out.
"""

from __future__ import annotations

KB = 1_000  # 10**3 bytes (decimal, for rates)
MB = 1_000_000  # 10**6 bytes (decimal, for rates; the paper's "MByte")
KIB = 1024  # binary kilobyte (for block/page sizes)
MIB = 1024 * 1024

MS = 1e-3  # milliseconds in seconds
US = 1e-6  # microseconds in seconds

#: The MSU file-system block / IB-tree data-page size (paper: "256 KByte").
BLOCK_SIZE = 256 * KIB

#: IB-tree internal-page size (paper: "28 KByte internal pages").
INTERNAL_PAGE_SIZE = 28 * KIB

#: Keys per IB-tree internal page (paper: "1024 keys").
INTERNAL_PAGE_KEYS = 1024

#: MPEG-1 video nominal stream rate (paper: "1.5 Mbit/sec").
MPEG1_RATE = 1_500_000 // 8  # 187_500 bytes/sec

#: Constant-rate experiment packet size (paper: "four KByte FDDI packets").
CBR_PACKET_SIZE = 4 * KIB


def mbit_per_s(mbits: float) -> float:
    """Convert megabits/second to bytes/second."""
    return mbits * 1e6 / 8.0


def kbit_per_s(kbits: float) -> float:
    """Convert kilobits/second to bytes/second."""
    return kbits * 1e3 / 8.0


def mbyte_per_s(mbytes: float) -> float:
    """Convert the paper's MByte/sec (10**6 B/s) to bytes/second."""
    return mbytes * 1e6


def to_mbyte_per_s(rate_bps: float) -> float:
    """Convert bytes/second to the paper's MByte/sec units."""
    return rate_bps / 1e6


def ms(value: float) -> float:
    """Milliseconds → seconds."""
    return value * MS


def us(value: float) -> float:
    """Microseconds → seconds."""
    return value * US
