"""Experiment command line: regenerate any table or figure.

Usage::

    python -m repro.tools.cli list
    python -m repro.tools.cli table1
    python -m repro.tools.cli graph1 --duration 60
    python -m repro.tools.cli all --duration 30
    python -m repro.tools.cli verify --seed 1..5 --ops 50
    python -m repro.tools.cli verify --seed 1..5 --shards 4 --standby
    python -m repro.tools.cli verify --replay repro.json
    python -m repro.tools.cli recovery journal.json --replay
    python -m repro.tools.cli recovery journal.json --follow
    python -m repro.tools.cli edge --edges 2 --duration 30
    python -m repro.tools.cli live --channels 3 --surfers 55
    python -m repro.tools.cli --engine heap verify --seed 1..3

Each experiment subcommand runs the corresponding runner and prints the
same rows/series the paper reports (see EXPERIMENTS.md).  ``verify``
runs the chaos harness instead: seed-deterministic fault schedules with
cross-subsystem invariant checking (DESIGN.md §9); a failing schedule is
shrunk and written to a replayable repro file.  ``--shards``/``--standby``
run the same sweep against a scaled-out Coordinator (DESIGN.md §14) with
the leader-kill and shard-partition fault kinds enabled.  ``recovery``
inspects, replays or compacts a Coordinator journal file (DESIGN.md §10);
``--follow`` tails one as new records land, the way the warm standby does.

``--engine {heap,wheel}`` is accepted anywhere on the command line (all
subcommands included) and selects the simulation engine for the whole
invocation by setting ``CALLIOPE_ENGINE`` (DESIGN.md §13); the default
is the timer wheel.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

__all__ = ["main", "EXPERIMENTS", "follow_journal"]


def _table1(duration: Optional[float]) -> str:
    from repro.experiments.table1 import format_table1, run_table1

    return format_table1(run_table1(duration=duration or 20.0))


def _graph1(duration: Optional[float]) -> str:
    from repro.experiments.graph1 import format_graph1, run_graph1

    return format_graph1(run_graph1(duration=duration or 60.0))


def _graph2(duration: Optional[float]) -> str:
    from repro.experiments.graph2 import format_graph2, run_graph2

    return format_graph2(run_graph2(duration=duration or 60.0))


def _graph2_single(duration: Optional[float]) -> str:
    from repro.experiments.graph2 import format_graph2, run_graph2

    curves = run_graph2(
        stream_counts=(11, 15), duration=duration or 60.0, single_file=True
    )
    return format_graph2(curves, single_file=True)


def _memorypath(duration: Optional[float]) -> str:
    from repro.experiments.memorypath import format_memorypath, run_memorypath

    return format_memorypath(run_memorypath(duration=duration or 20.0))


def _scalability(duration: Optional[float]) -> str:
    from repro.experiments.scalability import format_scalability, run_scalability

    return format_scalability(run_scalability())


def _elevator(duration: Optional[float]) -> str:
    from repro.experiments.elevator import format_elevator, run_elevator

    return format_elevator(run_elevator(duration=duration or 60.0))


def _ibtree(duration: Optional[float]) -> str:
    from repro.experiments.ibtree_ablation import (
        format_ibtree_ablation,
        run_ibtree_ablation,
    )

    return format_ibtree_ablation(run_ibtree_ablation())


def _timer(duration: Optional[float]) -> str:
    from repro.experiments.timer_jitter import format_timer_jitter, run_timer_jitter

    return format_timer_jitter(run_timer_jitter(duration=duration or 30.0))


def _striping(duration: Optional[float]) -> str:
    from repro.experiments.striping import format_striping, run_striping

    return format_striping(run_striping(duration=duration or 60.0))


def _replication(duration: Optional[float]) -> str:
    from repro.experiments.replication import format_replication, run_replication

    return format_replication(run_replication())


def _vod_load(duration: Optional[float]) -> str:
    from repro.experiments.vod_load import format_vod_load, run_vod_load

    return format_vod_load(run_vod_load(duration=duration or 200.0))


def _recording(duration: Optional[float]) -> str:
    from repro.experiments.recording import format_recording, run_recording

    return format_recording(run_recording(duration=duration or 20.0))


def _playout(duration: Optional[float]) -> str:
    from repro.experiments.playout import format_playout, run_playout

    return format_playout(run_playout(duration=duration or 45.0))


def _cache(duration: Optional[float]) -> str:
    from repro.experiments.cache import format_cache, run_cache

    return format_cache(run_cache(duration=duration or 200.0))


def _failover(duration: Optional[float]) -> str:
    from repro.experiments.failover import format_failover, run_failover

    return format_failover(run_failover())


def _multicast(duration: Optional[float]) -> str:
    from repro.experiments.multicast import format_multicast, run_multicast

    return format_multicast(run_multicast(duration=duration or 120.0))


def _recovery(duration: Optional[float]) -> str:
    from repro.experiments.recovery import format_recovery, run_recovery

    return format_recovery(run_recovery())


def _edge_cache(duration: Optional[float]) -> str:
    from repro.experiments.edge import format_edge, run_edge

    return format_edge(run_edge(duration=duration or 120.0))


def _live_tv(duration: Optional[float]) -> str:
    from repro.experiments.live import format_live, run_live, run_live_chaos

    return format_live(
        run_live(broadcast_seconds=duration or 24.0), run_live_chaos()
    )


def _cluster_scale(duration: Optional[float]) -> str:
    from repro.experiments.cluster_scale import (
        format_cluster_scale,
        run_cluster_scale,
    )

    return format_cluster_scale(run_cluster_scale(duration=duration or 20.0))


def _scaleout(duration: Optional[float]) -> str:
    from repro.experiments.scaleout import (
        format_scaleout,
        run_sharding,
        run_takeover,
    )

    return format_scaleout(run_takeover(), run_sharding())


def _city_scale(duration: Optional[float]) -> str:
    from repro.experiments.city_scale import (
        format_city_scale,
        format_engine_bench,
        run_city_scale,
        run_engine_bench,
    )

    bench = format_engine_bench(run_engine_bench())
    city = format_city_scale(run_city_scale(duration=duration or 5.0))
    return bench + "\n\n" + city


#: name -> (runner, paper reference)
EXPERIMENTS: Dict[str, tuple] = {
    "table1": (_table1, "Table 1: baseline measurements"),
    "graph1": (_graph1, "Graph 1: constant-rate delivery distribution"),
    "graph2": (_graph2, "Graph 2: variable-rate delivery distribution"),
    "graph2-single-file": (_graph2_single, "§3.2.2 single-file capacity drop"),
    "memorypath": (_memorypath, "§3.2.3 memory-path bottleneck"),
    "scalability": (_scalability, "§3.3 Coordinator/network load"),
    "elevator": (_elevator, "§2.3.3 elevator scheduling gain"),
    "ibtree": (_ibtree, "§2.2.1 IB-tree integration ablation"),
    "timer": (_timer, "§2.2.1 timer-granularity jitter"),
    "striping": (_striping, "§2.3.3 striping trade-off"),
    "replication": (_replication, "§2.3.3 replication alternative (extension)"),
    "vod-load": (_vod_load, "§3.3 offered-load admission sweep (extension)"),
    "cache": (_cache, "§2.3.3 interval/prefix caching vs. no cache (extension)"),
    "cluster-scale": (_cluster_scale, "abstract/§3.3 scaling by adding MSUs (extension)"),
    "playout": (_playout, "§2.2.1 client playout quality across the cliff (extension)"),
    "recording": (_recording, "§2.3 simultaneous recording capacity (extension)"),
    "failover": (_failover, "§2.2 MSU failover: heartbeats + migration (extension)"),
    "multicast": (_multicast, "§2.2/§3.2 multicast channels + patching (extension)"),
    "edge-cache": (_edge_cache, "abstract edge proxy tier vs. multicast alone (extension)"),
    "live-tv": (_live_tv, "§2.3 live channels + time-shift rings (extension)"),
    "coordinator-recovery": (
        _recovery, "§2.2 Coordinator WAL replay + reconciliation (extension)"
    ),
    "city-scale": (
        _city_scale, "abstract taken to 1000 MSUs / 100k viewers (E23, extension)"
    ),
    "coordinator-scaleout": (
        _scaleout,
        "§2.2 warm-standby takeover + sharded admission (E24, extension)",
    ),
}


def _apply_engine(value: str) -> None:
    from repro.sim import ENGINES

    if value not in ENGINES:
        raise SystemExit(
            f"--engine must be one of: {', '.join(ENGINES)} (got {value!r})"
        )
    os.environ["CALLIOPE_ENGINE"] = value


def _extract_engine(argv: List[str]) -> List[str]:
    """Strip a global ``--engine`` flag from anywhere in ``argv``.

    Handled before subcommand dispatch so every subcommand (verify,
    recovery, edge, live, experiments) honours it without each parser
    having to declare it.
    """
    out: List[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--engine":
            value = next(it, None)
            if value is None:
                raise SystemExit("--engine requires a value (heap or wheel)")
            _apply_engine(value)
        elif arg.startswith("--engine="):
            _apply_engine(arg.split("=", 1)[1])
        else:
            out.append(arg)
    return out


def _parse_seeds(spec: str) -> list:
    """``"7"`` -> [7]; ``"1..5"`` -> [1, 2, 3, 4, 5]."""
    if ".." in spec:
        lo, hi = spec.split("..", 1)
        return list(range(int(lo), int(hi) + 1))
    return [int(spec)]


def build_verify_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="calliope-experiments verify",
        description="Run chaos schedules against the invariant registry.",
    )
    parser.add_argument(
        "--seed", default="1",
        help="seed or inclusive range, e.g. '7' or '1..5' (default 1)",
    )
    parser.add_argument(
        "--ops", type=int, default=50,
        help="fault ops per schedule (default 50)",
    )
    parser.add_argument(
        "--horizon", type=float, default=20.0,
        help="simulated seconds the fault plan spans (default 20)",
    )
    parser.add_argument(
        "--replay", metavar="FILE", default=None,
        help="replay a repro file instead of generating from --seed",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="on failure, skip minimization and report the full schedule",
    )
    parser.add_argument(
        "--repro", metavar="FILE", default=None,
        help="where to write the (shrunk) failing schedule "
             "(default chaos-repro-seed<N>.json in the cwd)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="admission shards on the Coordinator (default 1: the "
             "classic serial Coordinator; >1 enables the escrowed books "
             "and the shard_partition fault kind)",
    )
    parser.add_argument(
        "--standby", action="store_true",
        help="keep a warm standby tailing the journal from bring-up and "
             "enable the coordinator_failover fault kind",
    )
    return parser


def verify_main(argv) -> int:
    from repro.verify import (
        ChaosConfig, ChaosSchedule, load_repro, run_schedule, shrink,
        write_repro,
    )

    args = build_verify_parser().parse_args(argv)
    config = None
    kinds = None
    if args.shards > 1 or args.standby:
        from repro.verify.faults import SCALEOUT_FAULT_KINDS

        config = ChaosConfig(n_shards=args.shards, standby=args.standby)
        kinds = SCALEOUT_FAULT_KINDS
    if args.replay is not None:
        schedules = [load_repro(args.replay)]
    else:
        schedules = [
            ChaosSchedule.generate(
                seed, args.ops, horizon=args.horizon, kinds=kinds
            )
            for seed in _parse_seeds(args.seed)
        ]
    failures = 0
    for schedule in schedules:
        report = run_schedule(schedule, config)
        print(report.summary())
        if report.ok:
            continue
        failures += 1
        for violation in report.violations:
            print(f"  {violation}")
        if not args.no_shrink:
            small, small_report = shrink(schedule, config)
            print(f"  shrunk {len(schedule)} -> {len(small)} ops:")
            for op in small.ops:
                print(f"    {op.at:9.4f}s {op.kind} {op.args}")
            schedule, report = small, small_report
        path = args.repro or f"chaos-repro-seed{schedule.seed}.json"
        write_repro(schedule, path, report)
        print(f"  repro written to {path}")
    return 1 if failures else 0


def build_recovery_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="calliope-experiments recovery",
        description="Inspect, replay or compact a Coordinator journal file.",
    )
    parser.add_argument(
        "journal", metavar="FILE",
        help="journal JSON (calliope-journal-v1), e.g. saved by a harness run",
    )
    parser.add_argument(
        "--replay", action="store_true",
        help="replay snapshot+WAL into a fresh Coordinator and summarize "
             "the resulting state",
    )
    parser.add_argument(
        "--compact", metavar="OUT", default=None,
        help="replay, fold the WAL into a fresh snapshot, write to OUT",
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="after the summary, tail the file: print each new WAL "
             "record as it lands (Ctrl-C to stop), resyncing when a "
             "snapshot install truncates the log — the warm standby's "
             "view of the journal",
    )
    parser.add_argument(
        "--since", type=int, default=None, metavar="SEQ",
        help="with --follow, also print existing records after SEQ "
             "(default: only records newer than the file right now)",
    )
    parser.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="with --follow, re-read cadence (default 0.5)",
    )
    parser.add_argument(
        "--max-polls", type=int, default=None, metavar="N",
        help="with --follow, stop after N re-reads (default: forever)",
    )
    return parser


def follow_journal(
    path,
    since_seq: int = 0,
    poll: float = 0.5,
    max_polls: Optional[int] = None,
    sleep=None,
    emit=print,
) -> int:
    """Tail a journal file: emit records past ``since_seq`` as they land.

    Re-reads the whole file each poll (journals are single JSON
    documents, rewritten atomically by their writers — there is no
    append-only byte stream to seek into).  A snapshot whose seq passes
    our position means the WAL was truncated underneath us; that is
    reported as a ``resync`` line and the cursor jumps, exactly like the
    warm standby's :meth:`StandbyCoordinator.sync`.  Returns the highest
    seq emitted.  ``sleep``/``emit`` are injectable for tests.
    """
    import pathlib
    import time

    from repro.recovery import JournalStore

    if sleep is None:
        sleep = time.sleep
    target = pathlib.Path(path)
    seq = since_seq
    polls = 0
    while True:
        try:
            store = JournalStore.from_json(target.read_text())
        except (OSError, ValueError):
            store = None  # mid-rewrite or briefly missing: just retry
        if store is not None:
            if store.snapshot is not None and store.snapshot_seq > seq:
                emit(f"  resync: snapshot installed at seq "
                     f"{store.snapshot_seq} (WAL truncated)")
                seq = store.snapshot_seq
            for record in store.records:
                if record.seq <= seq:
                    continue
                emit(f"  {record.seq:>6}  {record.kind:<16} {record.payload}")
                seq = record.seq
        polls += 1
        if max_polls is not None and polls >= max_polls:
            return seq
        sleep(poll)


def _replay_journal(store):
    """Cold-start a throwaway Coordinator from ``store``; returns it."""
    from repro.core.coordinator import Coordinator
    from repro.recovery import recover
    from repro.sim import Simulator

    coord = Coordinator(Simulator())
    coord.replayed_records = recover(coord, store)
    return coord


def recovery_main(argv) -> int:
    import pathlib

    from repro.recovery import JournalStore

    args = build_recovery_parser().parse_args(argv)
    try:
        store = JournalStore.from_json(pathlib.Path(args.journal).read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot load {args.journal}: {exc}")
        return 1
    print(f"journal {args.journal}")
    print(f"  snapshot: {'yes' if store.snapshot is not None else 'no'}"
          f" (seq {store.snapshot_seq})")
    print(f"  WAL records: {store.wal_length()}")
    for kind, count in sorted(store.counts_by_kind().items()):
        print(f"    {kind:<16} {count}")
    if args.follow:
        last = store.records[-1].seq if store.records else store.snapshot_seq
        since = last if args.since is None else args.since
        print(f"following from seq {since} (poll {args.poll}s, Ctrl-C stops)")
        try:
            follow_journal(
                args.journal, since_seq=since, poll=args.poll,
                max_polls=args.max_polls,
            )
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        return 0
    if not (args.replay or args.compact):
        return 0
    coord = _replay_journal(store)
    db = coord.db
    print(f"replayed {coord.replayed_records} records:")
    print(f"  MSUs: {len(db.msus)} "
          f"({sum(1 for s in db.msus.values() if s.available)} available)")
    print(f"  content entries: {len(db.contents)}")
    print(f"  customers: {len(db.customers)}")
    print(f"  sessions: {len(coord.sessions._sessions)}")
    print(f"  stream groups: {len(coord.groups)}")
    print(f"  queued tickets: {len(coord.admission.queue)}")
    if args.compact:
        from repro.recovery import snapshot_state

        store.install_snapshot(snapshot_state(coord))
        pathlib.Path(args.compact).write_text(store.to_json())
        print(f"compacted journal written to {args.compact} "
              f"(snapshot seq {store.snapshot_seq}, WAL 0)")
    return 0


def build_edge_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="calliope-experiments edge",
        description="Run a short edged workload and show per-edge state: "
                    "pinned prefixes, hit ratios, uplink and bytes served.",
    )
    parser.add_argument(
        "--edges", type=int, default=2,
        help="number of EdgeProxy nodes (default 2)",
    )
    parser.add_argument(
        "--titles", type=int, default=6,
        help="catalog size for the Zipf workload (default 6)",
    )
    parser.add_argument(
        "--duration", type=float, default=30.0,
        help="simulated seconds of offered load (default 30)",
    )
    parser.add_argument(
        "--seed", type=int, default=7,
        help="workload seed (default 7)",
    )
    return parser


def edge_main(argv) -> int:
    """Drive a small edged cluster and print the edge tier's state."""
    from repro.clients.client import Client
    from repro.clients.population import ViewerPopulation
    from repro.core.cluster import CalliopeCluster, ClusterConfig
    from repro.edge import EdgeConfig
    from repro.media.mpeg import MpegEncoder, packetize_cbr
    from repro.multicast import MulticastConfig
    from repro.sim import Simulator
    from repro.units import MPEG1_RATE

    args = build_edge_parser().parse_args(argv)
    sim = Simulator()
    cluster = CalliopeCluster(
        sim,
        ClusterConfig(
            n_msus=1,
            disks_per_hba=(1,),
            multicast=MulticastConfig(batch_window=0.5, patch_horizon=6.0),
            edge=EdgeConfig(
                n_edges=max(1, args.edges),
                prefix_pages=128,
                placement_period=0.5,
                promote_score=0.5,
                evict_score=0.01,
                decay=0.9,
            ),
        ),
    )
    cluster.coordinator.db.add_customer("user")
    packets = packetize_cbr(MpegEncoder(seed=args.seed).bitstream(48.0),
                            MPEG1_RATE, 1024)
    titles = []
    for t in range(max(1, args.titles)):
        name = f"title{t}"
        cluster.load_content(name, "mpeg1", packets, disk_index=0)
        titles.append(name)
    sim.run(until=0.01)
    client = Client(sim, cluster, "audience")
    population = ViewerPopulation(
        sim, client, titles,
        arrival_rate=6.0, mean_watch_seconds=8.0, zipf_s=1.0,
        queue_patience=2.0, seed=args.seed,
    )
    population.start()
    sim.run(until=args.duration)
    population.stop()
    sim.run(until=args.duration + 30.0)

    placement = cluster.coordinator.placement
    print(f"edge tier after {args.duration:.0f}s of Zipf(1.0) load "
          f"({len(cluster.edges)} edge(s), {len(titles)} titles)")
    for proxy in cluster.edges:
        view = placement.edges.get(proxy.name) if placement else None
        total = proxy.hits + proxy.misses
        ratio = proxy.hits / total if total else 0.0
        state = "down" if proxy.down else (
            "attached" if view is not None and view.attached else "detached")
        print(f"  {proxy.name} [{state}]")
        print(f"    pinned bytes:  {proxy.pool.used}")
        pinned = proxy.pinned_titles()
        if pinned:
            for name in sorted(pinned):
                print(f"      {name:<12} {pinned[name]:>4} pages")
        else:
            print("      (nothing pinned)")
        print(f"    serve hit ratio: {ratio:.2f} "
              f"({proxy.hits} hits / {proxy.misses} misses)")
        print(f"    bytes served:  {proxy.prefix_bytes_served} prefix, "
              f"{proxy.patch_bytes_served} patch")
        print(f"    uplink in use: {proxy.uplink_used:.0f} B/s "
              f"of {proxy.config.uplink_bps:.0f}")
    if placement is not None:
        print("  placement loop")
        print(f"    plan hit ratio:  {placement.hit_ratio():.2f}")
        print(f"    prefix serves:   {placement.prefix_serves}")
        print(f"    patch serves:    {placement.patch_serves}")
        hot = placement.hot_titles()[:5]
        if hot:
            print("    hottest titles (decayed score):")
            for name, score in hot:
                print(f"      {name:<12} {score:>7.2f}")
    return 0


def build_live_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="calliope-experiments live",
        description="Broadcast a live lineup under a channel-surfing "
                    "population, then rerun the seeded chaos sweep with "
                    "live faults enabled.",
    )
    parser.add_argument(
        "--channels", type=int, default=3,
        help="channels in the EPG lineup (default 3)",
    )
    parser.add_argument(
        "--surfers", type=int, default=55,
        help="channel-surfing viewers (default 55)",
    )
    parser.add_argument(
        "--duration", type=float, default=24.0,
        help="broadcast length in simulated seconds (default 24)",
    )
    parser.add_argument(
        "--ring", type=float, default=5.0,
        help="time-shift ring window in seconds (default 5)",
    )
    parser.add_argument(
        "--seed", type=int, default=22,
        help="workload seed (default 22)",
    )
    parser.add_argument(
        "--chaos-seeds", default="61..63",
        help="chaos sweep seeds, e.g. '7' or '61..63'; '' skips the sweep "
             "(default 61..63)",
    )
    return parser


def live_main(argv) -> int:
    """One live-TV surf run plus the chaos sweep; exit 1 on violations."""
    from repro.experiments.live import format_live, run_live, run_live_chaos

    args = build_live_parser().parse_args(argv)
    point = run_live(
        n_channels=max(1, args.channels),
        n_surfers=max(1, args.surfers),
        broadcast_seconds=args.duration,
        ring_seconds=args.ring,
        seed=args.seed,
    )
    reports = (
        run_live_chaos(seeds=_parse_seeds(args.chaos_seeds))
        if args.chaos_seeds else []
    )
    print(format_live(point, reports))
    failed = point.drain_violations or any(not r.ok for r in reports)
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="calliope-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["list", "all"],
        help="which experiment to run ('list' prints descriptions)",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="measurement window in simulated seconds (experiment default "
             "otherwise; the paper ran 6-minute windows)",
    )
    return parser


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = _extract_engine(list(argv))
    if argv and argv[0] == "verify":
        return verify_main(argv[1:])
    if argv and argv[0] == "recovery":
        return recovery_main(argv[1:])
    if argv and argv[0] == "edge":
        return edge_main(argv[1:])
    if argv and argv[0] == "live":
        return live_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            print(f"{name:<{width}}  {EXPERIMENTS[name][1]}")
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner, _ = EXPERIMENTS[name]
        print(runner(args.duration))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(main())
