"""Operator tooling: the experiment CLI."""
