"""A Calliope client application (§2.1).

Wraps the whole client lifecycle: open a session with the Coordinator,
register display ports (UDP sockets with names and types), request plays
and recordings, drive VCR commands over the per-group MSU control
connection, and collect receive statistics per port.

All request methods are simulation processes (``yield from client.play(...)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.cluster import CalliopeCluster
from repro.errors import CalliopeError
from repro.net import messages as m
from repro.net.network import ControlChannel, Host, UdpSocket, is_multicast
from repro.sim import Event, Simulator

__all__ = ["Client", "PortStats", "GroupView"]


@dataclass
class PortStats:
    """Receive-side accounting for one display port."""

    packets: int = 0
    bytes: int = 0
    first_arrival: Optional[float] = None
    last_arrival: Optional[float] = None
    arrivals: List[Tuple[float, int]] = field(default_factory=list)
    #: Payload bytes, kept only when the port captures (tests/decoders).
    payloads: Optional[List[bytes]] = None

    def note(self, now: float, nbytes: int, payload: Optional[bytes] = None) -> None:
        self.packets += 1
        self.bytes += nbytes
        if self.first_arrival is None:
            self.first_arrival = now
        self.last_arrival = now
        self.arrivals.append((now, nbytes))
        if self.payloads is not None and payload is not None:
            self.payloads.append(payload)


class _Port:
    """Client side of a display port: a named, typed socket.

    Two-port protocols (RTP, §2.3.2) also own a control socket on the
    next port number, where the MSU demultiplexes interleaved control
    messages on playback.
    """

    def __init__(self, name: str, type_name: str, socket: Optional[UdpSocket]):
        self.name = name
        self.type_name = type_name
        self.socket = socket
        self.control_socket: Optional[UdpSocket] = None
        self.stats = PortStats()
        self.control_stats = PortStats()
        #: Data that arrived via a multicast channel (group destination).
        self.channel_stats = PortStats()
        #: Data that arrived as plain unicast — a whole stream, or the
        #: bounded patch that fills in a late joiner's missed prefix.
        self.unicast_stats = PortStats()
        self.component_ports: Tuple[str, ...] = ()


class GroupView:
    """Client-side view of one scheduled stream group."""

    def __init__(self, sim: Simulator, group_id: int):
        self.group_id = group_id
        self.channel: Optional[ControlChannel] = None
        self.msu_name = ""
        self.ready_streams: Dict[int, m.StreamReady] = {}
        self.ended_streams: set = set()
        self.ready_event = Event(sim, name=f"group{group_id}.ready")
        self.done_event = Event(sim, name=f"group{group_id}.done")
        self.closed = False
        #: Set when the client gave up on a queued request before it was
        #: scheduled: the group is quit the moment control arrives.
        self.abandoned = False
        #: Times this group was moved to another MSU by failover.
        self.migrations = 0
        #: Set by quit(): a broken VCR channel is then expected, not a
        #: failure worth waiting out reconnect retries for.
        self.quit_requested = False

    def record_addresses(self) -> Dict[str, Tuple[str, int]]:
        """content name -> MSU address to send recorded media to."""
        return {
            r.content_name: r.record_address
            for r in self.ready_streams.values()
            if r.record_address is not None
        }


class Client:
    """One client program and its display ports."""

    def __init__(
        self,
        sim: Simulator,
        cluster: CalliopeCluster,
        name: str,
        reconnect_retries: int = 0,
        reconnect_backoff: float = 0.5,
    ):
        self.sim = sim
        self.cluster = cluster
        self.name = name
        #: How many backoff rounds to wait for a replacement VCR channel
        #: after a break before declaring the group done (0 reproduces
        #: the pre-failover behavior: any break ends the group).
        self.reconnect_retries = reconnect_retries
        self.reconnect_backoff = reconnect_backoff
        self.host = Host(sim, cluster.delivery_net, name)
        self.channel = cluster.connect_client(name)
        cluster.register_vcr_listener(name, self._on_vcr_channel)
        self.session_id: Optional[int] = None
        self.ports: Dict[str, _Port] = {}
        self.groups: Dict[int, GroupView] = {}
        # Replies are matched to requests by id, so concurrent viewers can
        # share this one Coordinator connection safely (queued requests
        # answer out of order, §2.2).
        self._pending_rpcs: Dict[int, Event] = {}
        self._next_rpc = 1
        self.sim.process(self._dispatch_replies(), name=f"{name}.rpc")

    # -- RPC plumbing ---------------------------------------------------------

    def _rid(self) -> int:
        self._next_rpc += 1
        return self._next_rpc

    def _dispatch_replies(self) -> Generator:
        while True:
            reply = yield self.channel.recv(self.name)
            if reply is None:
                for event in self._pending_rpcs.values():
                    if not event.triggered:
                        event.fail(CalliopeError("coordinator connection closed"))
                self._pending_rpcs.clear()
                return
            if isinstance(reply, m.StreamMigrated):
                self._on_migrated(reply)
                continue
            event = self._pending_rpcs.pop(getattr(reply, "request_id", 0), None)
            if event is not None and not event.triggered:
                event.succeed(reply)

    def _on_migrated(self, notice: m.StreamMigrated) -> None:
        """Failover moved one of our groups; note the new home MSU."""
        view = self.groups.get(notice.group_id)
        if view is None:
            return
        view.msu_name = notice.msu_name
        view.migrations += 1

    def _send_rpc(self, message) -> Event:
        if not self.channel.open:
            # A send into a closed channel silently vanishes; the caller
            # would block forever on a reply that can never come.
            raise CalliopeError("coordinator connection closed")
        event = Event(self.sim, name=f"rpc{message.request_id}")
        self._pending_rpcs[message.request_id] = event
        self.channel.send(self.name, message, nbytes=m.WIRE_BYTES)
        return event

    def _rpc(self, message) -> Generator:
        reply = yield self._send_rpc(message)
        if isinstance(reply, m.RequestFailed):
            raise CalliopeError(reply.reason)
        return reply

    # -- VCR channel arrival ---------------------------------------------------

    def _on_vcr_channel(self, group_id: int, channel: ControlChannel, msu_end: str) -> None:
        view = self.groups.get(group_id)
        if view is None:
            view = GroupView(self.sim, group_id)
            self.groups[group_id] = view
        view.channel = channel
        self.sim.process(self._vcr_listener(view), name=f"{self.name}.vcr{group_id}")
        if view.abandoned:
            self.quit(group_id)

    def _vcr_listener(self, view: GroupView) -> Generator:
        channel = view.channel
        while True:
            msg = yield channel.recv(self.name)
            if msg is None:
                if (
                    self.reconnect_retries > 0
                    and not view.quit_requested
                    and not view.done_event.triggered
                ):
                    # Failover may be migrating the group: wait (with
                    # backoff) for a replacement channel before giving up.
                    self.sim.process(
                        self._await_reconnect(view, channel),
                        name=f"{self.name}.reconnect{view.group_id}",
                    )
                    return
                view.closed = True
                if not view.done_event.triggered:
                    view.done_event.succeed()
                return
            if isinstance(msg, m.StreamReady):
                view.msu_name = msg.msu_name
                view.ready_streams[msg.stream_id] = msg
                if (
                    len(view.ready_streams) >= msg.group_size
                    and not view.ready_event.triggered
                ):
                    view.ready_event.succeed()
            elif isinstance(msg, m.EndOfStream):
                view.ended_streams.add(msg.stream_id)
                if (
                    view.ready_streams
                    and view.ended_streams >= set(view.ready_streams)
                    and not view.done_event.triggered
                ):
                    view.done_event.succeed()

    def _await_reconnect(self, view: GroupView, old_channel) -> Generator:
        """Retry loop: has a migrated MSU replaced our VCR channel yet?

        The cluster hands replacement channels to :meth:`_on_vcr_channel`
        (which spawns a fresh listener), so this only needs to notice the
        swap — or give up after the configured retries and declare the
        group done, as an unrecovered break always did.
        """
        backoff = self.reconnect_backoff
        for _ in range(self.reconnect_retries):
            yield self.sim.timeout(backoff)
            backoff *= 2.0
            if view.quit_requested or view.done_event.triggered:
                return
            if view.channel is not old_channel and view.channel.open:
                return  # migrated: the new channel's listener took over
        view.closed = True
        if not view.done_event.triggered:
            view.done_event.succeed()

    # -- session -----------------------------------------------------------------

    def open_session(self, customer: str = "user") -> Generator:
        """Establish the Coordinator session."""
        reply = yield from self._rpc(m.OpenSession(customer, request_id=self._rid()))
        self.session_id = reply.session_id
        return self.session_id

    def close_session(self) -> None:
        """Drop the session (Coordinator deallocates our ports, §2.1)."""
        if self.session_id is not None:
            self.channel.send(
                self.name, m.CloseSession(self.session_id), nbytes=m.WIRE_BYTES
            )
            self.session_id = None

    def list_contents(self) -> Generator:
        """Fetch the table of contents; returns (name, type) pairs."""
        reply = yield from self._rpc(
            m.ListContents(self.session_id, request_id=self._rid())
        )
        return list(reply.items)

    # -- display ports -----------------------------------------------------------------

    def register_port(
        self, port_name: str, type_name: str, capture_payloads: bool = False
    ) -> Generator:
        """Create a socket, register it, and start its receiver.

        ``capture_payloads`` keeps every received payload in the port's
        stats — the software-decoder case, at memory cost.
        """
        socket = self.host.bind()
        try:
            yield from self._rpc(
                m.RegisterPort(
                    self.session_id, port_name, type_name, socket.address,
                    request_id=self._rid(),
                )
            )
        except CalliopeError:
            socket.close()
            raise
        port = _Port(port_name, type_name, socket)
        if capture_payloads:
            port.stats.payloads = []
            port.control_stats.payloads = []
        # Two-port protocols (RTP) listen for control traffic one port up.
        try:
            ctype = self.cluster.coordinator.types.get(type_name)
            module_ports = (
                self.cluster.msus[0].protocols.get(ctype.protocol).playback_ports()
                if self.cluster.msus else 1
            )
        except Exception:
            module_ports = 1
        if module_ports > 1:
            port.control_socket = self.host.bind(socket.port + 1)
            self.sim.process(
                self._receiver(port, control=True),
                name=f"{self.name}.{port_name}.ctl",
            )
        self.ports[port_name] = port
        self.sim.process(self._receiver(port), name=f"{self.name}.{port_name}")
        return port

    def register_composite_port(
        self, port_name: str, type_name: str, component_ports: Sequence[str]
    ) -> Generator:
        """Compose previously-registered ports into a composite port."""
        yield from self._rpc(
            m.RegisterCompositePort(
                self.session_id, port_name, type_name, tuple(component_ports),
                request_id=self._rid(),
            )
        )
        port = _Port(port_name, type_name, None)
        port.component_ports = tuple(component_ports)
        self.ports[port_name] = port
        return port

    def close_port(self, port_name: str) -> None:
        """Unregister locally and release the port's sockets."""
        port = self.ports.pop(port_name, None)
        if port is None:
            return
        if port.socket is not None:
            port.socket.close()
        if port.control_socket is not None:
            port.control_socket.close()

    def _receiver(self, port: _Port, control: bool = False) -> Generator:
        socket = port.control_socket if control else port.socket
        stats = port.control_stats if control else port.stats
        while True:
            dgram = yield socket.recv()
            if dgram is None:
                return
            stats.note(self.sim.now, len(dgram.payload), dgram.payload)
            if not control:
                # A late joiner receives its patch (unicast) and the
                # channel (group destination) simultaneously; keep the
                # flows apart so playback can splice them in order.
                flow = (
                    port.channel_stats
                    if is_multicast(dgram.dst) else port.unicast_stats
                )
                flow.note(self.sim.now, len(dgram.payload))

    # -- play / record ---------------------------------------------------------------------

    def play(self, content_name: str, port_name: str) -> Generator:
        """Request playback; returns the GroupView once scheduled.

        Blocks while the request sits in the Coordinator's scheduling
        queue (§2.2); use :meth:`play_with_timeout` to abandon instead.
        """
        reply = yield from self._rpc(
            m.PlayRequest(
                self.session_id, content_name, port_name, request_id=self._rid()
            )
        )
        return self._group_view(reply)

    def play_with_timeout(
        self, content_name: str, port_name: str, timeout: float
    ) -> Generator:
        """Request playback, abandoning after ``timeout`` seconds queued.

        Returns the GroupView, or None when patience ran out.  A stream
        the Coordinator schedules after abandonment is quit immediately.
        """
        message = m.PlayRequest(
            self.session_id, content_name, port_name, request_id=self._rid()
        )
        event = self._send_rpc(message)
        index, value = yield self.sim.any_of([event, self.sim.timeout(timeout)])
        if index == 0:
            if isinstance(value, m.RequestFailed):
                raise CalliopeError(value.reason)
            return self._group_view(value)
        event.add_callback(self._quit_late_schedule)
        return None

    def _quit_late_schedule(self, event) -> None:
        """A reply arrived for an abandoned play: release it."""
        try:
            reply = event.value
        except Exception:
            return
        if isinstance(reply, m.StreamScheduled):
            view = self._group_view(reply)
            view.abandoned = True
            if view.channel is not None:
                self.quit(view.group_id)

    def play_nowait(self, content_name: str, port_name: str) -> None:
        """Fire a play request without awaiting the reply (open loop).

        Queued requests get no immediate answer from the Coordinator
        (§2.2), so closed-loop callers block; open-loop load generators
        use this and leave replies in the channel mailbox.
        """
        self.channel.send(
            self.name,
            m.PlayRequest(self.session_id, content_name, port_name),
            nbytes=m.WIRE_BYTES,
        )

    def record(
        self,
        content_name: str,
        type_name: str,
        port_name: str,
        estimate_seconds: float,
    ) -> Generator:
        """Request a recording; returns the GroupView once scheduled."""
        reply = yield from self._rpc(
            m.RecordRequest(
                self.session_id, content_name, type_name, port_name,
                estimate_seconds, request_id=self._rid(),
            )
        )
        return self._group_view(reply)

    def _group_view(self, reply: m.StreamScheduled) -> GroupView:
        view = self.groups.get(reply.group_id)
        if view is None:
            view = GroupView(self.sim, reply.group_id)
            self.groups[reply.group_id] = view
        view.msu_name = reply.msu_name
        return view

    # -- VCR ------------------------------------------------------------------------------

    def vcr(self, group_id: int, command: str, position_seconds: float = 0.0) -> None:
        """Issue a VCR command on a group's control connection."""
        view = self.groups.get(group_id)
        if view is None or view.channel is None:
            raise CalliopeError(f"no control connection for group {group_id}")
        view.channel.send(
            self.name, m.VcrCommand(group_id, command, position_seconds),
            nbytes=m.WIRE_BYTES,
        )

    def quit(self, group_id: int) -> None:
        """Terminate a group (§2.1's "quit")."""
        view = self.groups.get(group_id)
        if view is not None:
            view.quit_requested = True
        self.vcr(group_id, m.VCR_QUIT)

    def wait_ready(self, view: GroupView) -> Generator:
        """Wait until the MSU's control connection says StreamReady."""
        if not view.ready_event.triggered:
            yield view.ready_event
        return view

    def wait_done(self, view: GroupView) -> Generator:
        """Wait for end of stream (or channel close) on every member."""
        if not view.done_event.triggered:
            yield view.done_event
        return view

    # -- recording source ---------------------------------------------------------------------

    def send_stream(
        self,
        port_name: str,
        dest: Tuple[str, int],
        packets: Sequence,
        start_at: Optional[float] = None,
    ) -> Generator:
        """Transmit ``packets`` (SourcePacket sequence) on their schedule."""
        port = self.ports[port_name]
        if port.socket is None:
            raise CalliopeError(f"port {port_name!r} has no socket (composite?)")
        origin = self.sim.now if start_at is None else start_at
        for packet in packets:
            due = origin + packet[0] / 1e6
            if due > self.sim.now:
                yield self.sim.timeout(due - self.sim.now)
            yield from port.socket.send(dest, packet[1])
