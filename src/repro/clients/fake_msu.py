"""The paper's instrumented fake MSU (§3.3).

"To measure the effect of scheduling requests on shared resource loads, we
have created a fake MSU which, when scheduled, delays for 50 ms and then
reports that the user has terminated the stream."

The fake MSU speaks the real Coordinator protocol (hello, schedule,
terminate) but owns no disks, buffers or streams, so the only load it
generates is the control traffic under measurement.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from repro.net import messages as m
from repro.net.network import ControlChannel
from repro.sim import Simulator
from repro.units import ms

__all__ = ["FakeMsu"]


class FakeMsu:
    """A protocol-complete MSU stub with a fixed 50 ms service time."""

    SERVICE_TIME = ms(50.0)

    def __init__(
        self,
        sim: Simulator,
        name: str,
        nominal_disks: int = 2,
        free_blocks: int = 7_000,
    ):
        self.sim = sim
        self.name = name
        self.nominal_disks = nominal_disks
        self.free_blocks = free_blocks
        self.channel: ControlChannel = None
        self.streams_handled = 0

    def attach_coordinator(self, channel: ControlChannel) -> None:
        """Say hello with fictitious disks and start serving."""
        self.channel = channel
        disks: List[Tuple[str, int]] = [
            (f"{self.name}.sd{i}", self.free_blocks) for i in range(self.nominal_disks)
        ]
        channel.send(self.name, m.MsuHello(self.name, tuple(disks)), nbytes=m.WIRE_BYTES)
        self.sim.process(self._loop(), name=f"{self.name}.fake")

    def _loop(self) -> Generator:
        while True:
            msg = yield self.channel.recv(self.name)
            if msg is None:
                return
            if isinstance(msg, (m.ScheduleRead, m.ScheduleRecord)):
                self.sim.process(self._serve(msg), name=f"{self.name}.serve")

    def _serve(self, msg) -> Generator:
        yield self.sim.timeout(self.SERVICE_TIME)
        self.streams_handled += 1
        self.channel.send(
            self.name,
            m.StreamTerminated(msg.group_id, msg.stream_id, "quit"),
            nbytes=m.WIRE_BYTES,
        )
