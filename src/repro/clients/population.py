"""A closed-loop viewer population for capacity studies.

Viewers arrive as a Poisson process, pick content by a Zipf popularity
law, watch for an exponentially distributed time, and leave.  Offered
load in Erlangs is ``arrival_rate * mean_watch_time``; together with the
Coordinator's admission control this produces the classic blocking
behaviour the §3.3 sizing arithmetic ("150 MSUs at 20 streams each ...
sessions as short as one minute") implies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Sequence

import numpy as np

from repro.clients.client import Client
from repro.errors import CalliopeError
from repro.sim import Simulator

__all__ = ["ViewerPopulation", "PopulationStats"]


@dataclass
class PopulationStats:
    """Aggregate outcome of a population run."""

    arrivals: int = 0
    admitted: int = 0
    blocked: int = 0  # request failed outright
    abandoned: int = 0  # queued past the viewer's patience
    completed: int = 0
    concurrent_peak: int = 0
    watch_seconds: float = 0.0
    _active: int = 0

    @property
    def blocking_probability(self) -> float:
        """Fraction of arrivals that never got their stream."""
        denied = self.blocked + self.abandoned
        return denied / self.arrivals if self.arrivals else 0.0


class ViewerPopulation:
    """Drives one client host with a stream of short viewing sessions."""

    def __init__(
        self,
        sim: Simulator,
        client: Client,
        content_names: Sequence[str],
        arrival_rate: float,
        mean_watch_seconds: float,
        zipf_s: float = 1.2,
        port_type: str = "mpeg1",
        queue_patience: float = 5.0,
        seed: int = 33,
    ):
        if arrival_rate <= 0 or mean_watch_seconds <= 0:
            raise ValueError("arrival rate and watch time must be positive")
        self.sim = sim
        self.client = client
        self.content_names = list(content_names)
        self.arrival_rate = arrival_rate
        self.mean_watch_seconds = mean_watch_seconds
        self.port_type = port_type
        self.queue_patience = queue_patience
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, len(self.content_names) + 1, dtype=float)
        weights = ranks**-zipf_s
        self._popularity = weights / weights.sum()
        self.stats = PopulationStats()
        self._viewer_no = 0
        self._stopped = False

    @property
    def offered_erlangs(self) -> float:
        """Offered load: arrivals/second x mean holding time."""
        return self.arrival_rate * self.mean_watch_seconds

    def start(self) -> None:
        """Spawn the arrival process."""
        self.sim.process(self._arrivals(), name="population")

    def stop(self) -> None:
        """No further arrivals (in-flight viewers finish)."""
        self._stopped = True

    # -- processes -------------------------------------------------------------

    def _arrivals(self) -> Generator:
        yield from self.client.open_session("user")
        while not self._stopped:
            gap = float(self._rng.exponential(1.0 / self.arrival_rate))
            yield self.sim.timeout(gap)
            if self._stopped:
                return
            self._viewer_no += 1
            self.sim.process(
                self._viewer(self._viewer_no), name=f"viewer{self._viewer_no}"
            )

    def _pick_content(self) -> str:
        index = int(self._rng.choice(len(self.content_names), p=self._popularity))
        return self.content_names[index]

    def _viewer(self, number: int) -> Generator:
        stats = self.stats
        stats.arrivals += 1
        port_name = f"viewer{number}"
        content = self._pick_content()
        try:
            yield from self.client.register_port(port_name, self.port_type)
        except CalliopeError:
            stats.blocked += 1
            return
        try:
            view = yield from self.client.play_with_timeout(
                content, port_name, self.queue_patience
            )
        except CalliopeError:
            stats.blocked += 1
            self.client.close_port(port_name)
            return
        if view is None:  # gave up waiting in the scheduling queue
            stats.abandoned += 1
            self.client.close_port(port_name)
            return
        stats.admitted += 1
        stats._active += 1
        stats.concurrent_peak = max(stats.concurrent_peak, stats._active)
        watch = float(self._rng.exponential(self.mean_watch_seconds))
        started = self.sim.now
        yield self.sim.timeout(watch)
        try:
            self.client.quit(view.group_id)
        except CalliopeError:
            pass  # stream already ended on its own
        stats._active -= 1
        stats.completed += 1
        stats.watch_seconds += self.sim.now - started
        self.client.close_port(port_name)
