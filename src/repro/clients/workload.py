"""Request workload generators.

:class:`OpenLoopRequester` drives the Coordinator with play requests at a
fixed aggregate rate regardless of completion (the §3.3 measurement used
two such clients jointly producing ~60 requests/second).

:class:`ChannelSurfer` models a live-TV viewer flipping through the EPG
lineup: Zipf-weighted channel picks, short dwell times, and occasional
pause-live / rewind-live excursions into the time-shift ring.  A fleet
of surfers is the join/leave storm the live tier's surf-churn admission
gate exists for.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.clients.client import Client
from repro.errors import CalliopeError
from repro.net import messages as m
from repro.net.network import ControlChannel
from repro.sim import Simulator

__all__ = ["OpenLoopRequester", "ChannelSurfer"]


class OpenLoopRequester:
    """Fires PlayRequests at exponential intervals, ignoring replies.

    The requester registers a single display port up front; every request
    plays a randomly chosen content item through it.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: ControlChannel,
        client_name: str,
        content_names: Sequence[str],
        rate_per_second: float,
        total_requests: int,
        port_type: str = "mpeg1",
        seed: int = 17,
    ):
        if rate_per_second <= 0 or total_requests <= 0:
            raise ValueError("rate and total must be positive")
        self.sim = sim
        self.channel = channel
        self.client_name = client_name
        self.content_names = list(content_names)
        self.rate = rate_per_second
        self.total = total_requests
        self.port_type = port_type
        self._rng = np.random.default_rng(seed)
        self.sent = 0
        self.failed = 0
        self.done = sim.event(name=f"{client_name}.done")
        self.session_id: Optional[int] = None

    def start(self) -> None:
        """Spawn the request-generation and reply-drain processes."""
        self.sim.process(self._run(), name=f"{self.client_name}.gen")

    def _run(self) -> Generator:
        # Session + port setup (replies consumed synchronously).
        self.channel.send(self.client_name, m.OpenSession("user"), nbytes=m.WIRE_BYTES)
        reply = yield self.channel.recv(self.client_name)
        self.session_id = reply.session_id
        self.channel.send(
            self.client_name,
            m.RegisterPort(
                self.session_id, "p0", self.port_type, (self.client_name, 6000)
            ),
            nbytes=m.WIRE_BYTES,
        )
        yield self.channel.recv(self.client_name)
        self.sim.process(self._drain(), name=f"{self.client_name}.drain")
        while self.sent < self.total:
            gap = float(self._rng.exponential(1.0 / self.rate))
            yield self.sim.timeout(gap)
            name = self.content_names[
                int(self._rng.integers(0, len(self.content_names)))
            ]
            self.channel.send(
                self.client_name,
                m.PlayRequest(self.session_id, name, "p0"),
                nbytes=m.WIRE_BYTES,
            )
            self.sent += 1
        if not self.done.triggered:
            self.done.succeed(self.sent)

    def _drain(self) -> Generator:
        """Consume Coordinator replies so the channel mailbox stays empty."""
        while True:
            reply = yield self.channel.recv(self.client_name)
            if reply is None:
                return
            if isinstance(reply, m.RequestFailed):
                self.failed += 1


class ChannelSurfer:
    """A live-TV viewer hopping through the channel lineup.

    Each hop: pick a channel (Zipf over the lineup order, so channel 1
    is the hottest), tune with bounded patience, watch for an
    exponentially distributed dwell, maybe pause and resume or
    rewind-live into the ring window, then quit and hop again.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster,
        name: str,
        channel_names: Sequence[str],
        hops: int = 5,
        dwell_mean: float = 4.0,
        tune_timeout: float = 3.0,
        pause_chance: float = 0.15,
        rewind_chance: float = 0.15,
        rewind_seconds: float = 5.0,
        zipf_s: float = 1.0,
        seed: int = 7,
    ):
        self.sim = sim
        self.name = name
        self.channel_names = list(channel_names)
        self.hops = hops
        self.dwell_mean = dwell_mean
        self.tune_timeout = tune_timeout
        self.pause_chance = pause_chance
        self.rewind_chance = rewind_chance
        self.rewind_seconds = rewind_seconds
        self._rng = np.random.default_rng(seed)
        weights = np.array(
            [1.0 / (i + 1) ** zipf_s for i in range(len(self.channel_names))]
        )
        self._weights = weights / weights.sum()
        self.client = Client(sim, cluster, name)
        self.joins = 0
        self.timeouts = 0
        self.errors = 0
        self.pauses = 0
        self.rewinds = 0
        self.join_latencies: List[float] = []
        self.done = sim.event(name=f"{name}.done")

    def start(self) -> None:
        self.sim.process(self._run(), name=f"{self.name}.surf")

    def _pick(self) -> str:
        index = int(self._rng.choice(len(self.channel_names), p=self._weights))
        return self.channel_names[index]

    def _run(self) -> Generator:
        client = self.client
        yield from client.open_session("user")
        yield from client.register_port("tv", "mpeg1")
        for _ in range(self.hops):
            name = self._pick()
            asked = self.sim.now
            try:
                view = yield from client.play_with_timeout(
                    name, "tv", self.tune_timeout
                )
            except CalliopeError:
                # Channel off the air (or not yet on it): flip onward.
                self.errors += 1
                yield self.sim.timeout(float(self._rng.exponential(0.2)))
                continue
            if view is None:
                self.timeouts += 1
                continue
            remaining = self.tune_timeout - (self.sim.now - asked)
            index, _ = yield self.sim.any_of(
                [view.ready_event, self.sim.timeout(max(0.01, remaining))]
            )
            if index != 0:
                client.quit(view.group_id)
                self.timeouts += 1
                continue
            self.joins += 1
            self.join_latencies.append(self.sim.now - asked)
            yield self.sim.timeout(float(self._rng.exponential(self.dwell_mean)))
            roll = float(self._rng.random())
            if view.done_event.triggered:
                continue  # the channel signed off mid-dwell
            if roll < self.pause_chance:
                client.vcr(view.group_id, m.VCR_PAUSE)
                self.pauses += 1
                yield self.sim.timeout(
                    float(self._rng.exponential(self.dwell_mean / 2))
                )
                if not view.done_event.triggered:
                    client.vcr(view.group_id, m.VCR_PLAY)
            elif roll < self.pause_chance + self.rewind_chance:
                client.vcr(
                    view.group_id, m.VCR_REWIND,
                    position_seconds=float(
                        self._rng.uniform(1.0, self.rewind_seconds)
                    ),
                )
                self.rewinds += 1
                yield self.sim.timeout(
                    float(self._rng.exponential(self.dwell_mean / 2))
                )
            if not view.done_event.triggered:
                client.quit(view.group_id)
        if not self.done.triggered:
            self.done.succeed(self.joins)
