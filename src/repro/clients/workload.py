"""Request workload generators.

:class:`OpenLoopRequester` drives the Coordinator with play requests at a
fixed aggregate rate regardless of completion (the §3.3 measurement used
two such clients jointly producing ~60 requests/second).
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

import numpy as np

from repro.net import messages as m
from repro.net.network import ControlChannel
from repro.sim import Simulator

__all__ = ["OpenLoopRequester"]


class OpenLoopRequester:
    """Fires PlayRequests at exponential intervals, ignoring replies.

    The requester registers a single display port up front; every request
    plays a randomly chosen content item through it.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: ControlChannel,
        client_name: str,
        content_names: Sequence[str],
        rate_per_second: float,
        total_requests: int,
        port_type: str = "mpeg1",
        seed: int = 17,
    ):
        if rate_per_second <= 0 or total_requests <= 0:
            raise ValueError("rate and total must be positive")
        self.sim = sim
        self.channel = channel
        self.client_name = client_name
        self.content_names = list(content_names)
        self.rate = rate_per_second
        self.total = total_requests
        self.port_type = port_type
        self._rng = np.random.default_rng(seed)
        self.sent = 0
        self.failed = 0
        self.done = sim.event(name=f"{client_name}.done")
        self.session_id: Optional[int] = None

    def start(self) -> None:
        """Spawn the request-generation and reply-drain processes."""
        self.sim.process(self._run(), name=f"{self.client_name}.gen")

    def _run(self) -> Generator:
        # Session + port setup (replies consumed synchronously).
        self.channel.send(self.client_name, m.OpenSession("user"), nbytes=m.WIRE_BYTES)
        reply = yield self.channel.recv(self.client_name)
        self.session_id = reply.session_id
        self.channel.send(
            self.client_name,
            m.RegisterPort(
                self.session_id, "p0", self.port_type, (self.client_name, 6000)
            ),
            nbytes=m.WIRE_BYTES,
        )
        yield self.channel.recv(self.client_name)
        self.sim.process(self._drain(), name=f"{self.client_name}.drain")
        while self.sent < self.total:
            gap = float(self._rng.exponential(1.0 / self.rate))
            yield self.sim.timeout(gap)
            name = self.content_names[
                int(self._rng.integers(0, len(self.content_names)))
            ]
            self.channel.send(
                self.client_name,
                m.PlayRequest(self.session_id, name, "p0"),
                nbytes=m.WIRE_BYTES,
            )
            self.sent += 1
        if not self.done.triggered:
            self.done.succeed(self.sent)

    def _drain(self) -> Generator:
        """Consume Coordinator replies so the channel mailbox stays empty."""
        while True:
            reply = yield self.channel.recv(self.client_name)
            if reply is None:
                return
            if isinstance(reply, m.RequestFailed):
                self.failed += 1
