"""Client playout-buffer model (§2.2.1).

"We assume that clients have enough buffer space to smooth any jitter
introduced by either the approximate scheduling or the intervening
network.  A 200 KByte buffer will hold more than one second of
1.5 Mbit/sec video."

The model replays a list of (arrival time, bytes) against a consumer that
starts after ``startup_delay`` and drains at the nominal rate, tracking
buffer occupancy, underflows (still frames / audio dropouts) and
overflows (discarded data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["PlayoutBuffer", "PlayoutReport", "resume_gap", "splice_flows"]


def splice_flows(
    patch: List[Tuple[float, int]], channel: List[Tuple[float, int]]
) -> List[Tuple[float, int]]:
    """Merge a late joiner's two flows into one playable arrival list.

    A patched viewer receives the title's opening pages as a unicast
    ``patch`` while the multicast ``channel`` delivers pages from further
    in; the patch plays immediately and channel data buffers until the
    patch drains.  The splice models that: channel arrivals are deferred
    to the end of the patch (they sat in the playout buffer), then both
    lists merge in delivery order for :meth:`PlayoutBuffer.evaluate`.

    With no patch (a batched viewer, or plain unicast) the other flow
    passes through unchanged.
    """
    if not patch:
        return sorted(channel)
    if not channel:
        return sorted(patch)
    patch = sorted(patch)
    patch_end = patch[-1][0]
    deferred = [(max(when, patch_end), nbytes) for when, nbytes in sorted(channel)]
    return sorted(patch + deferred)


def resume_gap(
    arrivals: List[Tuple[float, int]], fail_time: float
) -> Tuple[float, bool]:
    """The delivery blackout a failover caused on one display port.

    Returns ``(gap_seconds, resumed)``: the interval between the last
    packet at or before ``fail_time`` and the first packet after it.
    ``resumed`` is False (gap infinite) when nothing ever arrived after
    the failure — the stream was not migrated.
    """
    last_before = None
    first_after = None
    for when, _nbytes in arrivals:
        if when <= fail_time:
            if last_before is None or when > last_before:
                last_before = when
        elif first_after is None or when < first_after:
            first_after = when
    if first_after is None:
        return float("inf"), False
    start = last_before if last_before is not None else fail_time
    return first_after - start, True


@dataclass(frozen=True)
class PlayoutReport:
    """What a playout simulation observed."""

    underflows: int
    overflow_bytes: int
    max_occupancy: int
    min_occupancy_after_start: int
    stall_seconds: float


class PlayoutBuffer:
    """A fixed-size client buffer drained at a constant rate."""

    def __init__(
        self,
        capacity_bytes: int = 200_000,
        rate: float = 187_500.0,
        startup_delay: float = 1.0,
    ):
        if capacity_bytes <= 0 or rate <= 0 or startup_delay < 0:
            raise ValueError("bad playout parameters")
        self.capacity_bytes = capacity_bytes
        self.rate = rate
        self.startup_delay = startup_delay

    def evaluate(self, arrivals: List[Tuple[float, int]]) -> PlayoutReport:
        """Replay ``arrivals`` (time, nbytes) and report buffer behaviour.

        An underflow is a moment the consumer wants data and the buffer is
        empty; consumption then stalls until the next arrival (a "still
        frame").  Bytes beyond capacity are discarded (overflow).
        """
        if not arrivals:
            return PlayoutReport(0, 0, 0, 0, 0.0)
        arrivals = sorted(arrivals)
        start = arrivals[0][0] + self.startup_delay
        occupancy = 0.0
        consumed_until = start
        underflows = 0
        overflow_bytes = 0
        max_occ = 0
        min_occ = None
        stall = 0.0
        for when, nbytes in arrivals:
            if when > consumed_until and consumed_until >= start:
                # Drain the interval since the last event.
                want = (when - consumed_until) * self.rate
                if want > occupancy:
                    underflows += 1
                    stall += (want - occupancy) / self.rate
                    occupancy = 0.0
                else:
                    occupancy -= want
                consumed_until = when
            elif when > start and consumed_until < start:
                consumed_until = max(consumed_until, start)
            occupancy += nbytes
            if occupancy > self.capacity_bytes:
                overflow_bytes += int(occupancy - self.capacity_bytes)
                occupancy = float(self.capacity_bytes)
            max_occ = max(max_occ, int(occupancy))
            if when >= start:
                min_occ = int(occupancy) if min_occ is None else min(min_occ, int(occupancy))
        return PlayoutReport(
            underflows=underflows,
            overflow_bytes=overflow_bytes,
            max_occupancy=max_occ,
            min_occupancy_after_start=min_occ if min_occ is not None else 0,
            stall_seconds=stall,
        )
