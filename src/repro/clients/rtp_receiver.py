"""Client-side RTP reception quality tracking.

The MBone tools Calliope serves (§2.1) judge a stream by its RTP sequence
numbers: gaps are lost packets, reversals are reordering.  The tracker
consumes the payloads a display port receives and reports the statistics
a ``vat``/``nv`` receiver would display.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ProtocolError
from repro.net.rtp import RtpHeader

__all__ = ["RtpReceiverStats"]

_SEQ_MOD = 1 << 16


@dataclass
class RtpReceiverStats:
    """Sequence-number accounting for one received RTP stream."""

    received: int = 0
    lost: int = 0
    reordered: int = 0
    duplicates: int = 0
    not_rtp: int = 0
    first_seq: Optional[int] = None
    #: Highest sequence number seen, extended past 16-bit wrap.
    highest_extended: Optional[int] = None

    def feed(self, payload: bytes) -> Optional[RtpHeader]:
        """Account one received payload; returns its header if RTP."""
        try:
            header = RtpHeader.parse(payload)
        except ProtocolError:
            self.not_rtp += 1
            return None
        self.received += 1
        seq = header.sequence
        if self.highest_extended is None:
            self.first_seq = seq
            self.highest_extended = seq
            return header
        # Extend the 16-bit counter: a small forward step (mod 2^16) past
        # the highest value seen is new data; anything else is old.
        delta = (seq - self.highest_extended) % _SEQ_MOD
        if delta == 0:
            self.duplicates += 1
        elif delta < _SEQ_MOD // 2:
            if delta > 1:
                self.lost += delta - 1
            self.highest_extended += delta
        else:
            # Behind the high-water mark: late/reordered arrival.
            self.reordered += 1
            if self.lost > 0:
                self.lost -= 1  # a presumed-lost packet showed up late
        return header

    @property
    def expected(self) -> int:
        """Packets the sequence numbers say were sent to us so far."""
        if self.highest_extended is None or self.first_seq is None:
            return 0
        return self.highest_extended - self.first_seq + 1

    @property
    def loss_fraction(self) -> float:
        """Fraction of expected packets never seen."""
        expected = self.expected
        return self.lost / expected if expected else 0.0
