"""Client-side components: applications, playout buffering, workloads.

* :mod:`repro.clients.client` — a full Calliope client: sessions, display
  ports, play/record requests, VCR control, receive statistics.
* :mod:`repro.clients.playback` — the client playout-buffer model used to
  reason about jitter smoothing (§2.2.1's 200 KB buffer argument).
* :mod:`repro.clients.workload` — request generators (open-loop Poisson
  arrivals for the §3.3 scalability measurement).
* :mod:`repro.clients.fake_msu` — the paper's instrumented "fake MSU" that
  delays 50 ms and reports the stream terminated (§3.3).
"""

from repro.clients.client import Client, GroupView, PortStats
from repro.clients.fake_msu import FakeMsu
from repro.clients.playback import PlayoutBuffer, PlayoutReport
from repro.clients.population import PopulationStats, ViewerPopulation
from repro.clients.rtp_receiver import RtpReceiverStats
from repro.clients.workload import OpenLoopRequester

__all__ = [
    "Client",
    "FakeMsu",
    "GroupView",
    "OpenLoopRequester",
    "PlayoutBuffer",
    "PlayoutReport",
    "PopulationStats",
    "PortStats",
    "RtpReceiverStats",
    "ViewerPopulation",
]
