"""The Coordinator's live-channel manager: EPG, tuning, time shift.

One :class:`LiveManager` owns the channel lineup.  For each
:class:`ChannelSpec` an EPG process fires at the scheduled start time,
admits an ingest slot (``place_record``) plus a fan-out delivery slot on
the same MSU, and sends the MSU a single ``LiveOpen`` that wires both
ends of the channel: the broadcaster's RecordStream appending onto a
growing file and the multicast ChannelStream following its tail.

Viewers *tune* by playing the channel's content name; the manager
intercepts the play before the VoD paths see it, applies a token-bucket
surf gate (channel-surf storms must not starve the request queue), and
subscribes the viewer to the fan-out.  Rewind-live charges a bounded
unicast slot (``charge_direct``, like a channel downgrade) that is
refunded when the time-shift patch drains and the viewer re-merges.

Everything structural is journaled (``live-*`` records) and captured by
snapshots, so a restarted Coordinator re-adopts channels mid-broadcast;
reconciliation trusts the MSU's ``live_channels`` report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Generator, Optional, Set, Tuple

from repro.net import messages as m
from repro.net.network import MULTICAST_PREFIX

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.coordinator import Coordinator
    from repro.core.database import ContentEntry
    from repro.core.session import Session

__all__ = [
    "LIVE_CHANNEL_BASE",
    "ChannelSpec",
    "LiveConfig",
    "LiveChannelRecord",
    "LiveManager",
]

#: Live channel ids live far above the multicast manager's VoD channel
#: ids so a PatchDrained / StreamTerminated routes unambiguously.
LIVE_CHANNEL_BASE = 1 << 20


@dataclass(frozen=True)
class ChannelSpec:
    """One EPG lineup entry: what airs, where from, and when."""

    name: str
    type_name: str
    source_host: str
    start_at: float = 0.0
    duration_seconds: float = 60.0
    #: True keeps every page (a scheduled recording that becomes VoD
    #: when the channel signs off); False rings the file and deletes it.
    record: bool = False


@dataclass(frozen=True)
class LiveConfig:
    """Knobs for the live subsystem."""

    lineup: Tuple[ChannelSpec, ...] = ()
    #: Time-shift window depth, seconds of media kept behind the live edge.
    ring_seconds: float = 30.0
    #: Token-bucket surf gate: sustained tunes/second across all viewers
    #: (0 disables the gate) and the burst it forgives.
    surf_rate: float = 0.0
    surf_burst: float = 8.0
    #: How long past its scheduled slot a channel may run before the EPG
    #: forces it off the air (a stalled broadcaster never quits cleanly).
    off_air_grace: float = 10.0
    #: Ingest-admission retries when the cluster is momentarily full.
    open_retries: int = 5
    open_retry_delay: float = 2.0


@dataclass
class LiveChannelRecord:
    """Coordinator-side state of one on-air channel."""

    channel_id: int
    content_name: str
    type_name: str
    msu_name: str
    disk_id: str
    group_id: int            # the fan-out stream's server-internal group
    stream_id: int
    ingest_group_id: int     # the broadcaster's group (RecordStream)
    ingest_stream_id: int
    rate: float
    started_at: float
    ring_blocks: int
    dvr: bool
    mcast_host: str
    source_host: str
    #: viewer group_id -> stream_id.
    subscribers: Dict[int, int] = field(default_factory=dict)
    ingest_done: bool = False
    closed: bool = False
    viewers_total: int = 0
    peak_subscribers: int = 0
    rewinds: int = 0
    rewind_hits: int = 0


class LiveManager:
    """EPG scheduling, surf admission, and time-shift accounting."""

    def __init__(self, coordinator: "Coordinator", config: LiveConfig):
        self.coord = coordinator
        self.sim = coordinator.sim
        self.config = config
        self.channels: Dict[int, LiveChannelRecord] = {}
        self._by_name: Dict[str, int] = {}
        self._channel_groups: Dict[int, int] = {}    # fan-out gid -> cid
        self._ingest_groups: Dict[int, int] = {}     # ingest gid -> cid
        self._subscriber_groups: Dict[int, int] = {}  # viewer gid -> cid
        self._next_channel = LIVE_CHANNEL_BASE + 1
        #: Lineup indices whose EPG slot already fired (journaled so a
        #: restarted Coordinator does not re-open a finished broadcast).
        self.fired: Set[int] = set()
        self._surf_tokens = float(config.surf_burst)
        self._surf_last = 0.0
        # Counters (experiments / invariants read these).
        self.channels_opened = 0
        self.channels_closed = 0
        self.channels_failed = 0
        self.viewers_joined = 0
        self.surf_throttled = 0
        self.rewinds = 0
        self.rewind_hits = 0
        self.merges = 0
        if not getattr(coordinator, "standby", False):
            for index, spec in enumerate(config.lineup):
                self.sim.process(self._epg(index, spec), name=f"epg.{spec.name}")

    # -- EPG scheduling ------------------------------------------------------

    def activate(self) -> None:
        """Arm EPG slots on a promoted warm standby.

        Safe late: ``_epg`` re-derives its delay from ``start_at`` and
        skips indices already in ``fired`` (tailed from the old leader's
        journal), so only genuinely unfired slots open.
        """
        for index, spec in enumerate(self.config.lineup):
            if index not in self.fired:
                self.sim.process(self._epg(index, spec), name=f"epg.{spec.name}")

    def _epg(self, index: int, spec: ChannelSpec) -> Generator:
        delay = max(0.0, spec.start_at - self.sim.now)
        yield self.sim.timeout(delay)
        while self.coord.recovering:
            yield self.sim.timeout(0.5)
        if self.coord.dead or index in self.fired:
            return
        self.fired.add(index)
        self.coord._journal("live-epg", {"index": index})
        record = None
        for _attempt in range(max(1, self.config.open_retries)):
            record = self.open_channel(spec)
            if record is not None:
                break
            yield self.sim.timeout(self.config.open_retry_delay)
            if self.coord.dead or self.coord.recovering:
                return
        if record is None:
            self.channels_failed += 1
            self.coord._trace("live-failed", spec.name, "no ingest slot")
            return
        # Off-air guard: a broadcaster that stalls and never quits would
        # hold its ingest slot forever; force the sign-off after grace.
        yield self.sim.timeout(spec.duration_seconds + self.config.off_air_grace)
        current = self.channels.get(record.channel_id)
        if current is record and not current.ingest_done:
            self.coord._trace("live-force-stop", spec.name,
                              f"channel={record.channel_id}")
            self.stop_channel(record.channel_id)

    def open_channel(self, spec: ChannelSpec) -> Optional[LiveChannelRecord]:
        """Admit and open one live channel; None when the cluster is full."""
        from repro.core.coordinator import GroupRecord  # cycle: late import
        from repro.core.database import ContentEntry
        from repro.recovery.snapshot import group_state, live_record_state

        coord = self.coord
        if spec.name in coord.db.contents or spec.name in self._by_name:
            return None  # already on the air or recorded under this name
        ctype = coord.types.get(spec.type_name)
        # A ring channel's disk footprint is bounded by the window, not
        # the broadcast length; a scheduled recording needs it all, plus
        # headroom for IB-tree packing (per-record headers, the slack at
        # each page end) that the raw media-rate estimate cannot see.
        estimate = spec.duration_seconds * 1.15
        if not spec.record:
            estimate = min(estimate, 2.0 * self.config.ring_seconds)
        alloc = coord.admission.place_record(ctype, estimate)
        if alloc is None:
            return None
        msu_channel = coord._msu_channels.get(alloc.msu_name)
        if msu_channel is None:
            coord.admission.release(alloc)
            return None
        # The fan-out leg reads the tail back out: its delivery slot is
        # charged without a feasibility gate (the ingest placement just
        # proved the MSU has headroom; the duty cycle absorbs overlap).
        fan_alloc = coord.admission.charge_direct(
            None, ctype.bandwidth_rate, alloc.msu_name, alloc.disk_id
        )
        channel_id = self._next_channel
        self._next_channel += 1
        group_id = coord.allocate_group_id()
        stream_id = coord.allocate_stream_id()
        ingest_group_id = coord.allocate_group_id()
        ingest_stream_id = coord.allocate_stream_id()
        ring_blocks = 0
        if not spec.record:
            ring_blocks = coord.admission.estimate_blocks(
                ctype, self.config.ring_seconds
            )
        mcast_host = f"{MULTICAST_PREFIX}{alloc.msu_name}:live{channel_id}"
        coord.db.add_content(
            ContentEntry(spec.name, spec.type_name, alloc.msu_name, alloc.disk_id)
        )
        # Server-initiated groups carry no session; install them directly
        # (register_group wants a Session) and journal their open.
        ingest_group = GroupRecord(ingest_group_id, 0, alloc.msu_name)
        ingest_group.allocations[ingest_stream_id] = alloc
        ingest_group.recordings[ingest_stream_id] = (spec.name, spec.type_name)
        coord.groups[ingest_group_id] = ingest_group
        coord._journal("group-open", {"group": group_state(ingest_group)})
        fan_group = GroupRecord(group_id, 0, alloc.msu_name)
        fan_group.allocations[stream_id] = fan_alloc
        coord.groups[group_id] = fan_group
        coord._journal("group-open", {"group": group_state(fan_group)})
        record = LiveChannelRecord(
            channel_id, spec.name, spec.type_name, alloc.msu_name,
            alloc.disk_id, group_id, stream_id, ingest_group_id,
            ingest_stream_id, ctype.bandwidth_rate, self.sim.now,
            ring_blocks, spec.record, mcast_host, spec.source_host,
        )
        self._install(record)
        self.channels_opened += 1
        coord._journal("live-open", {"channel": live_record_state(record)})
        msu_channel.send(
            coord.name,
            m.LiveOpen(
                channel_id, group_id, stream_id, ingest_group_id,
                ingest_stream_id, spec.name, alloc.disk_id, ctype.protocol,
                ctype.bandwidth_rate, ctype.variable, spec.source_host,
                (mcast_host, 1), reserve_blocks=alloc.reserved_blocks,
                ring_blocks=ring_blocks,
            ),
            nbytes=m.WIRE_BYTES,
        )
        coord._trace("live-open", spec.name,
                     f"channel={channel_id} msu={alloc.msu_name} "
                     f"ring={ring_blocks} dvr={spec.record}")
        return record

    def stop_channel(self, channel_id: int) -> None:
        """Take a channel off the air (EPG slot over / operator action)."""
        record = self.channels.get(channel_id)
        if record is None:
            return
        msu_channel = self.coord._msu_channels.get(record.msu_name)
        if msu_channel is not None:
            msu_channel.send(
                self.coord.name, m.LiveStop(channel_id), nbytes=m.WIRE_BYTES
            )

    def _install(self, record: LiveChannelRecord) -> None:
        self.channels[record.channel_id] = record
        self._by_name[record.content_name] = record.channel_id
        self._channel_groups[record.group_id] = record.channel_id
        if not record.ingest_done:
            self._ingest_groups[record.ingest_group_id] = record.channel_id
        for gid in record.subscribers:
            self._subscriber_groups[gid] = record.channel_id
        self._next_channel = max(self._next_channel, record.channel_id + 1)

    # -- tuning (viewer joins) -----------------------------------------------

    def channel_for(self, content_name: str) -> Optional[LiveChannelRecord]:
        """The on-air channel broadcasting ``content_name``, if any."""
        channel_id = self._by_name.get(content_name)
        if channel_id is None:
            return None
        return self.channels.get(channel_id)

    def owns_channel(self, channel_id: int) -> bool:
        """Whether an MSU message's channel id belongs to the live tier."""
        return channel_id > LIVE_CHANNEL_BASE

    def _take_surf_token(self) -> bool:
        if self.config.surf_rate <= 0:
            return True
        now = self.sim.now
        self._surf_tokens = min(
            float(self.config.surf_burst),
            self._surf_tokens + (now - self._surf_last) * self.config.surf_rate,
        )
        self._surf_last = now
        if self._surf_tokens >= 1.0:
            self._surf_tokens -= 1.0
            return True
        return False

    def tune(
        self,
        msg: m.PlayRequest,
        channel,
        session: "Session",
        entry: "ContentEntry",
        port,
        record: LiveChannelRecord,
    ) -> Generator:
        """Subscribe one viewer to a live channel (the play intercept).

        Surf-gated: past the token bucket the tune parks on the normal
        scheduling queue and retries when a stream ends — rapid join/
        leave storms drain at the configured rate instead of saturating
        the Coordinator.
        """
        from repro.core.coordinator import GroupRecord, _QueuedRequest
        from repro.failover import StreamMeta

        coord = self.coord
        if not self._take_surf_token():
            self.surf_throttled += 1
            coord._enqueue(_QueuedRequest("play", msg.session_id, msg, channel))
            coord._trace("live-throttled", entry.name,
                         f"session={msg.session_id}")
            return None
        group_id = coord.allocate_group_id()
        stream_id = coord.allocate_stream_id()
        group = GroupRecord(group_id, msg.session_id, record.msu_name)
        group.streams[stream_id] = StreamMeta(
            entry.name, entry.type_name, tuple(port.address)
        )
        coord.register_group(group, session)
        record.subscribers[group_id] = stream_id
        record.viewers_total += 1
        record.peak_subscribers = max(
            record.peak_subscribers, len(record.subscribers)
        )
        self._subscriber_groups[group_id] = record.channel_id
        self.viewers_joined += 1
        coord._journal("live-tune", {
            "channel_id": record.channel_id,
            "group_id": group_id,
            "stream_id": stream_id,
        })
        yield from coord.machine.cpu.execute(coord.SCHEDULE_CPU)
        msu_channel = coord._msu_channels.get(record.msu_name)
        if msu_channel is not None:
            msu_channel.send(
                coord.name,
                m.ChannelSubscribe(
                    record.channel_id, group_id, stream_id,
                    session.client_host, tuple(port.address),
                ),
                nbytes=m.WIRE_BYTES,
            )
        coord._trace("live-tune", entry.name,
                     f"channel={record.channel_id} group={group_id}")
        return m.StreamScheduled(group_id, record.msu_name)

    # -- time shift (rewind charge / merge refund) ---------------------------

    def rewound(self, msg: m.LiveRewound) -> None:
        """The MSU opened a time-shift patch: charge the unicast slot."""
        from repro.recovery.snapshot import allocation_state

        record = self.channels.get(msg.channel_id)
        self.rewinds += 1
        if msg.hit:
            self.rewind_hits += 1
        if record is None:
            return
        record.rewinds += 1
        if msg.hit:
            record.rewind_hits += 1
        group = self.coord.groups.get(msg.group_id)
        if group is None:
            return
        # A newer rewind replaced a patch still draining: refund it first.
        stale = group.allocations.pop(msg.stream_id, None)
        if stale is not None:
            self.coord.admission.release(stale)
        alloc = self.coord.admission.charge_direct(
            self.coord.db.contents.get(record.content_name),
            record.rate, record.msu_name, record.disk_id,
        )
        group.allocations[msg.stream_id] = alloc
        self.coord._journal("live-rewind", {
            "channel_id": msg.channel_id,
            "group_id": msg.group_id,
            "stream_id": msg.stream_id,
            "alloc": allocation_state(alloc),
            "hit": msg.hit,
        })
        self.coord._trace("live-rewind", record.content_name,
                          f"group={msg.group_id} pages=[{msg.start_page},"
                          f"{msg.end_page}) hit={msg.hit}")

    def patch_drained(self, msg: m.PatchDrained) -> None:
        """A time-shift patch re-merged with the fan-out: refund its slot."""
        group = self.coord.groups.get(msg.group_id)
        if group is not None:
            alloc = group.allocations.pop(msg.stream_id, None)
            if alloc is not None:
                self.coord.admission.release(alloc)
        self.merges += 1
        self.coord._journal("live-merge", {
            "channel_id": msg.channel_id,
            "group_id": msg.group_id,
            "stream_id": msg.stream_id,
        })

    # -- terminations --------------------------------------------------------

    def handle_terminated(self, msg: m.StreamTerminated) -> bool:
        """Route an MSU termination; True when fully handled here."""
        channel_id = self._channel_groups.get(msg.group_id)
        if channel_id is not None:
            # The fan-out stream ended: the broadcast is over.
            self.close_channel(channel_id)
            self.coord._retry_queue()
            return True
        channel_id = self._ingest_groups.get(msg.group_id)
        if channel_id is not None:
            record = self.channels.get(channel_id)
            if record is not None and msg.reason == "record-complete":
                record.ingest_done = True
                self.coord._journal("live-ingest-done",
                                    {"channel_id": channel_id})
            self._ingest_groups.pop(msg.group_id, None)
            return False  # default path releases the slot, sets blocks
        channel_id = self._subscriber_groups.pop(msg.group_id, None)
        if channel_id is not None:
            record = self.channels.get(channel_id)
            if record is not None:
                record.subscribers.pop(msg.group_id, None)
            self.coord._journal("live-detach", {
                "channel_id": channel_id, "group_id": msg.group_id,
            })
            return False  # default path refunds any rewind slot
        return False

    def close_channel(self, channel_id: int, forced: bool = False) -> None:
        """Tear down a finished (or failed) channel's books and content.

        ``forced`` means the MSU died: its allocations were already
        zeroed wholesale and there is no one to send a DeleteFile to.
        """
        record = self.channels.pop(channel_id, None)
        if record is None:
            return
        record.closed = True
        if self._by_name.get(record.content_name) == channel_id:
            del self._by_name[record.content_name]
        self._channel_groups.pop(record.group_id, None)
        self._ingest_groups.pop(record.ingest_group_id, None)
        for gid in record.subscribers:
            self._subscriber_groups.pop(gid, None)
        group = self.coord.groups.pop(record.group_id, None)
        if group is not None:
            if not forced:
                for alloc in group.allocations.values():
                    self.coord.admission.release(alloc)
            self.coord._journal("group-drop", {
                "group_id": record.group_id, "dropped_contents": [],
            })
        if not record.dvr:
            # A pure-live ring has no afterlife: drop the title and free
            # the resident window.  DVR channels stay as ordinary VoD.
            entry = self.coord.db.contents.get(record.content_name)
            if entry is not None and entry.active_total() == 0:
                self.coord.db.remove_content(record.content_name)
                if not forced:
                    self.coord._delete_on_msu(entry)
        self.channels_closed += 1
        self.coord._journal("live-close", {
            "channel_id": channel_id, "forced": forced,
        })
        self.coord._trace("live-close", record.content_name,
                          f"channel={channel_id} forced={forced} "
                          f"viewers={record.viewers_total}")

    def msu_failed(self, msu_name: str) -> None:
        """Every channel on a dead MSU went dark with it."""
        for channel_id in [
            cid for cid, rec in self.channels.items()
            if rec.msu_name == msu_name
        ]:
            self.close_channel(channel_id, forced=True)

    # -- recovery ------------------------------------------------------------

    def state(self) -> dict:
        """Snapshot image of the live tier."""
        from repro.recovery.snapshot import live_record_state

        return {
            "next_channel": self._next_channel,
            "fired": sorted(self.fired),
            "channels": [
                live_record_state(self.channels[cid])
                for cid in sorted(self.channels)
            ],
        }

    def restore(self, state: dict) -> None:
        """Rebuild the live tier from a snapshot image."""
        from repro.recovery.snapshot import live_record_from_state

        self._next_channel = max(
            self._next_channel, int(state.get("next_channel", 0))
        )
        self.fired = set(state.get("fired", ()))
        for image in state.get("channels", ()):
            self._install(live_record_from_state(image))

    def drop_channel(self, channel_id: int) -> None:
        """Forget a channel record without touching books or content.

        Used by journal replay of ``live-close`` (the books and content
        moves were journaled separately) and by reconciliation when the
        MSU no longer reports the channel.
        """
        record = self.channels.pop(channel_id, None)
        if record is None:
            return
        if self._by_name.get(record.content_name) == channel_id:
            del self._by_name[record.content_name]
        self._channel_groups.pop(record.group_id, None)
        self._ingest_groups.pop(record.ingest_group_id, None)
        for gid in record.subscribers:
            self._subscriber_groups.pop(gid, None)
