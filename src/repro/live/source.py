"""The broadcaster: a feed host pushing one live channel's media.

Unlike VoD recording (client-initiated, §2.1), a live channel's ingest
is *server-initiated*: the EPG opens the channel and the MSU dials the
broadcaster's VCR channel with a ``StreamReady`` carrying the record
address.  The source then paces its packets onto that address in real
time and signs off with ``VCR_QUIT`` — exactly the quit path a
recording client uses, so the MSU's drain/finish machinery is reused
unchanged.

A source can be *stalled* (chaos: ``live_ingest_stall``): the feed goes
silent for a window and then resumes, shifted — the channel's fan-out
idles at the tail meanwhile, and viewers simply receive nothing new,
which is what a dead satellite uplink looks like.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence, Tuple

from repro.net import messages as m
from repro.net.network import ControlChannel, Host
from repro.sim import Simulator

__all__ = ["LiveSource"]


class LiveSource:
    """One feed host: answers MSU dial-ins for its channels' ingest."""

    def __init__(self, sim: Simulator, cluster, host_name: str):
        self.sim = sim
        self.cluster = cluster
        self.host_name = host_name
        self.host = Host(sim, cluster.delivery_net, host_name)
        #: content name -> packet schedule to broadcast when dialed.
        self._feeds: dict = {}
        self.packets_sent = 0
        self.broadcasts_started = 0
        self.broadcasts_finished = 0
        #: (stall_at_seconds_into_feed, stall_seconds) or None.
        self.stall_window: Optional[Tuple[float, float]] = None
        self.stalls = 0
        cluster.register_vcr_listener(host_name, self._on_vcr_channel)

    def add_feed(self, content_name: str, packets: Sequence) -> None:
        """Arm a packet schedule for one lineup entry's content name."""
        self._feeds[content_name] = packets

    def stall(self, at_seconds: float, for_seconds: float) -> None:
        """Arm one feed stall: go silent ``for_seconds`` at ``at_seconds``."""
        self.stall_window = (at_seconds, for_seconds)

    # -- MSU dial-in ---------------------------------------------------------

    def _on_vcr_channel(
        self, group_id: int, channel: ControlChannel, msu_end: str
    ) -> None:
        self.sim.process(
            self._broadcast(group_id, channel),
            name=f"{self.host_name}.feed{group_id}",
        )

    def _broadcast(self, group_id: int, channel: ControlChannel) -> Generator:
        ready = None
        while True:
            msg = yield channel.recv(self.host_name)
            if msg is None:
                return  # channel torn down before the feed started
            if isinstance(msg, m.StreamReady) and msg.record_address is not None:
                ready = msg
                break
            if isinstance(msg, m.EndOfStream):
                return
        packets = self._feeds.get(ready.content_name)
        if packets is None:
            # Nothing armed for this title: sign off immediately so the
            # channel completes as an empty broadcast instead of hanging.
            channel.send(
                self.host_name, m.VcrCommand(group_id, m.VCR_QUIT),
                nbytes=m.WIRE_BYTES,
            )
            return
        self.broadcasts_started += 1
        socket = self.host.bind()
        dest = tuple(ready.record_address)
        origin = self.sim.now
        stalled = False
        for packet in packets:
            due = origin + packet[0] / 1e6
            if (
                not stalled
                and self.stall_window is not None
                and packet[0] / 1e6 >= self.stall_window[0]
            ):
                stalled = True
                self.stalls += 1
                yield self.sim.timeout(self.stall_window[1])
                origin += self.stall_window[1]  # feed resumes, shifted
                due += self.stall_window[1]
            if due > self.sim.now:
                yield self.sim.timeout(due - self.sim.now)
            yield from socket.send(dest, packet[1])
            self.packets_sent += 1
        socket.close()
        self.broadcasts_finished += 1
        if channel.open:
            channel.send(
                self.host_name, m.VcrCommand(group_id, m.VCR_QUIT),
                nbytes=m.WIRE_BYTES,
            )
