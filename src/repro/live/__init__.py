"""Live & time-shifted TV: channel ingest, fan-out, and rewind-live.

A live channel couples one recording stream (the broadcaster's feed,
appended onto an MSU file) with one multicast fan-out stream following
the growing tail.  A time-shift ring window layered on the IB-tree lets
viewers pause-live and rewind-live within the last N seconds; ring
blocks past the window return to the allocator.  The Coordinator runs
an EPG scheduler (channel lineup, scheduled recordings) and a
surf-churn admission gate for join/leave storms.
"""

from repro.live.manager import (
    LIVE_CHANNEL_BASE,
    ChannelSpec,
    LiveChannelRecord,
    LiveConfig,
    LiveManager,
)
from repro.live.source import LiveSource

__all__ = [
    "LIVE_CHANNEL_BASE",
    "ChannelSpec",
    "LiveChannelRecord",
    "LiveConfig",
    "LiveManager",
    "LiveSource",
]
