"""Coordinator scale-out: warm-standby takeover + sharded admission.

The paper runs exactly one Coordinator and concedes both halves of the
cost: it is a single point of failure *and* a serialization point for
every admission decision.  ``repro.recovery`` (PR 5) fixed the
durability half with a WAL + cold restart; this package removes the
restart downtime and the serial bottleneck:

* :mod:`repro.scaleout.standby` — a **warm standby** Coordinator that
  continuously tails the leader's journal into a shadow replica,
  detects leader loss via heartbeats
  (:class:`repro.failover.HeartbeatMonitor` watching the leader instead
  of MSUs) and takes over within one ``report_grace`` — no restart-time
  ReportState storm; MSUs keep serving throughout, and the few
  terminations that died with the leader's sockets are reconciled from
  the next heartbeat's stream positions.
* :mod:`repro.scaleout.escrow` — **sharded admission**: N coordinator
  shards partitioned by content, each holding an escrowed slice of
  every disk's bandwidth book with a journaled refill/steal protocol,
  admitting in parallel without double-spending a disk slot.

:class:`ScaleOutConfig` bundles the knobs; ``ClusterConfig.scaleout``
carries it (None keeps the single-Coordinator shape of PRs 1-8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.failover.heartbeat import HeartbeatConfig
from repro.scaleout.escrow import EscrowBook, ShardSet, shard_for
from repro.scaleout.standby import StandbyCoordinator, TakeoverOutcome

__all__ = [
    "ScaleOutConfig",
    "EscrowBook",
    "ShardSet",
    "shard_for",
    "StandbyCoordinator",
    "TakeoverOutcome",
]


def _leader_heartbeat_default() -> HeartbeatConfig:
    # Tighter than the MSU detector: worst-case detection is
    # 0.1*2 + 0.1 = 0.3s, safely inside the default report_grace of 1s
    # so a takeover always lands within one grace window.
    return HeartbeatConfig(
        period=0.1, miss_threshold=2, suspect_backoff=0.1, suspect_probes=1
    )


@dataclass(frozen=True)
class ScaleOutConfig:
    """Shape of the Coordinator tier."""

    #: Admission shards (1 reproduces the serial single Coordinator).
    shards: int = 1
    #: Keep a warm standby tailing the journal from cluster bring-up.
    standby: bool = False
    #: Seconds between standby journal-tail polls.
    standby_poll: float = 0.1
    #: Liveness detector the standby points at the leader.
    leader_heartbeat: HeartbeatConfig = field(
        default_factory=_leader_heartbeat_default
    )
    #: Escrow refill quantum as a fraction of disk capacity (per split).
    refill_fraction: float = 0.25
    #: Simulated seconds one shard spends per admission decision
    #: (0 = free; E24 sets it to measure the parallel speedup).
    admit_service_time: float = 0.0
