"""Escrowed per-disk bandwidth books for sharded admission.

A single Coordinator keeps one ``bandwidth_used`` figure per disk and
every admission serializes through it.  To let N coordinator shards
admit in parallel without double-spending a disk slot, the classic
escrow transaction recipe splits each disk's bandwidth budget three
ways:

* ``granted[s]`` — the escrow slice shard ``s`` may spend without
  talking to anyone.  Grants only move through two journaled
  operations, ``shard-grant`` (bank -> shard) and ``shard-steal``
  (shard -> shard), so the split itself is crash-durable.
* ``spent[s]`` — what shard ``s`` has actually charged.  Never
  journaled on its own: every spend is paired with the admission
  ``charge`` record that caused it, and replaying the charge re-derives
  the spend (:meth:`ShardSet.on_charge` runs during WAL replay too).
* the **bank** — the unescrowed remainder,
  ``capacity - sum(granted)``.  Always derived, never stored.

A shard whose slice runs dry refills from the bank in quanta (to
amortize the journaled grant), then **steals** from the richest sibling
— the imbalance protocol from the "Scalable Distributed VoD" placement
math.  Stealing needs the victim's cooperation, so a *partitioned*
shard neither admits nor yields escrow until healed.

Conservation is the whole point and is checked continuously by the
chaos harness (``scaleout-escrow`` invariant):

* ``sum(granted) + bank == capacity`` with ``bank >= 0``;
* ``sum(spent) == disk.bandwidth_used`` — exact attribution;
* ``spent[s] <= granted[s]`` except under genuine exhaustion (the
  deliberate ``charge_direct`` overcommit during channel downgrades),
  mirroring the central books' one-sided audit.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["EscrowBook", "ShardSet", "shard_for"]

EPS = 1e-6


def shard_for(content_name: str, n_shards: int) -> int:
    """Stable content -> shard routing (crc32: deterministic across runs)."""
    if n_shards <= 1:
        return 0
    return zlib.crc32(content_name.encode("utf-8")) % n_shards


class EscrowBook:
    """Escrow state for one disk: per-shard granted/spent slices."""

    __slots__ = ("msu_name", "disk_id", "capacity", "granted", "spent")

    def __init__(self, msu_name: str, disk_id: str, capacity: float, n: int):
        self.msu_name = msu_name
        self.disk_id = disk_id
        self.capacity = capacity
        self.granted: List[float] = [0.0] * n
        self.spent: List[float] = [0.0] * n

    def bank_free(self) -> float:
        return self.capacity - sum(self.granted)

    def free(self, shard: int) -> float:
        return self.granted[shard] - self.spent[shard]


class ShardSet:
    """N admission shards over one AdminDatabase's disk books.

    The set lives inside whichever Coordinator currently leads; the
    ``journal`` callable is the leader's ``_journal`` so escrow moves
    land in the same WAL as the charges they authorize.  ``replaying``
    suppresses refill/steal/journal while a snapshot+WAL is being
    applied (grants arrive as replayed records, strictly before the
    charges that spend them).
    """

    def __init__(
        self,
        db,
        n_shards: int,
        refill_fraction: float = 0.25,
        service_time: float = 0.0,
    ):
        self.db = db
        self.n = max(1, n_shards)
        self.refill_fraction = refill_fraction
        #: Simulated seconds one shard needs to process one admission
        #: (0 models the decision as free; E24 sets it to measure the
        #: parallel-admission speedup).
        self.service_time = service_time
        self.books: Dict[Tuple[str, str], EscrowBook] = {}
        self.partitioned: set = set()
        self.replaying = False
        #: Leader journal hook; None while shadowing (standby applies
        #: records, it never originates them).
        self.journal: Optional[Callable[[str, dict], None]] = None
        # Counters (experiments / tests read these).
        self.grants = 0
        self.steals = 0
        self.overdrafts = 0
        self._busy_until: List[float] = [0.0] * self.n

    # -- routing ---------------------------------------------------------------

    def shard_for(self, content_name: str) -> int:
        return shard_for(content_name, self.n)

    def is_partitioned(self, shard: int) -> bool:
        return shard in self.partitioned

    def partition(self, shard: int) -> None:
        if 0 <= shard < self.n:
            self.partitioned.add(shard)

    def heal(self, shard: int) -> None:
        self.partitioned.discard(shard)

    # -- book lookup -----------------------------------------------------------

    def _book(self, msu_name: str, disk_id: str) -> Optional[EscrowBook]:
        key = (msu_name, disk_id)
        book = self.books.get(key)
        if book is None:
            state = self.db.msus.get(msu_name)
            disk = state.disks.get(disk_id) if state is not None else None
            if disk is None:
                return None
            book = EscrowBook(
                msu_name, disk_id, disk.bandwidth_capacity, self.n
            )
            self.books[key] = book
        return book

    # -- escrow protocol -------------------------------------------------------

    def _quantum(self, book: EscrowBook, need: float) -> float:
        return max(need, book.capacity * self.refill_fraction / self.n)

    def _grant(self, book: EscrowBook, shard: int, amount: float) -> None:
        book.granted[shard] += amount
        self.grants += 1
        if self.journal is not None:
            self.journal(
                "shard-grant",
                {
                    "shard": shard,
                    "msu": book.msu_name,
                    "disk": book.disk_id,
                    "amount": amount,
                },
            )

    def _steal(
        self, book: EscrowBook, shard: int, victim: int, amount: float
    ) -> None:
        book.granted[victim] -= amount
        book.granted[shard] += amount
        self.steals += 1
        if self.journal is not None:
            self.journal(
                "shard-steal",
                {
                    "shard": shard,
                    "victim": victim,
                    "msu": book.msu_name,
                    "disk": book.disk_id,
                    "amount": amount,
                },
            )

    def _refill(self, book: EscrowBook, shard: int, need: float) -> None:
        """Cover ``need`` bytes/sec of missing escrow: bank, then steal."""
        take = min(book.bank_free(), self._quantum(book, need))
        if take > EPS:
            self._grant(book, shard, take)
            need -= take
        while need > EPS:
            victim = self._richest_victim(book, shard)
            if victim is None:
                # Genuine exhaustion: the spend proceeds anyway (the
                # central books may deliberately overcommit via
                # charge_direct; escrow must follow the same stream).
                self.overdrafts += 1
                return
            amount = min(book.free(victim), need)
            self._steal(book, shard, victim, amount)
            need -= amount

    def _richest_victim(
        self, book: EscrowBook, shard: int
    ) -> Optional[int]:
        best, best_free = None, EPS
        for v in range(self.n):
            if v == shard or v in self.partitioned:
                continue
            free = book.free(v)
            if free > best_free:
                best, best_free = v, free
        return best

    def can_admit(
        self, shard: int, msu_name: str, disk_id: str, bandwidth: float
    ) -> bool:
        """Whether ``shard`` could cover ``bandwidth`` without overdraft."""
        if shard in self.partitioned:
            return False
        book = self._book(msu_name, disk_id)
        if book is None:
            return False
        available = book.free(shard) + max(0.0, book.bank_free())
        for v in range(self.n):
            if v != shard and v not in self.partitioned:
                available += max(0.0, book.free(v))
        return available >= bandwidth - EPS

    # -- admission-book observer (AdmissionControl hooks) ----------------------

    def on_charge(self, alloc) -> None:
        """A disk-bandwidth charge landed; attribute it to the owner shard.

        Runs *before* the central book mutation and the ``charge``
        journal record, so any ``shard-grant``/``shard-steal`` the
        refill appends precedes the charge in WAL order — replay then
        reproduces the same escrow split spend-for-spend.
        """
        if alloc.edge_name or alloc.cache_covered:
            return  # no disk slot touched
        book = self._book(alloc.msu_name, alloc.disk_id)
        if book is None:
            return
        shard = self.shard_for(alloc.content_name or "")
        if not self.replaying:
            need = alloc.bandwidth - book.free(shard)
            if need > EPS:
                self._refill(book, shard, need)
        book.spent[shard] += alloc.bandwidth

    def on_release(self, alloc) -> None:
        if alloc.edge_name or alloc.cache_covered:
            return
        book = self.books.get((alloc.msu_name, alloc.disk_id))
        if book is None:
            return
        shard = self.shard_for(alloc.content_name or "")
        book.spent[shard] = max(0.0, book.spent[shard] - alloc.bandwidth)
        if not self.replaying:
            self._repair(book)

    def _repair(self, book: EscrowBook) -> None:
        """Cover lingering overdrafts from escrow a release just freed.

        An overdraft is only legal while *nothing* is free; the moment
        the bank or a sibling has slack again, the overdrawn shard's
        slice is topped up (journaled like any other grant).
        """
        for s in range(self.n):
            need = book.spent[s] - book.granted[s]
            if need <= EPS:
                continue
            if (
                book.bank_free() > EPS
                or self._richest_victim(book, s) is not None
            ):
                self._refill(book, s, need)

    def on_release_msu(self, msu_name: str) -> None:
        """The MSU's books were zeroed wholesale; zero its escrow spends."""
        for (msu, _disk), book in self.books.items():
            if msu == msu_name:
                book.spent = [0.0] * self.n

    def reset_spent(self) -> None:
        """Zero every spend (rebuild_books re-derives them from scratch)."""
        for book in self.books.values():
            book.spent = [0.0] * self.n

    # -- replayed escrow records -----------------------------------------------

    def apply_grant(self, payload: dict) -> None:
        book = self._book(payload["msu"], payload["disk"])
        if book is not None:
            book.granted[payload["shard"]] += payload["amount"]

    def apply_steal(self, payload: dict) -> None:
        book = self._book(payload["msu"], payload["disk"])
        if book is not None:
            book.granted[payload["victim"]] -= payload["amount"]
            book.granted[payload["shard"]] += payload["amount"]

    # -- parallel admission service model --------------------------------------

    def admission_delay(self, shard: int, now: float) -> float:
        """Queueing delay at ``shard``'s admission server (0 when free).

        Each shard is one serial server: same-shard admissions queue
        behind each other, different shards proceed in parallel — the
        source of the E24 admissions/sec scaling.
        """
        if self.service_time <= 0.0:
            return 0.0
        start = max(now, self._busy_until[shard])
        self._busy_until[shard] = start + self.service_time
        return self._busy_until[shard] - now

    # -- snapshot / audit ------------------------------------------------------

    def state(self) -> dict:
        return {
            "n": self.n,
            "books": [
                {
                    "msu": book.msu_name,
                    "disk": book.disk_id,
                    "capacity": book.capacity,
                    "granted": list(book.granted),
                    "spent": list(book.spent),
                }
                for _, book in sorted(self.books.items())
            ],
        }

    def restore(self, state: dict) -> None:
        if state.get("n") != self.n:
            # A snapshot from a different shard count cannot be mapped
            # onto this split; start from empty escrow (the bank holds
            # everything, spends re-derive from the charge replay).
            self.books.clear()
            return
        self.books.clear()
        for data in state.get("books", ()):
            book = EscrowBook(
                data["msu"], data["disk"], data["capacity"], self.n
            )
            book.granted = [float(g) for g in data["granted"]]
            book.spent = [float(s) for s in data["spent"]]
            self.books[(book.msu_name, book.disk_id)] = book

    def audit(self) -> List[str]:
        """Escrow anomalies that must never occur, as strings."""
        problems = []
        for (msu, disk_id), book in sorted(self.books.items()):
            where = f"{msu}/{disk_id}"
            if book.bank_free() < -EPS:
                problems.append(
                    f"{where}: escrow over-granted — bank "
                    f"{book.bank_free()} < 0 (granted {book.granted})"
                )
            for s in range(self.n):
                if book.granted[s] < -EPS:
                    problems.append(
                        f"{where}: shard {s} granted {book.granted[s]} < 0"
                    )
                if book.spent[s] < -EPS:
                    problems.append(
                        f"{where}: shard {s} spent {book.spent[s]} < 0"
                    )
                if book.spent[s] > book.granted[s] + EPS:
                    # Overdraft is only legal under genuine exhaustion.
                    others = max(
                        (book.free(v) for v in range(self.n) if v != s),
                        default=0.0,
                    )
                    if book.bank_free() > EPS or others > EPS:
                        problems.append(
                            f"{where}: shard {s} overdrawn "
                            f"(spent {book.spent[s]} > granted "
                            f"{book.granted[s]}) with escrow still free"
                        )
        return problems
