"""Warm-standby Coordinator: journal tailing, leader watch, takeover.

The cold-restart path (``repro.recovery``) rebuilds a Coordinator from
stable storage *after* the loss is noticed, then holds admissions for a
``report_grace`` window while every MSU answers a ReportState probe.
The warm standby removes both delays:

* **Tailing.**  A shadow Coordinator is built passive
  (``standby=True``: no EPG slots, no edge-placement loop, escrow in
  replay mode) and a poll process applies the leader's journal into it
  continuously — a fresh snapshot re-restores the shadow wholesale, new
  WAL records apply incrementally.  At any instant the shadow is at
  most one poll interval behind the leader's durable state.
* **Detection.**  The leader beats the standby's
  :class:`~repro.failover.heartbeat.HeartbeatMonitor` (via
  :meth:`beat_for`, the generalized intake) every
  ``leader_heartbeat.period`` seconds; the standard
  alive/suspect/dead machine turns silence into a verdict in
  ``detection_latency`` seconds — tuned well inside ``report_grace``.
* **Takeover.**  On the verdict the standby drains the journal tail one
  last time, activates its passive managers, assumes the cluster's
  control plane (fresh MSU/edge channels) and re-opens admissions
  immediately.  There is no ReportState storm: the replayed stream
  tables are trusted as-is, and the only divergence a dead leader can
  cause — terminations reported into its closed sockets — is healed by
  diffing each MSU's *next heartbeat* positions against the tables
  (:meth:`Coordinator._warm_reconcile`).  MSUs keep serving throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, List, Optional

from repro.failover.heartbeat import HeartbeatConfig, HeartbeatMonitor
from repro.recovery.replay import apply_record
from repro.recovery.snapshot import restore_state

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.cluster import CalliopeCluster
    from repro.core.coordinator import Coordinator

__all__ = ["StandbyCoordinator", "TakeoverOutcome", "LEADER"]

#: Endpoint name the leader beacon beats under.
LEADER = "leader"


@dataclass(frozen=True)
class TakeoverOutcome:
    """One completed standby promotion (experiments/invariants read it)."""

    #: Sim time the old leader actually died.
    leader_lost_at: float
    #: Sim time the standby's detector returned the dead verdict.
    detected_at: float
    #: Sim time the standby finished assuming the cluster.
    completed_at: float
    #: WAL records the standby had applied while shadowing.
    records_tailed: int
    #: Snapshot re-restores while shadowing (journal truncations seen).
    resyncs: int
    #: Admitted streams on the books at the moment of takeover.
    streams_at_takeover: int

    @property
    def detection_latency(self) -> float:
        return self.detected_at - self.leader_lost_at

    @property
    def takeover_latency(self) -> float:
        return self.completed_at - self.leader_lost_at


class StandbyCoordinator:
    """A shadow Coordinator tailing the cluster's journal, ready to lead."""

    def __init__(
        self,
        cluster: "CalliopeCluster",
        poll: float = 0.1,
        leader_heartbeat: Optional[HeartbeatConfig] = None,
        name: str = "coordinator-standby",
    ):
        from repro.core.coordinator import Coordinator  # cycle: late import

        if cluster.journal is None:
            raise ValueError("warm standby requires the recovery journal")
        self.cluster = cluster
        self.sim = cluster.sim
        self.poll = poll
        config = cluster.config
        self.shadow: "Coordinator" = Coordinator(
            self.sim, types=config.types,
            block_size=config.ibtree_config.data_page_size,
            name=name,
            failover=config.failover, multicast=config.multicast,
            edge=config.edge, live=config.live,
            standby=True,
        )
        scaleout = getattr(config, "scaleout", None)
        if scaleout is not None:
            shards = self.shadow.enable_shards(
                scaleout.shards,
                refill_fraction=scaleout.refill_fraction,
                service_time=scaleout.admit_service_time,
            )
            # Shadowing: escrow records arrive from the tail, never
            # originate here.  activate() clears the flag at takeover.
            shards.replaying = True
        #: Leader liveness detector, fed by the cluster's beacon.
        self.leader_monitor = HeartbeatMonitor(
            self.sim,
            leader_heartbeat or HeartbeatConfig(
                period=0.1, miss_threshold=2,
                suspect_backoff=0.1, suspect_probes=1,
            ),
            on_dead=self._leader_dead,
        )
        #: Journal position: highest record seq applied to the shadow.
        self.applied_seq = 0
        self._primed = False
        self.records_tailed = 0
        self.resyncs = 0
        self.promoted = False
        self.stopped = False
        self.outcome: Optional[TakeoverOutcome] = None
        self.sim.process(self._tail_loop(), name=f"{name}.tail")

    # -- journal tailing -------------------------------------------------------

    def sync(self) -> int:
        """Apply everything durable the shadow has not seen; returns count.

        A snapshot whose ``snapshot_seq`` passed ``applied_seq`` means
        the log was truncated past our position — re-restore wholesale.
        The very first sync always takes the snapshot (the seed snapshot
        sits at seq 0, which an incremental check would skip).
        """
        store = self.cluster.journal
        applied = 0
        if store.snapshot is not None and (
            not self._primed or store.snapshot_seq > self.applied_seq
        ):
            restore_state(self.shadow, store.snapshot)
            if self._primed:
                self.resyncs += 1
            self.applied_seq = store.snapshot_seq
        self._primed = True
        for record in store.records:
            if record.seq <= self.applied_seq:
                continue
            apply_record(self.shadow, record.kind, record.payload)
            self.applied_seq = record.seq
            self.records_tailed += 1
            applied += 1
        return applied

    def _tail_loop(self) -> Generator:
        while not self.stopped and not self.promoted:
            self.sync()
            yield self.sim.timeout(self.poll)

    # -- leader watch ----------------------------------------------------------

    def leader_beat(self) -> None:
        """The cluster's beacon: the leader is alive right now."""
        if not self.stopped and not self.promoted:
            self.leader_monitor.beat_for(LEADER)

    def _leader_dead(self, _name: str) -> None:
        if self.stopped or self.promoted:
            return
        if not self.cluster.coordinator_down:
            # Stale verdict: the leader was cold-restarted before the
            # watchdog fired.  Stand down; the beacon's next beat
            # re-arms the watch (beat_for revives a stopped record).
            return
        self.takeover()

    # -- promotion -------------------------------------------------------------

    def takeover(self) -> TakeoverOutcome:
        """Assume the cluster: final tail drain, activate, re-wire.

        Entirely synchronous — by the time the dead verdict lands, the
        shadow *is* the replayed state; there is nothing to wait for.
        """
        detected_at = self.sim.now
        self.sync()
        self.promoted = True
        self.leader_monitor.stop_all()
        streams = sum(
            len(group.streams) for group in self.shadow.groups.values()
        )
        self.cluster.promote_standby(self)
        lost_at = getattr(self.cluster, "leader_lost_at", detected_at)
        self.outcome = TakeoverOutcome(
            leader_lost_at=lost_at,
            detected_at=detected_at,
            completed_at=self.sim.now,
            records_tailed=self.records_tailed,
            resyncs=self.resyncs,
            streams_at_takeover=streams,
        )
        self.cluster.takeovers.append(self.outcome)
        return self.outcome

    def stop(self) -> None:
        """Decommission the standby (it will neither tail nor promote)."""
        self.stopped = True
        self.leader_monitor.stop_all()
