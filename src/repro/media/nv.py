"""NV-like variable-rate video traffic (§3.2.2).

The paper replays three files encoded by NV [6] with average rates of 650,
635 and 877 kbit/s.  Two properties of NV traffic drive Graph 2's result
and are reproduced here:

* **Small packets** — "most of the packets in the streams are about one
  KByte long", so per-packet overhead is ~4x the 4 KiB constant-rate case.
* **Burstiness** — "NV encodes a frame and then sends it out as quickly as
  possible, resulting in bursts of back-to-back packets"; 50 ms-window
  peaks reach 2.0–5.4 Mbit/s against sub-Mbit averages.

The generator emits frames at the nominal frame interval; frame sizes are
lognormal with occasional scene-change spikes, and each frame is split
into ~1 KiB packets spaced back-to-back at the encoder's wire pacing.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.media.content import SourcePacket
from repro.units import kbit_per_s

__all__ = ["NvEncoder", "window_peak_rate"]


class NvEncoder:
    """Deterministic NV-style VBR source."""

    def __init__(
        self,
        avg_rate: float = kbit_per_s(650.0),
        fps: float = 12.0,
        packet_size: int = 1024,
        scene_change_prob: float = 0.04,
        scene_change_scale: float = 4.5,
        max_frame_bytes: int = 30_000,
        burst_gap_us: int = 300,
        seed: int = 11,
    ):
        if avg_rate <= 0 or fps <= 0 or packet_size <= 0:
            raise ValueError("rates, fps and packet size must be positive")
        self.avg_rate = avg_rate
        self.fps = fps
        self.packet_size = packet_size
        self.scene_change_prob = scene_change_prob
        self.scene_change_scale = scene_change_scale
        self.max_frame_bytes = max_frame_bytes
        self.burst_gap_us = burst_gap_us
        self._rng = np.random.default_rng(seed)

    def frame_sizes(self, nframes: int) -> List[int]:
        """Per-frame byte counts, normalized to the average rate."""
        rng = self._rng
        # Lognormal body plus occasional scene-change spikes.
        body = rng.lognormal(mean=0.0, sigma=0.45, size=nframes)
        spikes = rng.random(nframes) < self.scene_change_prob
        body[spikes] *= self.scene_change_scale
        body *= (self.avg_rate / self.fps) / body.mean()
        # Clamp outliers (NV spreads very large frames) and renormalize so
        # the average rate is preserved; the clamp bounds the 50 ms-window
        # peak at roughly max_frame_bytes / 50 ms.
        body = np.clip(body, 200.0, float(self.max_frame_bytes))
        body *= (self.avg_rate / self.fps) / body.mean()
        body = np.clip(body, 200.0, float(self.max_frame_bytes))
        return [int(b) for b in body]

    def packets(self, duration: float) -> List[SourcePacket]:
        """All packets for ``duration`` seconds of video."""
        nframes = int(round(duration * self.fps))
        frame_interval_us = 1e6 / self.fps
        rng = self._rng
        out: List[SourcePacket] = []
        for n, size in enumerate(self.frame_sizes(nframes)):
            base_us = int(n * frame_interval_us)
            remaining = size
            burst_index = 0
            while remaining > 0:
                take = min(self.packet_size, remaining)
                payload = rng.integers(0, 256, take, dtype=np.uint8).tobytes()
                out.append(
                    SourcePacket(base_us + burst_index * self.burst_gap_us, payload)
                )
                remaining -= take
                burst_index += 1
        return out

    def mean_rate(self, packets: List[SourcePacket]) -> float:
        """Measured average rate of a packet list, bytes/sec."""
        if not packets:
            return 0.0
        span = (packets[-1].delivery_us - packets[0].delivery_us) / 1e6
        total = sum(len(p.payload) for p in packets)
        return total / span if span > 0 else 0.0


def window_peak_rate(packets: List[SourcePacket], window: float = 0.05) -> float:
    """Peak rate over a sliding ``window`` (the paper uses 50 ms), bytes/sec.

    Used by the tests to assert the generator reproduces the paper's
    2.0–5.4 Mbit/s peaks.
    """
    if not packets:
        return 0.0
    times = np.array([p.delivery_us / 1e6 for p in packets])
    sizes = np.array([float(len(p.payload)) for p in packets])
    prefix = np.concatenate([[0.0], np.cumsum(sizes)])
    peak = 0.0
    j = 0
    for i in range(len(packets)):
        while times[i] - times[j] > window:
            j += 1
        peak = max(peak, (prefix[i + 1] - prefix[j]) / window)
    return peak
