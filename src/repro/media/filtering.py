"""The offline fast-forward / fast-backward filter program (§2.3.1).

"The filtering program reads the recorded stream, selects every fifteenth
video frame, recompresses the filtered stream, and loads it into the
server.  For the fast-backward version, the frames are stored in the
filtered stream in reverse order."

The filter genuinely parses the MPEG-like bitstream by start code.  It
selects the intra-coded frame of each GOP (every ``step``-th frame), and
"recompression" re-encodes the selected frames into a fresh bitstream
whose nominal rate equals the original's — so a fast-scan stream occupies
a normal stream's network and disk slots while covering ``step`` times the
content per unit time.

The original frame numbers are preserved in the filtered frames' headers;
the MSU's VCR switcher uses them to map a position in the normal-rate file
to the corresponding frame of the fast-scan file and back.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.errors import ProtocolError
from repro.media.mpeg import (
    PICTURE_START,
    SEQUENCE_START,
    _CODE_TYPE,
    _PIC_HDR,
    _PIC_HDR_SIZE,
    Frame,
)

__all__ = ["parse_frames", "make_fast_forward", "make_fast_backward"]


def parse_frames(bitstream: bytes) -> List[Frame]:
    """Parse an MPEG-like bitstream into its frames, by start code."""
    if not bitstream.startswith(SEQUENCE_START):
        raise ProtocolError("missing sequence header")
    pos = len(SEQUENCE_START)
    frames: List[Frame] = []
    while pos < len(bitstream):
        if bitstream[pos : pos + len(PICTURE_START)] != PICTURE_START:
            raise ProtocolError(f"expected picture start code at offset {pos}")
        pos += len(PICTURE_START)
        number, code, length = struct.unpack_from(_PIC_HDR, bitstream, pos)
        pos += _PIC_HDR_SIZE
        if code not in _CODE_TYPE:
            raise ProtocolError(f"bad frame type code {code} at offset {pos}")
        payload = bitstream[pos : pos + length]
        if len(payload) != length:
            raise ProtocolError("truncated frame payload")
        frames.append(Frame(number, _CODE_TYPE[code], payload))
        pos += length
    return frames


def _select(frames: List[Frame], step: int) -> List[Frame]:
    if step < 1:
        raise ValueError(f"step must be >= 1, got {step}")
    selected = frames[::step]
    bad = [f for f in selected if f.ftype != "I"]
    if bad:
        # Inter-coded frames cannot be decoded standalone (§2.3.1); the
        # administrator must pick a step matching the GOP length.
        raise ProtocolError(
            f"step {step} selects inter-coded frames (first at #{bad[0].number}); "
            "choose a multiple of the GOP length"
        )
    return selected


def _emit(frames: List[Frame]) -> bytes:
    parts = [SEQUENCE_START]
    parts.extend(f.encode() for f in frames)
    return b"".join(parts)


def make_fast_forward(bitstream: bytes, step: int = 15) -> Tuple[bytes, List[int]]:
    """Produce the fast-forward companion stream.

    Returns ``(filtered_bitstream, original_frame_numbers)``: position ``i``
    of the filtered stream shows original frame ``original_frame_numbers[i]``.
    """
    selected = _select(parse_frames(bitstream), step)
    return _emit(selected), [f.number for f in selected]


def make_fast_backward(bitstream: bytes, step: int = 15) -> Tuple[bytes, List[int]]:
    """Produce the fast-backward companion (selected frames, reversed)."""
    selected = list(reversed(_select(parse_frames(bitstream), step)))
    return _emit(selected), [f.number for f in selected]
