"""VAT-style audio framing (the MBone audio tool, §2.1).

VAT carries 8 kHz mu-law audio in fixed 20 ms frames — 160 payload bytes
plus a small header — so the stream is near-constant-rate but still
replayed from a stored schedule (it is typed as variable-rate content
because silence suppression makes real VAT traffic gappy)."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.media.content import SourcePacket

__all__ = ["VatEncoder"]


class VatEncoder:
    """Deterministic VAT-like audio source with silence suppression."""

    FRAME_US = 20_000  # 20 ms of audio per packet
    FRAME_BYTES = 160  # 8 kHz mu-law

    def __init__(self, talk_spurt_s: float = 3.0, silence_s: float = 1.2, seed: int = 23):
        if talk_spurt_s <= 0 or silence_s < 0:
            raise ValueError("bad talk-spurt/silence durations")
        self.talk_spurt_s = talk_spurt_s
        self.silence_s = silence_s
        self._rng = np.random.default_rng(seed)

    def packets(self, duration: float) -> List[SourcePacket]:
        """Audio packets for ``duration`` seconds, with silence gaps."""
        rng = self._rng
        out: List[SourcePacket] = []
        t_us = 0
        end_us = int(duration * 1e6)
        talking = True
        phase_end = int(rng.exponential(self.talk_spurt_s) * 1e6)
        while t_us < end_us:
            if talking:
                payload = rng.integers(0, 256, self.FRAME_BYTES, dtype=np.uint8).tobytes()
                out.append(SourcePacket(t_us, payload))
            t_us += self.FRAME_US
            if t_us >= phase_end:
                talking = not talking
                mean = self.talk_spurt_s if talking else self.silence_s
                phase_end = t_us + max(self.FRAME_US, int(rng.exponential(mean) * 1e6))
        return out
