"""A synthetic MPEG-1-like bitstream with real frame structure.

The MSU treats MPEG as an opaque constant-rate byte stream (§2.3.1: "the
MPEG encoders that we have produce an opaque stream with no framing
information" — from the *server's* point of view).  The offline fast-scan
filter, however, genuinely parses the bitstream, so the generator emits
real structure:

* a sequence header start code at stream start;
* per frame, a picture start code followed by frame number, frame type
  (I/P/B) and payload length, then payload bytes guaranteed free of start
  codes;
* a classic 15-frame GOP (``IBBPBBPBBPBBPBB``), the paper's "intra-encoding
  is used for every N-th frame ... typically fifteen to thirty".

Frame sizes follow the usual I > P > B ratios with deterministic seeded
jitter, normalized per GOP so the stream averages the nominal 1.5 Mbit/s.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ProtocolError
from repro.media.content import SourcePacket
from repro.units import MPEG1_RATE

__all__ = [
    "SEQUENCE_START",
    "PICTURE_START",
    "Frame",
    "MpegEncoder",
    "packetize_cbr",
]

SEQUENCE_START = b"\x00\x00\x01\xb3"
PICTURE_START = b"\x00\x00\x01\x00"
_PIC_HDR = "<IBI"  # frame number, frame type, payload length
_PIC_HDR_SIZE = struct.calcsize(_PIC_HDR)

FRAME_I, FRAME_P, FRAME_B = 1, 2, 3
_TYPE_CODE = {"I": FRAME_I, "P": FRAME_P, "B": FRAME_B}
_CODE_TYPE = {v: k for k, v in _TYPE_CODE.items()}

#: The classic GOP pattern; index 0 is the intra-coded frame.
GOP_PATTERN = "IBBPBBPBBPBBPBB"

#: Relative frame weights (normalized per GOP to hit the nominal rate).
_WEIGHTS = {"I": 3.0, "P": 1.3, "B": 0.55}


@dataclass(frozen=True)
class Frame:
    """One encoded picture."""

    number: int
    ftype: str  # 'I', 'P' or 'B'
    payload: bytes

    def encode(self) -> bytes:
        """Serialize with start code and header."""
        return (
            PICTURE_START
            + struct.pack(_PIC_HDR, self.number, _TYPE_CODE[self.ftype], len(self.payload))
            + self.payload
        )


class MpegEncoder:
    """Deterministic synthetic MPEG-1 encoder."""

    def __init__(
        self,
        rate: float = MPEG1_RATE,
        fps: float = 30.0,
        gop: str = GOP_PATTERN,
        seed: int = 7,
    ):
        if rate <= 0 or fps <= 0:
            raise ValueError("rate and fps must be positive")
        if not gop or gop[0] != "I" or any(c not in "IPB" for c in gop):
            raise ValueError(f"bad GOP pattern {gop!r}")
        self.rate = rate
        self.fps = fps
        self.gop = gop
        self._rng = np.random.default_rng(seed)

    def _payload(self, nbytes: int) -> bytes:
        # Bytes in 0x10..0xFF can never form a 00 00 01 start code.
        raw = self._rng.integers(0x10, 0x100, max(1, nbytes), dtype=np.uint16)
        return raw.astype(np.uint8).tobytes()

    def frames(self, nframes: int) -> List[Frame]:
        """Generate ``nframes`` pictures."""
        gop_bytes = self.rate * len(self.gop) / self.fps
        weight_sum = sum(_WEIGHTS[c] for c in self.gop)
        out = []
        for n in range(nframes):
            ftype = self.gop[n % len(self.gop)]
            nominal = gop_bytes * _WEIGHTS[ftype] / weight_sum
            jitter = float(self._rng.uniform(0.85, 1.15))
            size = max(64, int(nominal * jitter) - _PIC_HDR_SIZE - len(PICTURE_START))
            out.append(Frame(n, ftype, self._payload(size)))
        return out

    def bitstream(self, duration: float) -> bytes:
        """Encode ``duration`` seconds into one opaque byte stream."""
        nframes = int(round(duration * self.fps))
        parts = [SEQUENCE_START]
        parts.extend(f.encode() for f in self.frames(nframes))
        return b"".join(parts)


def packetize_cbr(
    bitstream: bytes, rate: float, packet_size: int
) -> List[SourcePacket]:
    """Slice an opaque stream into fixed-size packets on a CBR schedule.

    This is how the MSU sees MPEG content: fixed-size packets delivered at
    a constant rate, delivery time computed rather than stored (§2.2.1).
    """
    if rate <= 0 or packet_size <= 0:
        raise ProtocolError("rate and packet size must be positive")
    packets = []
    for i in range(0, len(bitstream), packet_size):
        chunk = bitstream[i : i + packet_size]
        delivery_us = int(i / rate * 1e6)
        packets.append(SourcePacket(delivery_us, chunk))
    return packets
