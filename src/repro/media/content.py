"""Content types: the Coordinator's typing of every stored item (§2.1–2.2).

A content type carries *two* consumption rates: the bandwidth rate used
for admission control and the storage rate used for disk-space allocation.
For constant-rate encodings they are equal; for variable-rate encodings
"the bandwidth consumption rate should be closer to the stream's peak rate
and the storage consumption rate should be closer to the average rate."

Types may be composite (e.g. a Seminar = one RTP video + one VAT audio);
playing a composite item creates a *stream group* whose members share VCR
control and are scheduled on the same MSU (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional

from repro.errors import TypeMismatchError
from repro.units import MPEG1_RATE, kbit_per_s

__all__ = ["SourcePacket", "ContentType", "ContentTypeRegistry", "DEFAULT_TYPES"]


class SourcePacket(NamedTuple):
    """One packet produced by a media source, before recording."""

    delivery_us: int  # offset from stream start
    payload: bytes
    kind: int = 0  # 0 data, 1 control (interleaved protocol messages)


@dataclass(frozen=True)
class ContentType:
    """One entry of the Coordinator's content-type table."""

    name: str
    #: Rate used for MSU/disk *bandwidth* admission, bytes/sec.
    bandwidth_rate: float
    #: Rate used for *disk-space* allocation, bytes/sec.
    storage_rate: float
    #: Constant- vs variable-rate encoding (drives schedule storage).
    variable: bool = False
    #: MSU protocol-extension module handling the wire format (§2.3.2).
    protocol: str = "raw"
    #: Names of component types; non-empty means this type is composite.
    components: tuple = ()

    @property
    def is_composite(self) -> bool:
        """True for stream-group types like Seminar."""
        return bool(self.components)


class ContentTypeRegistry:
    """The Coordinator's internal content-type database.

    Clients may not define new types without an administrator (§2.1):
    :meth:`define` is the administrative entry point.
    """

    def __init__(self, types: Optional[List[ContentType]] = None):
        self._types: Dict[str, ContentType] = {}
        for ctype in types or []:
            self.define(ctype)

    def define(self, ctype: ContentType) -> None:
        """Administratively add (or replace) a type definition."""
        for comp in ctype.components:
            if comp not in self._types:
                raise TypeMismatchError(
                    f"composite {ctype.name!r} references unknown type {comp!r}"
                )
            if self._types[comp].is_composite:
                raise TypeMismatchError(
                    f"composite {ctype.name!r} may only contain atomic types"
                )
        self._types[ctype.name] = ctype

    def get(self, name: str) -> ContentType:
        """Look up a type; raises for unknown names."""
        try:
            return self._types[name]
        except KeyError:
            raise TypeMismatchError(f"unknown content type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def atomic_components(self, name: str) -> List[ContentType]:
        """The atomic subtypes a display port / stream group needs."""
        ctype = self.get(name)
        if not ctype.is_composite:
            return [ctype]
        return [self.get(c) for c in ctype.components]

    def names(self) -> List[str]:
        """All defined type names, sorted."""
        return sorted(self._types)


def _default_types() -> List[ContentType]:
    mpeg = ContentType(
        "mpeg1", bandwidth_rate=MPEG1_RATE, storage_rate=MPEG1_RATE,
        variable=False, protocol="raw",
    )
    # NV video (§3.2.2): averages 635-877 kbit/s, 50 ms peaks up to
    # 5.4 Mbit/s.  Bandwidth admission uses a near-peak figure, storage the
    # average, per §2.2.
    rtp_video = ContentType(
        "rtp-video", bandwidth_rate=kbit_per_s(2000.0),
        storage_rate=kbit_per_s(750.0), variable=True, protocol="rtp",
    )
    vat_audio = ContentType(
        "vat-audio", bandwidth_rate=kbit_per_s(78.0),
        storage_rate=kbit_per_s(71.0), variable=True, protocol="vat",
    )
    seminar = ContentType(
        "seminar", bandwidth_rate=0.0, storage_rate=0.0,
        variable=True, components=("rtp-video", "vat-audio"),
    )
    return [mpeg, rtp_video, vat_audio, seminar]


#: The registry shipped with a fresh Coordinator (administrators add more).
DEFAULT_TYPES = _default_types()
