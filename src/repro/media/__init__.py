"""Media substrate: encodings, packetizers and content typing.

The paper's MSU is deliberately encoding-agnostic — it ships opaque bytes
on a delivery schedule — but the evaluation needs real workloads:

* :mod:`repro.media.mpeg` — a synthetic MPEG-1-like bitstream with genuine
  GOP structure and picture start codes (the offline fast-scan filter of
  §2.3.1 parses these for real).
* :mod:`repro.media.nv` — NV-like variable-rate video (§3.2.2): ~1 KiB
  packets in back-to-back frame bursts, calibrated to the paper's 635–877
  kbit/s averages and 2.0–5.4 Mbit/s 50 ms-window peaks.
* :mod:`repro.media.vat` — VAT-style constant-rate audio framing.
* :mod:`repro.media.content` — content types with separate bandwidth and
  storage consumption rates (§2.2), plus composite types (Seminar).
* :mod:`repro.media.filtering` — the offline fast-forward/backward filter.
"""

from repro.media.content import (
    DEFAULT_TYPES,
    ContentType,
    ContentTypeRegistry,
    SourcePacket,
)
from repro.media.filtering import make_fast_backward, make_fast_forward, parse_frames
from repro.media.mpeg import Frame, MpegEncoder, packetize_cbr
from repro.media.nv import NvEncoder
from repro.media.vat import VatEncoder

__all__ = [
    "ContentType",
    "ContentTypeRegistry",
    "DEFAULT_TYPES",
    "Frame",
    "MpegEncoder",
    "NvEncoder",
    "SourcePacket",
    "VatEncoder",
    "make_fast_backward",
    "make_fast_forward",
    "packetize_cbr",
    "parse_frames",
]
