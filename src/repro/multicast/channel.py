"""Coordinator-side multicast channel management.

The :class:`ChannelManager` turns N play requests for the same title
into one disk stream.  Two mechanisms compose (Jayarekha & Nair;
Viennot et al.):

* **Batching** — requests for a title arriving within ``batch_window``
  are parked, then served together by a single multicast channel (one
  duty-cycle slot, one paced schedule, N fan-out destinations).
* **Patching** — a request arriving while a channel is already playing,
  within ``patch_horizon`` of its start, joins the channel immediately
  and receives the missed opening pages as a short unicast *patch*
  (served from the pinned prefix cache where possible).  When the patch
  drains the viewer has merged onto the channel and the patch charge is
  refunded.

Admission charges one disk slot plus one delivery flow per *channel*
(not per viewer) and a bounded, refundable charge per patch; the
:class:`~repro.multicast.ledger.AdmissionLedger` mirrors every grant so
tests can assert the books balance to zero once all channels drain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.admission import Allocation, allocation_state
from repro.core.database import ContentEntry
from repro.multicast.ledger import AdmissionLedger
from repro.net import messages as m
from repro.net.network import MULTICAST_PREFIX

__all__ = ["MulticastConfig", "ChannelManager", "ChannelRecord", "PatchJoin"]


@dataclass(frozen=True)
class MulticastConfig:
    """Tuning for batched channels and patching streams.

    ``batch_window`` must stay well under the viewers' queue patience:
    a batched client hears nothing until the window fires.  The
    ``patch_horizon`` bounds every patch — a viewer arriving later than
    this after a channel started gets a fresh channel instead.
    """

    batch_window: float = 0.5
    patch_horizon: float = 6.0
    #: Safety margin added to each patch so it overlaps the channel's
    #: position at join time (duplicates are cheaper than gaps).
    patch_margin_pages: int = 1


@dataclass
class PatchJoin:
    """One late join, kept for auditing patch bounds."""

    channel_id: int
    group_id: int
    offset_us: int
    patch_pages: int
    patch_us: int
    cache_covered: bool


@dataclass
class ChannelRecord:
    """Coordinator-side bookkeeping for one multicast channel."""

    channel_id: int
    content_name: str
    msu_name: str
    disk_id: str
    group_id: int     # the channel stream's own MSU-side group
    stream_id: int
    rate: float
    started_at: float
    duration_us: int
    blocks: int
    allocation: Allocation
    mcast_host: str
    #: viewer group_id -> stream_id for attached subscribers.
    subscribers: Dict[int, int] = field(default_factory=dict)
    peak_subscribers: int = 0
    viewers_total: int = 0
    released: bool = False

    def page_us(self) -> float:
        """Approximate media time per page (uniform-page model)."""
        if self.blocks <= 0:
            return 0.0
        return self.duration_us / self.blocks


@dataclass
class _BatchedRequest:
    message: m.PlayRequest
    channel: object       # the client's ControlChannel (reply path)
    session_id: int


@dataclass
class _Batch:
    content_name: str
    requests: List[_BatchedRequest] = field(default_factory=list)


class ChannelManager:
    """Batches, channels, patches and their admission bookkeeping."""

    def __init__(self, coordinator, config: Optional[MulticastConfig] = None):
        self.coord = coordinator
        self.sim = coordinator.sim
        self.config = config or MulticastConfig()
        self.ledger = AdmissionLedger()
        #: channel_id -> live channel record.
        self.channels: Dict[int, ChannelRecord] = {}
        #: channel-stream group_id -> channel_id (owned groups).
        self._channel_groups: Dict[int, int] = {}
        #: viewer group_id -> channel_id (attached subscribers).
        self._subscriber_groups: Dict[int, int] = {}
        self._batches: Dict[str, _Batch] = {}
        self._next_channel = 1
        #: Every patch join ever granted (tests audit the horizon bound).
        self.patch_joins: List[PatchJoin] = []
        self.channels_created = 0
        self.viewers_joined = 0
        self.batched_joins = 0
        self.patched_joins = 0
        self.merges = 0
        self.downgrades = 0
        self.fallbacks = 0  # requests parked when no channel was placeable
        self.edge_patched = 0  # patch joins served by an edge proxy
        self.edge_spliced = 0  # unicast prefix splices when no channel fit

    # -- applicability -----------------------------------------------------

    def handles(self, entry: ContentEntry) -> bool:
        """Multicast serves atomic, stored titles; composites stay unicast."""
        return not entry.components and bool(entry.msu_name)

    # -- request entry point ----------------------------------------------

    def request_play(
        self, msg: m.PlayRequest, channel, session, entry: ContentEntry, port
    ) -> Generator:
        """Serve one play request via a channel; yields like ``_play``.

        Returns a ``StreamScheduled`` reply (joined an in-flight channel
        as a patcher) or ``None`` (parked in a batch — the client hears
        nothing until the window fires, exactly like the scheduling
        queue).
        """
        ctype = self.coord.types.get(entry.type_name)
        record = self._joinable_channel(entry, session.client_host)
        if record is not None:
            reply = yield from self._join_in_flight(
                record, msg, session, entry, ctype, port
            )
            if reply is not None:
                return reply
            # Patch unplaceable: fall through and batch for a new channel.
        batch = self._batches.get(entry.name)
        if batch is None:
            batch = _Batch(entry.name)
            self._batches[entry.name] = batch
            self.sim.process(self._batch_timer(batch), name="mcast.batch")
        batch.requests.append(_BatchedRequest(msg, channel, msg.session_id))
        return None

    def _joinable_channel(
        self, entry: ContentEntry, client_host: Optional[str] = None
    ) -> Optional[ChannelRecord]:
        """The youngest in-flight channel still inside the patch horizon.

        When the client's assigned edge pins this title's prefix, the
        horizon stretches to the prefix's media time: the whole catch-up
        window then comes from edge memory, so a much older channel is
        still joinable at zero MSU cost — the mechanism that lets one
        disk stream carry an entire Zipf head of viewers.
        """
        horizon_us = self.config.patch_horizon * 1e6
        edge_pages = self._edge_prefix_pages(entry, client_host)
        best = None
        for record in self.channels.values():
            if record.content_name != entry.name or record.released:
                continue
            if record.page_us() <= 0.0:
                continue  # no duration metadata: patches cannot be bounded
            allowed_us = horizon_us
            if edge_pages > self.config.patch_margin_pages:
                allowed_us = max(
                    allowed_us,
                    (edge_pages - self.config.patch_margin_pages)
                    * record.page_us(),
                )
            offset_us = (self.sim.now - record.started_at) * 1e6
            if offset_us >= record.duration_us or offset_us > allowed_us:
                continue
            if best is None or record.started_at > best.started_at:
                best = record
        return best

    def _edge_prefix_pages(
        self, entry: ContentEntry, client_host: Optional[str]
    ) -> int:
        """Pages of this title the client's assigned edge pins (0 = none)."""
        placement = getattr(self.coord, "placement", None)
        if placement is None or client_host is None:
            return 0
        view = placement.edge_for(client_host)
        if view is None:
            return 0
        return view.pinned.get(entry.name, 0)

    # -- patching (join an in-flight channel) ------------------------------

    def _join_in_flight(
        self, record: ChannelRecord, msg, session, entry, ctype, port
    ) -> Generator:
        offset_us = int((self.sim.now - record.started_at) * 1e6)
        patch_pages = 0
        if offset_us > 0:
            patch_pages = min(
                record.blocks,
                math.ceil(offset_us / record.page_us())
                + self.config.patch_margin_pages,
            )
        alloc = None
        cache_covered = False
        edge_name = None
        if patch_pages > 0:
            placement = getattr(self.coord, "placement", None)
            if placement is not None:
                edge_name = placement.cover_patch(
                    entry, patch_pages, ctype.bandwidth_rate,
                    session.client_host,
                )
                if edge_name is not None:
                    alloc = self.coord.admission.place_edge(
                        entry, ctype, edge_name
                    )
                    if alloc is None:
                        edge_name = None
            if edge_name is None:
                if offset_us > self.config.patch_horizon * 1e6:
                    # Joinable only because of the edge's extended
                    # horizon; without its coverage an MSU patch this
                    # long would break the patch bound — batch instead.
                    return None
                prefix_covered = (
                    entry.prefix_pinned
                    and patch_pages <= self.coord.prefix_pin_pages
                )
                alloc = self.coord.admission.place_patch(
                    entry, ctype, record.msu_name, record.disk_id,
                    prefix_covered=prefix_covered,
                )
                if alloc is None:
                    return None  # no room for the patch: caller batches instead
                cache_covered = alloc.cache_covered
        group_id, stream_id = self._attach_subscriber(
            record, msg, session, entry, port,
            alloc if edge_name is None else None,
        )
        self.patched_joins += 1
        patch_us = int(patch_pages * record.page_us())
        if edge_name is None:
            self.patch_joins.append(
                PatchJoin(
                    record.channel_id, group_id, offset_us,
                    patch_pages, patch_us, cache_covered,
                )
            )
        if alloc is not None and edge_name is None:
            self.ledger.charge_patch(
                record.channel_id, group_id, alloc.bandwidth, cache_covered
            )
            self.coord._journal(
                "mcast-patch",
                {
                    "channel_id": record.channel_id,
                    "group_id": group_id,
                    "rate": alloc.bandwidth,
                    "cache_covered": cache_covered,
                },
            )
        if edge_name is not None:
            # An edge serves the whole catch-up window from its pinned
            # prefix: no MSU patch stream, no disk slot, no ledger
            # charge — the serve is registered placement-side and its
            # uplink grant is refunded on EdgeServeDone.
            self.edge_patched += 1
            self.coord.placement.begin_serve(
                edge_name, group_id, stream_id, entry,
                0, patch_pages, ctype.bandwidth_rate, "patch",
                tuple(port.address), alloc,
            )
        yield from self.coord.machine.cpu.execute(self.coord.SCHEDULE_CPU)
        self._send_subscribe(
            record, group_id, stream_id, session, port,
            patch_pages if edge_name is None else 0, cache_covered,
        )
        self.coord._trace(
            "mcast-patch", entry.name,
            f"channel={record.channel_id} group={group_id} "
            f"pages={patch_pages} offset_us={offset_us} "
            f"edge={edge_name or '-'}",
        )
        return m.StreamScheduled(group_id, record.msu_name)

    # -- batching (new channels) -------------------------------------------

    def _batch_timer(self, batch: _Batch) -> Generator:
        yield self.sim.timeout(self.config.batch_window)
        yield from self._fire_batch(batch)

    def _fire_batch(self, batch: _Batch) -> Generator:
        from repro.core.coordinator import _QueuedRequest  # cycle: late import
        from repro.failover import play_priority

        if self.coord.dead:
            return
        self._batches.pop(batch.content_name, None)
        entry = self.coord.db.contents.get(batch.content_name)
        live = [
            req for req in batch.requests
            if self.coord.sessions.lookup(req.session_id) is not None
        ]
        if not live:
            return
        if entry is None:  # deleted while the batch waited
            for req in live:
                self._reply(req, m.RequestFailed(
                    f"unknown content {batch.content_name!r}"
                ))
            return
        ctype = self.coord.types.get(entry.type_name)
        alloc = self.coord.admission.place_channel(entry, ctype)
        if alloc is None:
            # No disk slot for a new channel.  Before parking, try an
            # edge prefix splice per viewer: an edge pinning this title's
            # prefix can carry the opening pages while a (possibly
            # cache-covered) unicast tail stream starts at the splice —
            # the lane that previously engaged only with multicast off.
            parked = []
            for req in live:
                served = yield from self._edge_splice_play(req, entry, ctype)
                if not served:
                    parked.append(req)
            for req in parked:
                self.fallbacks += 1
                self.coord._enqueue(
                    _QueuedRequest(
                        "play", req.session_id, req.message, req.channel,
                        priority=play_priority(self.coord.db, entry),
                    )
                )
            if parked:
                self.coord._trace(
                    "mcast-queued", entry.name,
                    f"viewers={len(parked)} no channel slot"
                )
            return
        record = self._open_channel(entry, ctype, alloc)
        for req in live:
            session = self.coord.sessions.lookup(req.session_id)
            try:
                port = session.port(req.message.port_name)
            except Exception as err:
                self._reply(req, m.RequestFailed(str(err)))
                continue
            group_id, stream_id = self._attach_subscriber(
                record, req.message, session, entry, port, None
            )
            self.batched_joins += 1
            yield from self.coord.machine.cpu.execute(self.coord.SCHEDULE_CPU)
            self._send_subscribe(
                record, group_id, stream_id, session, port, 0, False
            )
            self._reply(req, m.StreamScheduled(group_id, record.msu_name))
        self.coord.db.note_played(entry.name, len(live))

    def _edge_splice_play(self, req, entry, ctype) -> Generator:
        """Unicast fallback with the edge carrying the prefix.

        Returns True when the viewer was scheduled: the assigned edge
        serves pages [0, splice) while a plain unicast tail stream (the
        same shape the no-multicast path builds) starts at the splice.
        Any piece missing — no placement tier, no prefix plan, no tail
        slot, no uplink grant — returns False and the caller parks the
        request as before.
        """
        from repro.core.coordinator import GroupRecord  # cycle: late import
        from repro.failover import StreamMeta

        coord = self.coord
        if coord.placement is None or entry.components:
            return False
        session = coord.sessions.lookup(req.session_id)
        if session is None:
            return False
        try:
            port = session.port(req.message.port_name)
        except Exception:
            return False
        plan = coord.placement.plan_prefix(entry, ctype, session.client_host)
        if plan is None:
            return False
        tail_alloc = coord.admission.place_read(entry, ctype)
        if tail_alloc is None:
            return False
        edge_alloc = coord.admission.place_edge(entry, ctype, plan[0])
        if edge_alloc is None:
            coord.admission.release(tail_alloc)
            return False
        edge_name, splice, kind = plan
        coord.db.note_played(entry.name)
        group = GroupRecord(
            coord.allocate_group_id(), req.session_id, tail_alloc.msu_name
        )
        stream_id = coord.allocate_stream_id()
        group.allocations[stream_id] = tail_alloc
        group.streams[stream_id] = StreamMeta(
            entry.name, entry.type_name, tuple(port.address)
        )
        yield from coord.machine.cpu.execute(coord.SCHEDULE_CPU)
        msu_channel = coord._msu_channels[tail_alloc.msu_name]
        msu_channel.send(
            coord.name,
            m.ScheduleRead(
                group.group_id, stream_id, entry.name, tail_alloc.disk_id,
                ctype.protocol, ctype.bandwidth_rate, ctype.variable,
                tuple(port.address), session.client_host, group_size=1,
                cached=tail_alloc.cache_covered, start_page=splice,
            ),
            nbytes=m.WIRE_BYTES,
        )
        coord.register_group(group, session)
        coord.placement.begin_serve(
            edge_name, group.group_id, stream_id, entry,
            0, splice, ctype.bandwidth_rate, kind,
            tuple(port.address), edge_alloc,
        )
        self.edge_spliced += 1
        coord._trace(
            "mcast-edge-splice", entry.name,
            f"group={group.group_id} edge={edge_name} splice={splice}"
        )
        self._reply(req, m.StreamScheduled(group.group_id, group.msu_name))
        return True

    def _open_channel(
        self, entry: ContentEntry, ctype, alloc: Allocation
    ) -> ChannelRecord:
        channel_id = self._next_channel
        self._next_channel += 1
        group_id = self.coord.allocate_group_id()
        stream_id = self.coord.allocate_stream_id()
        mcast_host = f"{MULTICAST_PREFIX}{alloc.msu_name}:ch{channel_id}"
        record = ChannelRecord(
            channel_id, entry.name, alloc.msu_name, alloc.disk_id,
            group_id, stream_id, ctype.bandwidth_rate, self.sim.now,
            entry.duration_us, entry.blocks, alloc, mcast_host,
        )
        self.channels[channel_id] = record
        self._channel_groups[group_id] = channel_id
        self.channels_created += 1
        self.ledger.open_channel(channel_id, entry.name, alloc.bandwidth)
        from repro.recovery.snapshot import channel_record_state

        self.coord._journal(
            "mcast-open", {"channel": channel_record_state(record)}
        )
        msu_channel = self.coord._msu_channels[alloc.msu_name]
        msu_channel.send(
            self.coord.name,
            m.ChannelCreate(
                channel_id, group_id, stream_id, entry.name, alloc.disk_id,
                ctype.protocol, ctype.bandwidth_rate, ctype.variable,
                (mcast_host, 1),
            ),
            nbytes=m.WIRE_BYTES,
        )
        self.coord._trace("mcast-channel", entry.name,
                          f"channel={channel_id} msu={alloc.msu_name}")
        return record

    # -- subscriber plumbing ----------------------------------------------

    def _attach_subscriber(
        self, record: ChannelRecord, msg, session, entry, port,
        patch_alloc: Optional[Allocation],
    ) -> Tuple[int, int]:
        from repro.core.coordinator import GroupRecord  # cycle: late import
        from repro.failover import StreamMeta

        group_id = self.coord.allocate_group_id()
        stream_id = self.coord.allocate_stream_id()
        group = GroupRecord(group_id, msg.session_id, record.msu_name)
        if patch_alloc is not None:
            group.allocations[stream_id] = patch_alloc
        group.streams[stream_id] = StreamMeta(
            entry.name, entry.type_name, tuple(port.address)
        )
        self.coord.register_group(group, session)
        record.subscribers[group_id] = stream_id
        record.viewers_total += 1
        record.peak_subscribers = max(
            record.peak_subscribers, len(record.subscribers)
        )
        self._subscriber_groups[group_id] = record.channel_id
        self.ledger.note_subscriber(record.channel_id)
        self.viewers_joined += 1
        self.coord._journal(
            "mcast-subscribe",
            {
                "channel_id": record.channel_id,
                "group_id": group_id,
                "stream_id": stream_id,
            },
        )
        return group_id, stream_id

    def _send_subscribe(
        self, record: ChannelRecord, group_id: int, stream_id: int,
        session, port, patch_pages: int, patch_cached: bool,
    ) -> None:
        msu_channel = self.coord._msu_channels.get(record.msu_name)
        if msu_channel is None:
            return
        msu_channel.send(
            self.coord.name,
            m.ChannelSubscribe(
                record.channel_id, group_id, stream_id,
                session.client_host, tuple(port.address),
                patch_end_page=patch_pages, patch_cached=patch_cached,
            ),
            nbytes=m.WIRE_BYTES,
        )

    def _reply(self, req: _BatchedRequest, reply) -> None:
        import dataclasses

        if req.channel is None:
            return
        request_id = getattr(req.message, "request_id", 0)
        reply = dataclasses.replace(reply, request_id=request_id)
        req.channel.send(self.coord.name, reply, nbytes=m.WIRE_BYTES)

    # -- MSU notifications -------------------------------------------------

    def patch_drained(self, msg: m.PatchDrained) -> None:
        """A joiner merged onto its channel: refund the patch charge."""
        self.coord._journal(
            "mcast-merge",
            {
                "channel_id": msg.channel_id,
                "group_id": msg.group_id,
                "stream_id": msg.stream_id,
            },
        )
        group = self.coord.groups.get(msg.group_id)
        if group is not None:
            alloc = group.allocations.pop(msg.stream_id, None)
            if alloc is not None:
                self.coord.admission.release(alloc)
        if self.ledger.refund_patch(msg.channel_id, msg.group_id):
            self.merges += 1
            self.coord._trace("mcast-merge", f"group={msg.group_id}",
                              f"channel={msg.channel_id}")

    def downgrade(self, msg: m.ChannelDowngrade) -> None:
        """A subscriber left its channel for a private unicast stream.

        The MSU already runs the stream; admission must follow: refund
        any outstanding patch, detach the subscriber, and charge a full
        unicast slot on the channel's disk (deliberately without a
        feasibility check — the viewer is already being served).
        """
        record = self.channels.get(msg.channel_id)
        group = self.coord.groups.get(msg.group_id)
        if record is None or group is None:
            return
        alloc = group.allocations.pop(msg.stream_id, None)
        if alloc is not None:
            self.coord.admission.release(alloc)
        self.ledger.refund_patch(msg.channel_id, msg.group_id)
        record.subscribers.pop(msg.group_id, None)
        self._subscriber_groups.pop(msg.group_id, None)
        entry = self.coord.db.contents.get(record.content_name)
        new_alloc = self.coord.admission.charge_direct(
            entry, record.rate, record.msu_name, record.disk_id
        )
        group.allocations[msg.stream_id] = new_alloc
        self.coord._journal(
            "mcast-downgrade",
            {
                "channel_id": msg.channel_id,
                "group_id": msg.group_id,
                "stream_id": msg.stream_id,
                "alloc": allocation_state(new_alloc),
            },
        )
        self.downgrades += 1
        self.coord._trace("mcast-downgrade", f"group={msg.group_id}",
                          f"channel={msg.channel_id}")

    def handle_terminated(self, msg: m.StreamTerminated) -> bool:
        """Route channel/subscriber terminations.

        Returns True when the message was a channel stream's own
        termination (fully handled here); False lets the Coordinator's
        default per-group path run (subscriber groups are ordinary
        groups, their bookkeeping mostly lives there).
        """
        channel_id = self._channel_groups.pop(msg.group_id, None)
        if channel_id is not None:
            self._close_channel(channel_id)
            return True
        channel_id = self._subscriber_groups.pop(msg.group_id, None)
        if channel_id is not None:
            record = self.channels.get(channel_id)
            if record is not None:
                record.subscribers.pop(msg.group_id, None)
            # The default path releases the group's allocations; mirror
            # any still-outstanding patch charge in the ledger.
            self.ledger.refund_patch(channel_id, msg.group_id)
            self.coord._journal(
                "mcast-detach",
                {"channel_id": channel_id, "group_id": msg.group_id},
            )
        return False

    def _close_channel(self, channel_id: int) -> None:
        record = self.channels.pop(channel_id, None)
        if record is None:
            return
        if not record.released:
            self.coord.admission.release(record.allocation)
            record.released = True
        for group_id in list(record.subscribers):
            self._subscriber_groups.pop(group_id, None)
        self.ledger.close_channel(channel_id)
        self.coord._journal(
            "mcast-close", {"channel_id": channel_id, "forced": False}
        )
        self.coord._trace("mcast-close", record.content_name,
                          f"channel={channel_id} viewers={record.viewers_total}")

    def msu_failed(self, msu_name: str) -> None:
        """The MSU died; its channels died with it.

        The Coordinator has already zeroed the MSU's admission books
        (``release_msu``), so channel/patch charges must *not* be
        released again — the ledger force-closes instead.  Subscriber
        groups flow through the ordinary failover path and resume as
        plain unicast streams on a replica (single ``place_read``
        charge: no double billing).
        """
        for channel_id, record in list(self.channels.items()):
            if record.msu_name != msu_name:
                continue
            record.released = True  # books already zeroed wholesale
            del self.channels[channel_id]
            self._channel_groups.pop(record.group_id, None)
            for group_id in list(record.subscribers):
                self._subscriber_groups.pop(group_id, None)
            self.ledger.close_channel(channel_id, forced=True)
            self.coord._journal(
                "mcast-close", {"channel_id": channel_id, "forced": True}
            )

    # -- statistics --------------------------------------------------------

    def occupancy(self) -> float:
        """Mean viewers per channel over all channels ever created."""
        if self.channels_created == 0:
            return 0.0
        return self.viewers_joined / self.channels_created

    def patch_ratio(self) -> float:
        """Fraction of joins that needed a patch stream."""
        if self.viewers_joined == 0:
            return 0.0
        return self.patched_joins / self.viewers_joined

    def slots_saved(self) -> int:
        """Disk slots multicast avoided: every viewer beyond the first
        per channel would have cost a unicast duty-cycle slot."""
        return max(0, self.viewers_joined - self.channels_created)
