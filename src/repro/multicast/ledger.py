"""Merge-aware admission ledger for multicast channels.

Every multicast-side grant the Coordinator hands out is mirrored here so
the books can be audited: a channel owes one disk slot plus one delivery
flow for its whole life; a late joiner owes a bounded patch until the
patch drains and the viewer merges onto the channel (refund), leaves for
unicast (refund — the unicast slot is charged separately), or quits
(refund).  After every channel has drained, :meth:`AdmissionLedger.
outstanding` must be zero — the invariant E18's tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["AdmissionLedger", "ChannelLedger"]


@dataclass
class ChannelLedger:
    """Open charges and lifetime counters for one channel."""

    channel_id: int
    content_name: str
    rate: float
    #: Bandwidth currently charged for the channel stream itself.
    channel_charge: float = 0.0
    #: (viewer group_id) -> bandwidth charged for an undrained patch.
    patch_charges: Dict[int, float] = field(default_factory=dict)
    subscribers_total: int = 0
    patches_charged: int = 0
    patches_refunded: int = 0
    patches_cache_covered: int = 0
    closed: bool = False
    #: True when the MSU died and the admission books were zeroed
    #: wholesale (release_msu) rather than charge by charge.
    forced: bool = False

    def outstanding(self) -> float:
        return self.channel_charge + sum(self.patch_charges.values())


class AdmissionLedger:
    """Audit trail of multicast admission charges and refunds."""

    def __init__(self) -> None:
        self.channels: Dict[int, ChannelLedger] = {}
        self.channels_opened = 0
        self.channels_closed = 0
        self.patches_charged = 0
        self.patches_refunded = 0
        self.patches_cache_covered = 0

    # -- charges -----------------------------------------------------------

    def open_channel(self, channel_id: int, content_name: str, rate: float) -> None:
        self.channels[channel_id] = ChannelLedger(
            channel_id, content_name, rate, channel_charge=rate
        )
        self.channels_opened += 1

    def note_subscriber(self, channel_id: int) -> None:
        entry = self.channels.get(channel_id)
        if entry is not None:
            entry.subscribers_total += 1

    def charge_patch(
        self, channel_id: int, group_id: int, rate: float, cache_covered: bool
    ) -> None:
        entry = self.channels.get(channel_id)
        if entry is None:
            return
        entry.patch_charges[group_id] = rate
        entry.patches_charged += 1
        self.patches_charged += 1
        if cache_covered:
            entry.patches_cache_covered += 1
            self.patches_cache_covered += 1

    # -- refunds -----------------------------------------------------------

    def refund_patch(self, channel_id: int, group_id: int) -> bool:
        """Drop a patch charge; False when none was outstanding."""
        entry = self.channels.get(channel_id)
        if entry is None or group_id not in entry.patch_charges:
            return False
        del entry.patch_charges[group_id]
        entry.patches_refunded += 1
        self.patches_refunded += 1
        return True

    def close_channel(self, channel_id: int, forced: bool = False) -> None:
        """The channel drained (or its MSU died): zero its charges.

        Any patch still on the books refunds implicitly — with the
        channel gone, the MSU has torn the patch streams down too.
        """
        entry = self.channels.get(channel_id)
        if entry is None or entry.closed:
            return
        for group_id in list(entry.patch_charges):
            self.refund_patch(channel_id, group_id)
        entry.channel_charge = 0.0
        entry.closed = True
        entry.forced = forced
        self.channels_closed += 1

    # -- audit -------------------------------------------------------------

    def outstanding(self) -> float:
        """Total bandwidth currently charged across every channel."""
        return sum(entry.outstanding() for entry in self.channels.values())

    def balanced(self) -> bool:
        """True when every channel is closed with nothing outstanding."""
        return self.outstanding() == 0.0 and all(
            entry.closed for entry in self.channels.values()
        )

    def audit(self) -> list:
        """Ledger anomalies that must never occur, as strings.

        Valid at any instant: a closed channel keeps nothing on its
        books, charges never go negative, and refunds never outnumber
        charges.
        """
        problems = []
        for entry in self.channels.values():
            if entry.closed and entry.outstanding() != 0.0:
                problems.append(
                    f"channel {entry.channel_id}: closed with "
                    f"{entry.outstanding()} outstanding"
                )
            if entry.channel_charge < 0.0:
                problems.append(
                    f"channel {entry.channel_id}: negative channel charge "
                    f"{entry.channel_charge}"
                )
            for group_id, rate in entry.patch_charges.items():
                if rate < 0.0:
                    problems.append(
                        f"channel {entry.channel_id}: negative patch charge "
                        f"{rate} for group {group_id}"
                    )
            if entry.patches_refunded > entry.patches_charged:
                problems.append(
                    f"channel {entry.channel_id}: {entry.patches_refunded} "
                    f"refunds exceed {entry.patches_charged} charges"
                )
        if self.patches_refunded > self.patches_charged:
            problems.append(
                f"ledger: {self.patches_refunded} refunds exceed "
                f"{self.patches_charged} charges"
            )
        return problems

    def summary(self) -> Tuple[int, int, int, int]:
        return (
            self.channels_opened,
            self.channels_closed,
            self.patches_charged,
            self.patches_refunded,
        )
