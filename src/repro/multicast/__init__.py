"""Multicast delivery: batched channels, patching streams, merge-aware
admission (extension).

Calliope as published charges one duty-cycle slot and one paced unicast
flow per viewer (§2.2, §3.2), so N viewers of one hot title cost N disk
transfers even when they watch the same pages seconds apart.  This
subsystem implements the classic VoD answer: the Coordinator batches
near-simultaneous requests onto one *multicast channel* and lets late
joiners inside a *patching horizon* merge onto an in-flight channel via
a short, refundable unicast patch (Jayarekha & Nair; Viennot et al.).

Off by default — ``ClusterConfig(multicast=MulticastConfig())`` enables
it; see DESIGN.md §8 and experiment E18.
"""

from repro.multicast.channel import (
    ChannelManager,
    ChannelRecord,
    MulticastConfig,
    PatchJoin,
)
from repro.multicast.ledger import AdmissionLedger, ChannelLedger

__all__ = [
    "AdmissionLedger",
    "ChannelLedger",
    "ChannelManager",
    "ChannelRecord",
    "MulticastConfig",
    "PatchJoin",
]
