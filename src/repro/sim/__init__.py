"""Deterministic discrete-event simulation kernel.

This package is the substrate on which every Calliope component runs.  It
provides a small, SimPy-like coroutine scheduler:

* :class:`~repro.sim.engine.Simulator` — the event loop and clock.
* :class:`~repro.sim.engine.Process` — a generator-based simulated process.
* :class:`~repro.sim.engine.Event` / :class:`~repro.sim.engine.Timeout` —
  waitable primitives a process may ``yield``.
* :class:`~repro.sim.resources.Resource` / :class:`~repro.sim.resources.Store`
  — FIFO contention primitives used to model buses, CPUs and queues.

The kernel is fully deterministic: simultaneous events fire in the order in
which they were scheduled (ties break on a monotone sequence number), and no
wall-clock time or global randomness is consulted anywhere.
"""

from repro.sim.engine import (
    DEFAULT_ENGINE,
    ENGINES,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.resources import PriorityResource, Resource, Store
from repro.sim.wheel import HeapScheduler, TimerWheel

__all__ = [
    "AllOf",
    "AnyOf",
    "DEFAULT_ENGINE",
    "ENGINES",
    "Event",
    "HeapScheduler",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "Simulator",
    "Store",
    "TimerWheel",
    "Timeout",
]
