"""Event loop, events and processes for the simulation kernel.

The design follows the classic coroutine DES pattern: a *process* is a Python
generator that ``yield``\\ s waitables (events).  The simulator resumes the
generator when the waited-on event fires, sending the event's value back into
the generator (or throwing its exception).

Example::

    sim = Simulator()

    def worker(sim, results):
        yield sim.timeout(1.5)
        results.append(sim.now)

    results = []
    sim.process(worker(sim, results))
    sim.run()
    assert results == [1.5]

Two interchangeable schedulers sit behind :meth:`Simulator.schedule`:

* ``heap`` — the reference single-binary-heap queue (the seed engine).
* ``wheel`` — a bucketed timer wheel (:mod:`repro.sim.wheel`) that turns
  most scheduling into O(1) list appends for the dense near-future band.

Both pop in exactly global ``(time, seq)`` order, so every run is
bit-for-bit identical under either engine; ``tests/test_engine_equivalence.py``
holds them to that with golden traces and a Hypothesis heap oracle.  Select
with ``Simulator(engine=...)`` or the ``CALLIOPE_ENGINE`` environment
variable (default: ``wheel``).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.wheel import HeapScheduler, TimerWheel

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "Simulator",
    "DEFAULT_ENGINE",
    "ENGINES",
]

#: The scheduler used when neither the constructor nor ``CALLIOPE_ENGINE``
#: says otherwise.  The wheel became the default once the equivalence suite
#: proved it schedule-identical to the reference heap.
DEFAULT_ENGINE = "wheel"

ENGINES = ("heap", "wheel")

#: Fired pooled timeouts kept for reuse, per simulator.
_TIMEOUT_POOL_MAX = 256


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupt ``cause`` (an arbitrary object) is available as
    ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot waitable.

    An event starts *pending*; it is *triggered* by :meth:`succeed` or
    :meth:`fail` and then fires all registered callbacks at the current
    simulation time (in scheduling order).  Processes wait on an event by
    ``yield``\\ ing it.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered", "_late", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._late: Optional[list] = None
        self.name = name

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value (or raises the failure exception)."""
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise RuntimeError(f"event {self!r} already triggered")
        self._triggered = True
        self._value = value
        self.sim._post(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._triggered:
            raise RuntimeError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        self.sim._post(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event fires.

        If the event has already fired, the callback runs at the current
        simulation time.  Late registrations made at the same instant are
        delivered together, in registration order, in a single queue slot —
        the same batch semantics a pending event's callbacks get — so an
        interleaved ``schedule(0.0, ...)`` cannot split the event's value
        delivery.  (The seed engine scheduled each late callback as its own
        queue entry, which made delivery order depend on incidental
        sequence-number interleaving.)
        """
        if self.callbacks is None:
            late = self._late
            if late is None:
                self._late = [fn]
                self.sim.schedule(0.0, self._fire_late)
            else:
                late.append(fn)
        else:
            self.callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)

    def _fire_late(self) -> None:
        late, self._late = self._late, None
        if late:
            for fn in late:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation.

    A timeout obtained from :meth:`Simulator.sleep` is *pooled*: after its
    callbacks run it is scrubbed and recycled, so steady-state pacing loops
    do not allocate a fresh event per wakeup.  Pooled timeouts must be
    yielded and forgotten — never stored across the yield.
    """

    __slots__ = ("_pooled",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._pooled = False
        self._triggered = True
        self._value = value
        sim._post(self, delay)

    def _fire(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)
        if self._pooled and self._late is None:
            # (a pending late batch means someone re-registered on us while
            # we fired — leave this instance to deliver it, don't recycle)
            pool = self.sim._timeout_pool
            if len(pool) < _TIMEOUT_POOL_MAX:
                self._pooled = False
                self._triggered = False
                self._value = None
                self._exc = None
                self.callbacks = []
                pool.append(self)


class _Join(Event):
    """Internal event used by AllOf/AnyOf and process termination."""

    __slots__ = ()


class Process(Event):
    """A running simulated process wrapping a generator.

    A process is itself an event that fires when the generator returns
    (value = the generator's return value) or raises (failure).  Other
    processes can therefore ``yield proc`` to join it.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", ""))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        # Start the process at the current time, after already-queued events.
        start = Event(sim)
        start.add_callback(self._resume)
        self._waiting_on = start
        start.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from the waited-on event (the event may
        still fire later, but this process no longer cares).
        """
        if self._triggered:
            raise RuntimeError(f"cannot interrupt finished process {self!r}")
        self.sim.schedule(0.0, self._deliver_interrupt, Interrupt(cause))

    def _deliver_interrupt(self, exc: Interrupt) -> None:
        if self._triggered:
            return  # finished in the meantime; interrupt is moot
        target = self._waiting_on
        if target is not None:
            # Detach from the pending delivery: the live callback list for
            # an unfired event, or the late batch for an already-fired one
            # (leaving a stale _resume queued there would wake us a slot
            # early if this process re-waits on the same event).
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            elif target._late is not None:
                try:
                    target._late.remove(self._resume)
                except ValueError:
                    pass
        self._waiting_on = None
        self._step(exc=exc)

    def _resume(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wake-up (we were interrupted away from this event)
        self._waiting_on = None
        if event._exc is not None:
            self._step(exc=event._exc)
        else:
            self._step(value=event._value)

    def _step(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        sim = self.sim
        prev = sim._active_process
        sim._active_process = self
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            sim._active_process = prev
            self.succeed(stop.value)
            return
        except Interrupt:
            # An un-caught interrupt terminates the process quietly.
            sim._active_process = prev
            self.succeed(None)
            return
        except Exception as err:
            sim._active_process = prev
            self.fail(err)
            return
        sim._active_process = prev
        if not isinstance(target, Event):
            self._gen.close()
            self.fail(TypeError(f"process {self.name!r} yielded non-event {target!r}"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


def AllOf(sim: "Simulator", events: Iterable[Event]) -> Event:
    """An event that fires when *all* of ``events`` have fired.

    Its value is the list of the constituent values, in input order.  The
    first failure fails the whole condition.
    """
    events = list(events)
    done = _Join(sim)
    remaining = [len(events)]
    values: list = [None] * len(events)
    if not events:
        return done.succeed(values)

    def on_fire(index: int, event: Event) -> None:
        if done.triggered:
            return
        if event._exc is not None:
            done.fail(event._exc)
            return
        values[index] = event._value
        remaining[0] -= 1
        if remaining[0] == 0:
            done.succeed(values)

    for i, ev in enumerate(events):
        ev.add_callback(lambda e, i=i: on_fire(i, e))
    return done


def AnyOf(sim: "Simulator", events: Iterable[Event]) -> Event:
    """An event that fires when the *first* of ``events`` fires.

    Its value is a ``(index, value)`` pair identifying the winner.
    """
    events = list(events)
    if not events:
        raise ValueError("AnyOf requires at least one event")
    done = _Join(sim)

    def on_fire(index: int, event: Event) -> None:
        if done.triggered:
            return
        if event._exc is not None:
            done.fail(event._exc)
            return
        done.succeed((index, event._value))

    for i, ev in enumerate(events):
        ev.add_callback(lambda e, i=i: on_fire(i, e))
    return done


def _resolve_engine(engine: Optional[str]) -> str:
    name = engine or os.environ.get("CALLIOPE_ENGINE") or DEFAULT_ENGINE
    name = name.strip().lower()
    if name not in ENGINES:
        raise ValueError(
            f"unknown engine {name!r} (choose from {', '.join(ENGINES)})"
        )
    return name


class Simulator:
    """The event loop: a clock plus a priority queue of pending events.

    Simultaneous events fire in scheduling order (stable via a sequence
    counter) which makes every run bit-for-bit reproducible — under either
    scheduler.

    ``engine`` picks the queue implementation (``"heap"`` or ``"wheel"``;
    default from ``CALLIOPE_ENGINE``, falling back to the wheel).  ``trace``
    may be set (also post-construction) to a callable receiving
    ``(time, seq, fn, args)`` just before each entry executes; the
    equivalence harness uses it to record golden schedules.
    """

    def __init__(self, engine: Optional[str] = None,
                 trace: Optional[Callable] = None):
        self._now = 0.0
        self._seq = 0
        self._active_process: Optional[Process] = None
        self.engine = _resolve_engine(engine)
        self._sched = HeapScheduler() if self.engine == "heap" else TimerWheel()
        #: Observability hook: called with (time, seq, fn, args) per event.
        self.trace = trace
        #: Total queue entries executed (the E23 events/sec numerator).
        self.events_executed = 0
        self._timeout_pool: List[Timeout] = []
        # -- coarsened-pacing contract (DESIGN.md §13) --------------------
        #: Steady-state pacing loops (MSU IOP, NIC bursts, disk cache
        #: copies) may batch up to this many per-packet wakeups into one.
        #: 1 = the reference per-packet schedule; experiments opt in.
        self.pacing_batch = 1
        self._decoarsen_until = -float("inf")

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- coarsened pacing ------------------------------------------------

    def effective_batch(self) -> int:
        """The pacing batch currently in force (1 while de-coarsened)."""
        if self.pacing_batch <= 1 or self._now < self._decoarsen_until:
            return 1
        return self.pacing_batch

    def decoarsen(self, hold: float = 1.0) -> None:
        """Force per-packet pacing for ``hold`` seconds from now.

        Fault injectors and VCR paths call this so coarse batching never
        blurs the schedule around an interesting instant.
        """
        until = self._now + hold
        if until > self._decoarsen_until:
            self._decoarsen_until = until

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` seconds (0 = asap, in order)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._seq += 1
        self._sched.push(self._now + delay, self._seq, fn, args)

    def at(self, when: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute time ``when`` (now, if past).

        The absolute-time twin of :meth:`schedule`, used by schedule-driven
        drivers (fault injection, scripted workloads) that are written
        against a fixed timeline rather than relative delays.
        """
        self.schedule(max(0.0, when - self._now), fn, *args)

    def _post(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        self._sched.push(self._now + delay, self._seq, event._fire, ())

    # -- factories -------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float, value: Any = None) -> Timeout:
        """A pooled :meth:`timeout`: recycled after it fires.

        The allocation-free fast path for pacing loops.  The returned
        timeout must be yielded (or given callbacks) immediately and never
        stored: once fired it is scrubbed and reused.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            t = pool.pop()
            t._pooled = True
            t._triggered = True
            t._value = value
            self._post(t, delay)
            return t
        t = Timeout(self, delay, value)
        t._pooled = True
        return t

    def process(self, gen: Generator, name: str = "") -> Process:
        """Spawn ``gen`` as a simulated process starting now."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """Shorthand for :func:`AllOf`."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> Event:
        """Shorthand for :func:`AnyOf`."""
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Fire the single next queued event."""
        time, seq, fn, args = self._sched.pop()
        if time < self._now:  # pragma: no cover - defensive
            raise RuntimeError("time ran backwards")
        if self.trace is not None:
            self.trace(time, seq, fn, args)
        self._now = time
        self.events_executed += 1
        fn(*args)

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none queued."""
        return self._sched.next_time()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue is empty or the clock reaches ``until``.

        Returns the simulation time at which execution stopped.  When
        ``until`` is given the clock is advanced to exactly ``until`` even if
        the queue drains earlier.
        """
        sched = self._sched
        if until is None:
            while sched:
                self.step()
        else:
            if until < self._now:
                raise ValueError(f"until={until} is in the past (now={self._now})")
            while sched.next_time() <= until:
                self.step()
            self._now = until
        return self._now

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` fires; return its value.

        Raises ``RuntimeError`` if the queue drains (or ``limit`` is hit)
        before the event triggers — useful in tests to catch deadlock.  An
        entry scheduled *exactly at* ``limit`` still runs: the limit bounds
        simulation time, it does not exclude its own instant.
        """
        while not event.triggered or event.callbacks is not None:
            next_time = self._sched.next_time()
            if next_time == float("inf"):
                raise RuntimeError(f"simulation deadlocked waiting for {event!r}")
            if limit is not None and next_time > limit:
                raise RuntimeError(f"exceeded limit={limit} waiting for {event!r}")
            self.step()
        return event.value
