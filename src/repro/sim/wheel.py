"""A hierarchical timer wheel for the simulation kernel's event queue.

The reference scheduler is a single binary heap: every schedule and every
fire pays ``O(log n)`` sift work against the *whole* pending set, which for
city-scale runs (100k+ concurrent pacing timers) is ~17 tuple comparisons
per event.  The wheel exploits what a media server's timer population
actually looks like — a dense band of near-future deadlines plus a thin
tail of far timers — and splits the queue into three parts:

* ``active`` — a small heap holding only the *current* bucket's entries.
  Pops come from here, so sift cost scales with one bucket, not the queue.
* near buckets — plain unsorted lists covering ``window`` slots of
  ``granularity`` seconds each.  Scheduling into the near band is an
  ``O(1)`` list append; a bucket is heapified once, when the cursor
  reaches it.  A small heap of occupied slot indices finds the next
  non-empty bucket without scanning empty ones.
* ``far`` — an overflow heap for entries beyond the near horizon, drained
  into buckets as the horizon advances.

Determinism contract: entries are ``(time, seq, fn, args)`` tuples and the
wheel pops them in **exactly** global ``(time, seq)`` order — bit-for-bit
the order the reference heap produces.  The argument: ``int(t * inv_g)``
is monotone non-decreasing in ``t`` (IEEE multiply and truncation are both
monotone), so bucket assignment never inverts time order across slots, and
equal times always map to the same slot; within a slot the heap orders by
``(time, seq)``.  ``tests/test_engine_equivalence.py`` checks this both
with golden traces from full-cluster scenarios and with Hypothesis runs
against a heap oracle.

Entries stay tuples rather than ``__slots__`` objects deliberately: tuples
are C-packed and compare in C inside heapq, which measured ~2x faster than
a slotted entry class with a Python-level ``__lt__``.  The allocation-
pressure half of the overhaul lives in the event objects instead (slotted
``Event``/``Timeout`` and the pooled-timeout fast path in ``engine.py``).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Tuple

__all__ = ["TimerWheel", "HeapScheduler"]

_INF = float("inf")

Entry = Tuple[float, int, Callable, tuple]


class HeapScheduler:
    """The reference scheduler: one global binary heap (the seed engine)."""

    __slots__ = ("_queue",)

    name = "heap"

    def __init__(self):
        self._queue: List[Entry] = []

    def push(self, time: float, seq: int, fn: Callable, args: tuple) -> None:
        heappush(self._queue, (time, seq, fn, args))

    def pop(self) -> Entry:
        return heappop(self._queue)

    def next_time(self) -> float:
        """Time of the next entry, or +inf when empty."""
        return self._queue[0][0] if self._queue else _INF

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)


class TimerWheel:
    """Bucketed near band + far-overflow heap, popping in (time, seq) order.

    ``granularity`` is the bucket width in seconds and ``window`` the
    number of near buckets; together they set the near horizon
    (``granularity * window`` seconds, 4.096 s at the defaults).  Entries
    past the horizon wait in the far heap and migrate into buckets as the
    cursor advances.  Neither knob affects *ordering* — only where the
    bookkeeping cost lands.
    """

    __slots__ = (
        "granularity", "window", "_inv_g", "_cursor", "_active",
        "_buckets", "_slot_heap", "_far", "_far_limit", "_near_count",
    )

    name = "wheel"

    def __init__(self, granularity: float = 1e-3, window: int = 4096):
        if granularity <= 0:
            raise ValueError(f"granularity must be positive: {granularity}")
        if window < 2:
            raise ValueError(f"window must be >= 2: {window}")
        self.granularity = granularity
        self.window = window
        self._inv_g = 1.0 / granularity
        self._cursor = 0              # slot index the active heap drains
        self._active: List[Entry] = []  # heap: entries with slot <= cursor
        self._buckets: dict = {}      # slot -> unsorted entry list
        self._slot_heap: List[int] = []  # heap of occupied slot indices
        self._far: List[Entry] = []   # heap: entries with slot >= far_limit
        self._far_limit = window      # buckets hold slots < this
        self._near_count = 0

    def push(self, time: float, seq: int, fn: Callable, args: tuple) -> None:
        entry = (time, seq, fn, args)
        slot = int(time * self._inv_g)
        if slot <= self._cursor:
            heappush(self._active, entry)
        elif slot < self._far_limit:
            bucket = self._buckets.get(slot)
            if bucket is None:
                self._buckets[slot] = [entry]
                heappush(self._slot_heap, slot)
            else:
                bucket.append(entry)
            self._near_count += 1
        else:
            heappush(self._far, entry)

    def _refill(self, new_limit: int) -> None:
        """Migrate far entries whose slot now falls inside the near band."""
        if new_limit <= self._far_limit:
            return
        self._far_limit = new_limit
        far = self._far
        inv_g = self._inv_g
        while far and int(far[0][0] * inv_g) < new_limit:
            entry = heappop(far)
            slot = int(entry[0] * inv_g)
            if slot <= self._cursor:
                heappush(self._active, entry)
            else:
                bucket = self._buckets.get(slot)
                if bucket is None:
                    self._buckets[slot] = [entry]
                    heappush(self._slot_heap, slot)
                else:
                    bucket.append(entry)
                self._near_count += 1

    def _advance(self) -> bool:
        """Ensure ``_active`` holds the globally next entry; False if empty."""
        while not self._active:
            if self._near_count:
                slot_heap = self._slot_heap
                buckets = self._buckets
                while slot_heap and slot_heap[0] not in buckets:
                    heappop(slot_heap)  # slot emptied by an earlier refill
                if slot_heap:
                    slot = heappop(slot_heap)
                    bucket = buckets.pop(slot)
                    self._near_count -= len(bucket)
                    heapify(bucket)
                    self._active = bucket
                    self._cursor = slot
                    self._refill(slot + self.window)
                    continue
                self._near_count = 0  # pragma: no cover - defensive resync
            if self._far:
                # Near band dry: jump the cursor straight to the far top.
                slot = int(self._far[0][0] * self._inv_g)
                self._cursor = slot
                self._refill(slot + self.window)
                continue
            return False
        return True

    def pop(self) -> Entry:
        if not self._advance():
            raise IndexError("pop from an empty TimerWheel")
        return heappop(self._active)

    def next_time(self) -> float:
        """Time of the next entry, or +inf when empty."""
        if self._advance():
            return self._active[0][0]
        return _INF

    def __len__(self) -> int:
        return len(self._active) + self._near_count + len(self._far)

    def __bool__(self) -> bool:
        return bool(self._active or self._near_count or self._far)
