"""Contention primitives for the simulation kernel.

* :class:`Resource` — a counted FIFO resource (a bus, a CPU, a disk arm).
* :class:`PriorityResource` — same, but requests carry a priority.
* :class:`Store` — an unbounded FIFO of items with blocking ``get``.

Usage inside a process::

    req = bus.request()
    yield req
    try:
        yield sim.timeout(transfer_time)
    finally:
        bus.release(req)
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from repro.sim.engine import Event, Simulator

__all__ = ["Resource", "PriorityResource", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource` (an event that fires on grant)."""

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority


class Resource:
    """A counted resource granting up to ``capacity`` concurrent holders.

    Grants are strictly FIFO.  ``release`` must be passed the granted
    request object; releasing wakes the next waiter at the current time.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._holders: set = set()
        self._waiters: deque = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted requests."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a grant."""
        return len(self._waiters)

    def request(self, priority: float = 0.0) -> Request:
        """Claim one unit; the returned event fires when granted."""
        req = Request(self, priority)
        if len(self._holders) < self.capacity:
            self._holders.add(req)
            req.succeed(req)
        else:
            self._enqueue(req)
        return req

    def release(self, req: Request) -> None:
        """Return a granted unit, waking the next waiter (if any)."""
        if req in self._holders:
            self._holders.discard(req)
            self._grant_next()
            return
        # Releasing an ungranted request = cancelling it.
        self._cancel(req)

    def _enqueue(self, req: Request) -> None:
        self._waiters.append(req)

    def _cancel(self, req: Request) -> None:
        try:
            self._waiters.remove(req)
        except ValueError:
            raise RuntimeError("release() of a request this resource never saw")

    def _pop_next(self) -> Optional[Request]:
        return self._waiters.popleft() if self._waiters else None

    def _grant_next(self) -> None:
        nxt = self._pop_next()
        if nxt is not None:
            self._holders.add(nxt)
            nxt.succeed(nxt)


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters are served lowest-priority-first.

    Ties break FIFO.  Used e.g. for elevator-order disk queues where the
    priority is the target cylinder.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        super().__init__(sim, capacity, name)
        self._waiters: list = []  # heap of (priority, seq, req)
        self._seq = 0

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def _enqueue(self, req: Request) -> None:
        self._seq += 1
        heapq.heappush(self._waiters, (req.priority, self._seq, req))

    def _cancel(self, req: Request) -> None:
        for i, (_, _, waiting) in enumerate(self._waiters):
            if waiting is req:
                self._waiters.pop(i)
                heapq.heapify(self._waiters)
                return
        raise RuntimeError("release() of a request this resource never saw")

    def _pop_next(self) -> Optional[Request]:
        if not self._waiters:
            return None
        _, _, req = heapq.heappop(self._waiters)
        return req


class Store:
    """An unbounded FIFO queue of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event whose value is the item.
    Items are matched to getters strictly FIFO on both sides.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: deque = deque()
        self._getters: deque = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest blocked getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:  # skip cancelled getters
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        ev = Event(self.sim, name=f"get:{self.name}")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking take: the next item or ``None`` if empty."""
        return self._items.popleft() if self._items else None

    def cancel(self, ev: Event) -> None:
        """Withdraw a pending ``get`` (no-op if it already fired)."""
        if not ev.triggered:
            ev.succeed(None)
            try:
                self._getters.remove(ev)
            except ValueError:
                pass
