"""The MSU storage substrate (§2.3.3, §2.2.1).

* :mod:`repro.storage.raw_disk` — a raw-device view: real bytes in a sparse
  image, timing through the simulated disk mechanism.
* :mod:`repro.storage.allocator` — bitmap block allocator with reservations.
* :mod:`repro.storage.filesystem` — the user-level large-block file system
  (256 KiB blocks, raw I/O, metadata fully cached in memory, no block cache).
* :mod:`repro.storage.ibtree` — the Integrated B-tree: a delivery-time
  primary B-tree whose internal pages are folded into the data pages.
* :mod:`repro.storage.layout` — per-disk vs striped volume layouts.
"""

from repro.storage.allocator import BitmapAllocator
from repro.storage.filesystem import FileHandle, MsuFileSystem
from repro.storage.ibtree import (
    IBTreeConfig,
    IBTreeReader,
    IBTreeWriter,
    PacketRecord,
)
from repro.storage.layout import SpanVolume, StripedVolume, Volume
from repro.storage.raw_disk import RawDisk, SparseImage

__all__ = [
    "BitmapAllocator",
    "FileHandle",
    "IBTreeConfig",
    "IBTreeReader",
    "IBTreeWriter",
    "MsuFileSystem",
    "PacketRecord",
    "RawDisk",
    "SpanVolume",
    "SparseImage",
    "StripedVolume",
    "Volume",
]
