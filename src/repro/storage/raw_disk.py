"""Raw-device storage: real bytes, simulated timing.

:class:`SparseImage` holds the actual bytes written to a disk without
allocating its full 2 GB (unwritten ranges read back as zeros).
:class:`RawDisk` pairs an image with a simulated
:class:`~repro.hardware.disk.DiskDrive`, so every read and write pays the
mechanical cost the paper measures while the data itself is real — the
IB-tree and file-system tests verify byte-for-byte round trips.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.errors import StorageError
from repro.hardware.disk import DiskDrive

__all__ = ["SparseImage", "RawDisk"]


class SparseImage:
    """A sparse byte array: pages materialize on first write."""

    def __init__(self, capacity: int, page_size: int = 64 * 1024):
        if capacity <= 0 or page_size <= 0:
            raise ValueError("capacity and page_size must be positive")
        self.capacity = capacity
        self.page_size = page_size
        self._pages: Dict[int, bytearray] = {}

    def _check(self, offset: int, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative length {nbytes}")
        if offset < 0 or offset + nbytes > self.capacity:
            raise StorageError(
                f"range [{offset}, {offset + nbytes}) outside image of {self.capacity}"
            )

    def write(self, offset: int, data: bytes) -> None:
        """Store ``data`` at ``offset``."""
        self._check(offset, len(data))
        pos = 0
        while pos < len(data):
            page_no, in_page = divmod(offset + pos, self.page_size)
            take = min(self.page_size - in_page, len(data) - pos)
            page = self._pages.get(page_no)
            if page is None:
                page = bytearray(self.page_size)
                self._pages[page_no] = page
            page[in_page : in_page + take] = data[pos : pos + take]
            pos += take

    def read(self, offset: int, nbytes: int) -> bytes:
        """Fetch ``nbytes`` at ``offset`` (zeros where never written)."""
        self._check(offset, nbytes)
        out = bytearray(nbytes)
        pos = 0
        while pos < nbytes:
            page_no, in_page = divmod(offset + pos, self.page_size)
            take = min(self.page_size - in_page, nbytes - pos)
            page = self._pages.get(page_no)
            if page is not None:
                out[pos : pos + take] = page[in_page : in_page + take]
            pos += take
        return bytes(out)

    @property
    def resident_bytes(self) -> int:
        """Bytes of backing store actually materialized."""
        return len(self._pages) * self.page_size


class RawDisk:
    """A raw SCSI device: byte-accurate storage behind simulated mechanics.

    All I/O is asynchronous simulation work: callers are processes using
    ``yield from``.  ``drive`` may be None for pure in-memory use in unit
    tests (zero simulated latency).
    """

    def __init__(self, drive: Optional[DiskDrive], capacity: Optional[int] = None):
        if drive is None and capacity is None:
            raise ValueError("need a drive or an explicit capacity")
        self.drive = drive
        self.capacity = capacity if capacity is not None else drive.params.capacity_bytes
        if drive is not None and self.capacity > drive.params.capacity_bytes:
            raise StorageError("image larger than the physical drive")
        self.image = SparseImage(self.capacity)

    def read(self, offset: int, nbytes: int) -> Generator:
        """Read ``nbytes`` at ``offset``; returns the bytes when resumed."""
        if self.drive is not None:
            yield from self.drive.transfer(offset, nbytes, write=False)
        return self.image.read(offset, nbytes)

    def read_sync(self, offset: int, nbytes: int) -> bytes:
        """Administrative read: bytes only, no simulated latency."""
        return self.image.read(offset, nbytes)

    def write_sync(self, offset: int, data: bytes) -> None:
        """Administrative write: used to pre-load content outside the
        measured interval (the paper's experiments start with the content
        already on the server)."""
        self.image.write(offset, data)

    def write(self, offset: int, data: bytes) -> Generator:
        """Write ``data`` at ``offset`` through the simulated mechanism."""
        if self.drive is not None:
            yield from self.drive.transfer(offset, len(data), write=True)
        self.image.write(offset, data)
        return len(data)
