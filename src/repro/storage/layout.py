"""Volume layouts: per-disk (the paper's choice) and striped (§2.3.3).

A volume exposes a flat array of file-system blocks and maps each logical
block to a (raw disk, byte offset) pair:

* :class:`SpanVolume` — one disk, identity mapping.  Calliope as built
  stores every file on a single disk ("when a client writes a file, all
  blocks go to a single disk").
* :class:`StripedVolume` — consecutive logical blocks land on "adjacent"
  disks round-robin, the layout the paper sketches but rejects for its
  VCR-latency and mixed-rate complications.  Implemented here for the
  striping ablation (experiment E10).
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from repro.errors import StorageError
from repro.storage.raw_disk import RawDisk
from repro.units import BLOCK_SIZE

__all__ = ["Volume", "SpanVolume", "StripedVolume"]


class Volume:
    """Base class: block-addressed storage over raw disks."""

    def __init__(self, disks: List[RawDisk], block_size: int = BLOCK_SIZE):
        if not disks:
            raise ValueError("a volume needs at least one disk")
        if block_size <= 0:
            raise ValueError(f"bad block size {block_size}")
        self.disks = disks
        self.block_size = block_size

    @property
    def nblocks(self) -> int:
        """Total file-system blocks on the volume."""
        raise NotImplementedError

    def locate(self, block: int) -> Tuple[RawDisk, int]:
        """Map a logical block to (disk, byte offset)."""
        raise NotImplementedError

    def _check(self, block: int) -> None:
        if not 0 <= block < self.nblocks:
            raise StorageError(f"block {block} outside volume of {self.nblocks}")

    def read_block(self, block: int) -> Generator:
        """Read one block (simulation process; returns bytes)."""
        self._check(block)
        disk, offset = self.locate(block)
        data = yield from disk.read(offset, self.block_size)
        return data

    def write_block(self, block: int, data: bytes) -> Generator:
        """Write one block (``data`` shorter than a block is zero-padded)."""
        self._check(block)
        if len(data) > self.block_size:
            raise StorageError(
                f"write of {len(data)} bytes exceeds {self.block_size} block"
            )
        if len(data) < self.block_size:
            data = data + b"\x00" * (self.block_size - len(data))
        disk, offset = self.locate(block)
        yield from disk.write(offset, data)

    def disk_of(self, block: int) -> RawDisk:
        """The raw disk a logical block lives on."""
        self._check(block)
        return self.locate(block)[0]

    def read_block_sync(self, block: int) -> bytes:
        """Administrative read without simulated latency."""
        self._check(block)
        disk, offset = self.locate(block)
        return disk.read_sync(offset, self.block_size)

    def write_block_sync(self, block: int, data: bytes) -> None:
        """Administrative write without simulated latency (content
        pre-loading before a measured run)."""
        self._check(block)
        if len(data) > self.block_size:
            raise StorageError(
                f"write of {len(data)} bytes exceeds {self.block_size} block"
            )
        if len(data) < self.block_size:
            data = data + b"\x00" * (self.block_size - len(data))
        disk, offset = self.locate(block)
        disk.write_sync(offset, data)


class SpanVolume(Volume):
    """A single-disk volume (the MSU's per-disk file system)."""

    def __init__(self, disk: RawDisk, block_size: int = BLOCK_SIZE):
        super().__init__([disk], block_size)
        self._nblocks = disk.capacity // block_size

    @property
    def nblocks(self) -> int:
        return self._nblocks

    def locate(self, block: int) -> Tuple[RawDisk, int]:
        return self.disks[0], block * self.block_size


class StripedVolume(Volume):
    """Round-robin striping: logical block ``i`` on disk ``i % N``."""

    def __init__(self, disks: List[RawDisk], block_size: int = BLOCK_SIZE):
        super().__init__(disks, block_size)
        per_disk = min(d.capacity // block_size for d in disks)
        self._per_disk = per_disk
        self._nblocks = per_disk * len(disks)

    @property
    def nblocks(self) -> int:
        return self._nblocks

    def locate(self, block: int) -> Tuple[RawDisk, int]:
        disk_no = block % len(self.disks)
        slot = block // len(self.disks)
        return self.disks[disk_no], slot * self.block_size
