"""The Integrated B-tree (IB-tree) of §2.2.1.

Calliope interleaves each stream's *delivery schedule* with its data in a
single file laid out as a primary B-tree keyed by delivery time:

* **Data pages** (256 KiB) hold packet records — delivery-time offset, kind
  and payload — in delivery order.  A sequential scan of the data pages
  therefore yields packets exactly in the order the network process must
  send them.
* **Internal pages** (28 KiB, up to 1024 keys) map a delivery time to the
  page holding it.  The "integration" is that a full internal page is
  *copied into the current data page* instead of being written separately,
  so building the tree costs no extra disk transfers or duty-cycle slots,
  and internal pages occupy ~0.1 % of the data pages read back during
  sequential scans.

:class:`IBTreeWriter` is pure in-memory page construction: callers feed it
packets and write each emitted page as the next file block (pages are
emitted strictly in file order, so page index == file block index).
:class:`IBTreeReader` parses pages, scans sequentially, and seeks by
walking internal pages top-down exactly as the paper describes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Generator, Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.filesystem import FileHandle
from repro.units import BLOCK_SIZE, INTERNAL_PAGE_KEYS, INTERNAL_PAGE_SIZE

__all__ = ["IBTreeConfig", "PacketRecord", "IBTreeWriter", "IBTreeReader"]

_DATA_MAGIC = b"CDPG"
_DATA_HDR = "<4sHIII"  # magic, n_entries, used, internal_off, internal_len
_DATA_HDR_SIZE = struct.calcsize(_DATA_HDR)

_REC_HDR = "<QIBxxx"  # delivery_us, length, kind, pad
_REC_HDR_SIZE = struct.calcsize(_REC_HDR)

_INT_MAGIC = b"CIPG"
_INT_HDR = "<4sBH"  # magic, level, n_keys
_INT_HDR_SIZE = struct.calcsize(_INT_HDR)
_INT_ENTRY = "<QIIB"  # key_us, child_page, child_offset, child_level
_INT_ENTRY_SIZE = struct.calcsize(_INT_ENTRY)

#: Packet kinds stored in the tree.
KIND_DATA = 0
KIND_CONTROL = 1  # interleaved protocol control messages (§2.3.2)


@dataclass(frozen=True)
class IBTreeConfig:
    """Page geometry; defaults are the paper's production sizes."""

    data_page_size: int = BLOCK_SIZE
    internal_page_size: int = INTERNAL_PAGE_SIZE
    max_keys: int = INTERNAL_PAGE_KEYS

    def __post_init__(self):
        need = _INT_HDR_SIZE + self.max_keys * _INT_ENTRY_SIZE
        if need > self.internal_page_size:
            raise ValueError(
                f"{self.max_keys} keys need {need} bytes; internal page is "
                f"{self.internal_page_size}"
            )
        if self.internal_page_size + _DATA_HDR_SIZE + _REC_HDR_SIZE >= self.data_page_size:
            raise ValueError("internal page too large to embed in a data page")


@dataclass(frozen=True)
class PacketRecord:
    """One stored packet: a delivery-time offset and its payload."""

    delivery_us: int
    payload: bytes
    kind: int = KIND_DATA


class _InternalPage:
    """An in-construction internal page at one level of the tree."""

    __slots__ = ("level", "entries")

    def __init__(self, level: int):
        self.level = level
        self.entries: List[Tuple[int, int, int, int]] = []  # key, page, off, lvl

    def pack(self, size: int) -> bytes:
        body = struct.pack(_INT_HDR, _INT_MAGIC, self.level, len(self.entries))
        for key, page, off, lvl in self.entries:
            body += struct.pack(_INT_ENTRY, key, page, off, lvl)
        if len(body) > size:
            raise StorageError("internal page overflow")
        return body + b"\x00" * (size - len(body))

    @staticmethod
    def parse(buf: bytes, offset: int) -> Tuple[int, List[Tuple[int, int, int, int]]]:
        magic, level, nkeys = struct.unpack_from(_INT_HDR, buf, offset)
        if magic != _INT_MAGIC:
            raise StorageError("bad internal-page magic")
        entries = []
        pos = offset + _INT_HDR_SIZE
        for _ in range(nkeys):
            entries.append(struct.unpack_from(_INT_ENTRY, buf, pos))
            pos += _INT_ENTRY_SIZE
        return level, entries


class IBTreeWriter:
    """Builds IB-tree pages from a packet stream, in file order.

    Protocol: call :meth:`feed` per packet; whenever it returns a page,
    write that page as the next file block.  Call :meth:`finish` once at
    the end; it returns the trailing pages plus the root pointer
    ``(page_index, offset, level)`` to store in file metadata.
    """

    def __init__(self, config: IBTreeConfig = IBTreeConfig()):
        self.config = config
        self._records: List[bytes] = []
        self._used = _DATA_HDR_SIZE
        self._n_entries = 0
        self._first_key: Optional[int] = None
        self._last_key: Optional[int] = None
        self._pending_internal: Optional[_InternalPage] = None  # to embed next
        self._levels: List[_InternalPage] = [_InternalPage(0)]
        self._pages_emitted = 0
        self.packets_written = 0

    # -- capacity bookkeeping ----------------------------------------------

    def _embed_reserved(self) -> int:
        return self.config.internal_page_size if self._pending_internal else 0

    def _room(self) -> int:
        return self.config.data_page_size - self._used - self._embed_reserved()

    # -- page assembly --------------------------------------------------------

    def _pack_page(self) -> bytes:
        """Serialize the current data page (embedding any pending internal)."""
        internal_off = 0
        internal_len = 0
        parts = []
        if self._pending_internal is not None:
            internal_off = _DATA_HDR_SIZE
            internal_len = self.config.internal_page_size
            parts.append(self._pending_internal.pack(internal_len))
            self._pending_internal = None
        parts.extend(self._records)
        body = b"".join(parts)
        page = struct.pack(
            _DATA_HDR,
            _DATA_MAGIC,
            self._n_entries,
            _DATA_HDR_SIZE + len(body),
            internal_off,
            internal_len,
        ) + body
        if len(page) > self.config.data_page_size:
            raise StorageError("data page overflow")  # pragma: no cover
        return page + b"\x00" * (self.config.data_page_size - len(page))

    def _close_page(self) -> bytes:
        """Finish the current data page and index it in the tree."""
        had_embed = self._pending_internal is not None
        embedded = self._pending_internal
        page_bytes = self._pack_page()
        page_index = self._pages_emitted
        self._pages_emitted += 1
        # Index the embedded internal page one level up.
        if had_embed:
            self._add_internal_entry(
                embedded.entries[0][0],
                page_index,
                _DATA_HDR_SIZE,
                embedded.level + 1,
            )
        # Index this data page at level 0 (unless it was a pure trailer).
        if self._n_entries > 0:
            self._add_data_entry(self._first_key, page_index)
        self._records = []
        self._used = _DATA_HDR_SIZE
        self._n_entries = 0
        self._first_key = None
        return page_bytes

    def _add_data_entry(self, key: int, page_index: int) -> None:
        self._add_entry(0, (key, page_index, 0, 0xFF))

    def _add_internal_entry(self, key: int, page: int, off: int, level: int) -> None:
        self._add_entry(level, (key, page, off, level - 1))

    def _add_entry(self, level: int, entry: Tuple[int, int, int, int]) -> None:
        while level >= len(self._levels):
            self._levels.append(_InternalPage(len(self._levels)))
        node = self._levels[level]
        node.entries.append(entry)
        if len(node.entries) >= self.config.max_keys:
            if self._pending_internal is not None:
                # Extremely rare: two levels fill at once; the lower one is
                # already pending, so let this one wait one more entry.
                return
            self._pending_internal = node
            self._levels[level] = _InternalPage(level)

    # -- public API ------------------------------------------------------------

    def feed(self, record: PacketRecord) -> Optional[bytes]:
        """Add a packet; returns a full page to write out, or None.

        Keys (delivery times) must be non-decreasing — the schedule is
        constructed as packets arrive in delivery order (§2.2.1).
        """
        if self._last_key is not None and record.delivery_us < self._last_key:
            raise StorageError(
                f"delivery times must be non-decreasing "
                f"({record.delivery_us} after {self._last_key})"
            )
        rec = struct.pack(
            _REC_HDR, record.delivery_us, len(record.payload), record.kind
        ) + record.payload
        if len(rec) > self.config.data_page_size - _DATA_HDR_SIZE - self.config.internal_page_size:
            raise StorageError(f"packet of {len(record.payload)} bytes too large for a page")
        page = None
        if len(rec) > self._room():
            page = self._close_page()
        if self._first_key is None:
            self._first_key = record.delivery_us
        self._records.append(rec)
        self._used += len(rec)
        self._n_entries += 1
        self._last_key = record.delivery_us
        self.packets_written += 1
        return page

    def _trailer_page(self, node: _InternalPage) -> bytes:
        """An entry-less data page carrying one internal page."""
        body = node.pack(self.config.internal_page_size)
        page = struct.pack(
            _DATA_HDR, _DATA_MAGIC, 0, _DATA_HDR_SIZE + len(body),
            _DATA_HDR_SIZE, self.config.internal_page_size,
        ) + body
        self._pages_emitted += 1
        return page + b"\x00" * (self.config.data_page_size - len(page))

    def finish(self) -> Tuple[List[bytes], Optional[Tuple[int, int, int]]]:
        """Flush trailing pages; returns (pages, root pointer).

        The root pointer is ``None`` for files that fit in a single data
        page (no internal pages were needed).  During recording, full
        internal pages ride inside data pages; the partial internal pages
        still open at end-of-recording land in trailer pages here.
        """
        pages: List[bytes] = []
        if self._n_entries > 0 or self._pending_internal is not None:
            pages.append(self._close_page())
        while self._pending_internal is not None:
            pages.append(self._close_page())
        # Promote partial internal pages bottom-up until a root emerges.
        root: Optional[Tuple[int, int, int]] = None
        level = 0
        while level < len(self._levels):
            node = self._levels[level]
            if not node.entries:
                level += 1
                continue
            higher = any(n.entries for n in self._levels[level + 1 :])
            if not higher:
                if node.level == 0 and len(node.entries) == 1:
                    # One data page: the page itself is the whole tree.
                    node.entries = []
                    break
                if node.level > 0 and len(node.entries) == 1:
                    # A root with a single child: the child is the real root.
                    _key, page, off, lvl = node.entries[0]
                    root = (page, off, lvl)
                else:
                    index = self._pages_emitted
                    pages.append(self._trailer_page(node))
                    root = (index, _DATA_HDR_SIZE, node.level)
                node.entries = []
                break
            index = self._pages_emitted
            first_key = node.entries[0][0]
            pages.append(self._trailer_page(node))
            node.entries = []
            self._add_entry(
                node.level + 1, (first_key, index, _DATA_HDR_SIZE, node.level)
            )
            while self._pending_internal is not None:
                pages.append(self._close_page())
            level += 1
        return pages, root


class IBTreeReader:
    """Parses, scans and seeks a completed IB-tree file."""

    def __init__(self, handle: FileHandle, config: IBTreeConfig = IBTreeConfig()):
        self.handle = handle
        self.config = config

    # -- parsing -----------------------------------------------------------

    @staticmethod
    def parse_page(buf: bytes) -> List[PacketRecord]:
        """Extract the packet records of one data page, in order."""
        magic, n_entries, used, internal_off, internal_len = struct.unpack_from(
            _DATA_HDR, buf, 0
        )
        if magic != _DATA_MAGIC:
            raise StorageError("bad data-page magic")
        pos = _DATA_HDR_SIZE
        if internal_len:
            pos = internal_off + internal_len  # skip the embedded internal page
        out = []
        for _ in range(n_entries):
            delivery_us, length, kind = struct.unpack_from(_REC_HDR, buf, pos)
            pos += _REC_HDR_SIZE
            out.append(PacketRecord(delivery_us, buf[pos : pos + length], kind))
            pos += length
        if pos > used:
            raise StorageError("data page entries overrun used length")
        return out

    # -- sequential scan -----------------------------------------------------

    def scan(self) -> Generator:
        """Simulation process: read every page in order, return all records.

        Mirrors the paper's sequential read: embedded internal pages come
        along for free and are ignored.
        """
        records: List[PacketRecord] = []
        for index in range(self.handle.nblocks):
            buf = yield from self.handle.read_block(index)
            records.extend(self.parse_page(buf))
        return records

    def iter_records(self, pages: Iterator[bytes]) -> Iterator[PacketRecord]:
        """Pure-parsing record iterator over already-read page buffers."""
        for buf in pages:
            yield from self.parse_page(buf)

    # -- seek ---------------------------------------------------------------

    def seek(self, time_us: int) -> Generator:
        """Simulation process: find the page/record for ``time_us``.

        Walks internal pages top-down (each hop is one simulated block
        read) and returns ``(page_index, entry_index)`` of the first record
        with delivery time >= ``time_us``, or None past end of stream.
        """
        if self.handle.nblocks == 0:
            return None
        if self.handle.root is None:
            page_index = 0  # single-page file
        else:
            page, off, level = self.handle.root
            while True:
                buf = yield from self.handle.read_block(page)
                node_level, entries = _InternalPage.parse(buf, off)
                if not entries:
                    return None
                # Last entry whose key <= target (or the first entry).
                child = entries[0]
                for entry in entries:
                    if entry[0] <= time_us:
                        child = entry
                    else:
                        break
                key, page, off, lvl = child
                if lvl == 0xFF:
                    page_index = page
                    break
        # Scan forward from the located data page.
        index = page_index
        while index < self.handle.nblocks:
            buf = yield from self.handle.read_block(index)
            for i, rec in enumerate(self.parse_page(buf)):
                if rec.delivery_us >= time_us:
                    return (index, i)
            index += 1
        return None
