"""The MSU's user-level large-block file system (§2.3.3).

Key properties taken from the paper:

* 256 KiB blocks, accessed through the raw disk device (no kernel FS).
* No block cache — "an LRU block cache would impair performance because
  there is not enough data locality or sharing"; reads always go to disk.
* Metadata small enough to cache entirely in memory; it is serialized to a
  reserved metadata region so a file system can be unmounted and remounted.
* Space for a recording is *reserved* up front from the client's length
  estimate and the unused remainder returned when the recording completes.

Files are block lists (no contiguity requirement); each file may carry an
IB-tree root pointer and links to its fast-forward / fast-backward
companion files (§2.3.1).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.allocator import BitmapAllocator, Reservation
from repro.storage.layout import Volume

__all__ = ["FileHandle", "MsuFileSystem"]

_SUPER_MAGIC = b"CLFS"
_SUPER_FMT = "<4sHIQ"  # magic, version, nfiles, total blocks
_VERSION = 1


class FileHandle:
    """One stored content file: a name, a block list and stream metadata."""

    def __init__(self, fs: "MsuFileSystem", name: str, content_type: str):
        self.fs = fs
        self.name = name
        self.content_type = content_type
        self.blocks: List[int] = []
        self.length = 0  # valid payload bytes (last block may be partial)
        #: IB-tree root pointer: (page_index, offset_in_page, level) or None.
        self.root: Optional[Tuple[int, int, int]] = None
        #: Total stream duration in microseconds (last delivery offset).
        self.duration_us = 0
        #: Names of rate-variant companions (normal/ff/fb), § 2.3.1.
        self.fast_forward: str = ""
        self.fast_backward: str = ""
        #: Leading pages reclaimed by a time-shift ring window.  Page
        #: indices are *absolute* (they never renumber as the front is
        #: trimmed), so a tail-following reader's position stays valid
        #: while old ring blocks return to the allocator.
        self.trimmed = 0
        self._reservation: Optional[Reservation] = None

    @property
    def nblocks(self) -> int:
        """Number of data pages ever appended (absolute page count)."""
        return self.trimmed + len(self.blocks)

    @property
    def live_span(self) -> int:
        """Pages still resident: absolute range ``[trimmed, nblocks)``."""
        return len(self.blocks)

    def read_block(self, index: int) -> Generator[Any, Any, bytes]:
        """Read data page ``index``.

        A simulation process: drive it with ``yield from`` (or
        ``sim.process``); its generator return value is the page bytes.
        """
        return self.fs.read_file_block(self, index)

    def append_block(self, data: bytes) -> Generator[Any, Any, int]:
        """Allocate and write the next data page.

        A simulation process: drive it with ``yield from``; its generator
        return value is the new page's index within the file.
        """
        return self.fs.append_file_block(self, data)


class MsuFileSystem:
    """An in-memory-metadata file system over one :class:`Volume`."""

    #: Blocks at the front of the volume reserved for serialized metadata.
    META_BLOCKS = 2

    def __init__(self, volume: Volume):
        self.volume = volume
        self.allocator = BitmapAllocator(volume.nblocks)
        self._files: Dict[str, FileHandle] = {}
        # The metadata region is permanently allocated.
        for block in range(self.META_BLOCKS):
            self.allocator.alloc()
        if self.META_BLOCKS >= volume.nblocks:
            raise StorageError("volume too small for the metadata region")

    # -- namespace ------------------------------------------------------------

    def create(
        self,
        name: str,
        content_type: str = "",
        reserve_blocks: int = 0,
    ) -> FileHandle:
        """Create an empty file, reserving ``reserve_blocks`` of space."""
        if not name:
            raise StorageError("empty file name")
        if name in self._files:
            raise StorageError(f"file exists: {name!r}")
        handle = FileHandle(self, name, content_type)
        if reserve_blocks:
            handle._reservation = self.allocator.reserve(reserve_blocks)
        self._files[name] = handle
        return handle

    def open(self, name: str) -> FileHandle:
        """Look up an existing file."""
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no such file: {name!r}") from None

    def exists(self, name: str) -> bool:
        """Whether ``name`` is a stored file."""
        return name in self._files

    def delete(self, name: str) -> None:
        """Remove a file and free its blocks and any reservation."""
        handle = self.open(name)
        if handle._reservation is not None:
            handle._reservation.release()
        for block in handle.blocks:
            self.allocator.free(block)
        handle.blocks = []
        del self._files[name]

    def list_files(self) -> List[FileHandle]:
        """All files, in name order."""
        return [self._files[k] for k in sorted(self._files)]

    # -- data path --------------------------------------------------------------

    def append_file_block(self, handle: FileHandle, data: bytes) -> Generator:
        """Allocate the next block of ``handle`` and write ``data`` to it."""
        if len(data) > self.volume.block_size:
            raise StorageError(
                f"{len(data)} bytes exceeds block size {self.volume.block_size}"
            )
        block = self.allocator.alloc(handle._reservation)
        try:
            yield from self.volume.write_block(block, data)
        except BaseException:
            self.allocator.free(block)
            raise
        handle.blocks.append(block)
        handle.length += len(data)
        return handle.nblocks - 1

    def append_block_sync(self, handle: FileHandle, data: bytes) -> int:
        """Administrative append without simulated latency (pre-loading)."""
        if len(data) > self.volume.block_size:
            raise StorageError(
                f"{len(data)} bytes exceeds block size {self.volume.block_size}"
            )
        block = self.allocator.alloc(handle._reservation)
        self.volume.write_block_sync(block, data)
        handle.blocks.append(block)
        handle.length += len(data)
        return handle.nblocks - 1

    def _resident_block(self, handle: FileHandle, index: int) -> int:
        """Map absolute page ``index`` to its volume block, or raise."""
        if index < handle.trimmed:
            raise StorageError(
                f"{handle.name!r}: page {index} reclaimed by the ring "
                f"window (window starts at {handle.trimmed})"
            )
        if index >= handle.nblocks:
            raise StorageError(
                f"{handle.name!r}: block index {index} outside "
                f"0..{handle.nblocks - 1}"
            )
        return handle.blocks[index - handle.trimmed]

    def read_block_sync(self, handle: FileHandle, index: int) -> bytes:
        """Administrative read without simulated latency (offline filter)."""
        return self.volume.read_block_sync(self._resident_block(handle, index))

    def read_file_block(self, handle: FileHandle, index: int) -> Generator:
        """Read data page ``index`` of ``handle``; returns the block bytes."""
        data = yield from self.volume.read_block(self._resident_block(handle, index))
        return data

    def trim_file_front(self, handle: FileHandle, upto: int) -> int:
        """Reclaim pages ``[handle.trimmed, upto)`` of a time-shift ring.

        Frees the underlying blocks back to the allocator while keeping
        absolute page indices stable — a reader positioned at page *i*
        keeps reading page *i* after any number of trims, and a read of
        a reclaimed page raises a recognizable StorageError.  Returns
        the number of pages freed.  The trim is a pure metadata/bitmap
        operation (no simulated disk time), like a block free.
        """
        upto = min(upto, handle.nblocks)
        freed = 0
        while handle.trimmed < upto:
            block = handle.blocks.pop(0)
            self.allocator.free(block)
            if handle._reservation is not None:
                # Ring semantics: the reclaimed block replenishes the
                # recording's own budget, not the general pool.
                handle._reservation.refill()
            handle.trimmed += 1
            freed += 1
        return freed

    def finish_recording(self, handle: FileHandle) -> int:
        """Release the unused remainder of the file's reservation (§2.2).

        Returns the number of reserved-but-unused blocks returned to the
        free pool.
        """
        if handle._reservation is None:
            return 0
        returned = handle._reservation.blocks
        handle._reservation.release()
        handle._reservation = None
        return returned

    # -- metadata persistence ------------------------------------------------------

    def _serialize(self) -> bytes:
        # Ring-trimmed files are *transient* (deleted when their live
        # channel closes) and their IB-tree roots hold absolute page
        # indices a renumbered-from-zero remount could not resolve — so
        # they are simply not persisted: a remount reclaims their space.
        durable = [n for n in sorted(self._files) if not self._files[n].trimmed]
        chunks = [struct.pack(_SUPER_FMT, _SUPER_MAGIC, _VERSION,
                              len(durable), self.volume.nblocks)]
        for name in durable:
            f = self._files[name]
            nb = name.encode()
            tb = f.content_type.encode()
            ffb = f.fast_forward.encode()
            fbb = f.fast_backward.encode()
            root = f.root if f.root is not None else (0, 0, 0)
            has_root = 1 if f.root is not None else 0
            chunks.append(
                struct.pack(
                    "<HHHHQIBIIBQ",
                    len(nb), len(tb), len(ffb), len(fbb),
                    f.length, len(f.blocks),
                    has_root, root[0], root[1], root[2],
                    f.duration_us,
                )
            )
            chunks.append(nb + tb + ffb + fbb)
            chunks.append(struct.pack(f"<{len(f.blocks)}I", *f.blocks))
        return b"".join(chunks)

    def sync_metadata(self) -> Generator:
        """Write the in-memory metadata to the reserved region."""
        blob = self._serialize()
        capacity = self.META_BLOCKS * self.volume.block_size
        if len(blob) > capacity:
            raise StorageError(
                f"metadata of {len(blob)} bytes exceeds region of {capacity}"
            )
        for i in range(self.META_BLOCKS):
            piece = blob[i * self.volume.block_size : (i + 1) * self.volume.block_size]
            yield from self.volume.write_block(i, piece)

    @classmethod
    def mount(cls, volume: Volume) -> Generator:
        """Re-read metadata from a previously synced volume."""
        fs = cls(volume)
        blob = b""
        for i in range(cls.META_BLOCKS):
            piece = yield from volume.read_block(i)
            blob += piece
        magic, version, nfiles, nblocks = struct.unpack_from(_SUPER_FMT, blob, 0)
        if magic != _SUPER_MAGIC:
            raise StorageError("not a Calliope file system (bad magic)")
        if version != _VERSION:
            raise StorageError(f"unsupported metadata version {version}")
        if nblocks != volume.nblocks:
            raise StorageError("volume size does not match superblock")
        pos = struct.calcsize(_SUPER_FMT)
        head_fmt = "<HHHHQIBIIBQ"
        head_size = struct.calcsize(head_fmt)
        for _ in range(nfiles):
            (ln, lt, lff, lfb, length, nb, has_root, r0, r1, r2, dur) = struct.unpack_from(
                head_fmt, blob, pos
            )
            pos += head_size
            name = blob[pos : pos + ln].decode(); pos += ln
            ctype = blob[pos : pos + lt].decode(); pos += lt
            ff = blob[pos : pos + lff].decode(); pos += lff
            fb = blob[pos : pos + lfb].decode(); pos += lfb
            blocks = list(struct.unpack_from(f"<{nb}I", blob, pos))
            pos += 4 * nb
            handle = FileHandle(fs, name, ctype)
            handle.length = length
            handle.blocks = blocks
            handle.root = (r0, r1, r2) if has_root else None
            handle.duration_us = dur
            handle.fast_forward = ff
            handle.fast_backward = fb
            fs._files[name] = handle
        # Rebuild the bitmap from the block lists.
        for handle in fs._files.values():
            for block in handle.blocks:
                if fs.allocator._bitmap[block]:
                    raise StorageError(f"block {block} claimed twice in metadata")
                fs.allocator._bitmap[block] = 1
                fs.allocator._used += 1
        return fs
