"""Bitmap block allocator with reservations.

The Coordinator admits a recording only when an MSU disk has enough free
space for the *estimated* length (§2.2); unused blocks are returned when
the recording session completes.  The allocator therefore distinguishes
*reserved* capacity (admission accounting) from *allocated* blocks (actual
file extents), and a reservation can be released partially.
"""

from __future__ import annotations

from typing import List

from repro.errors import OutOfSpaceError, StorageError

__all__ = ["BitmapAllocator", "Reservation"]


class Reservation:
    """A claim on ``blocks`` future allocations from one allocator."""

    __slots__ = ("allocator", "blocks", "active")

    def __init__(self, allocator: "BitmapAllocator", blocks: int):
        self.allocator = allocator
        self.blocks = blocks
        self.active = True

    def consume(self, n: int = 1) -> None:
        """Count ``n`` allocated blocks against this reservation."""
        if not self.active:
            raise StorageError("reservation already released")
        self.blocks = max(0, self.blocks - n)

    def release(self) -> None:
        """Return any unconsumed reserved blocks to the free pool."""
        if self.active:
            self.allocator._reserved -= self.blocks
            self.blocks = 0
            self.active = False

    def refill(self, n: int = 1) -> None:
        """Return ``n`` just-freed blocks to this reservation.

        A time-shift ring recycles its own space: a block trimmed off the
        window's trailing edge goes back into the recording's reservation
        rather than the general pool, so a live channel can append forever
        within its fixed budget.  Safe only immediately after freeing the
        same number of blocks (the free pool momentarily covers them).
        """
        if not self.active:
            return
        self.blocks += n
        self.allocator._reserved += n


class BitmapAllocator:
    """First-fit-from-cursor ("next fit") bitmap allocator."""

    def __init__(self, nblocks: int):
        if nblocks <= 0:
            raise ValueError(f"nblocks must be positive, got {nblocks}")
        self.nblocks = nblocks
        self._bitmap = bytearray(nblocks)  # 0 free, 1 used
        self._cursor = 0
        self._used = 0
        self._reserved = 0

    # -- accounting ---------------------------------------------------------

    @property
    def used_blocks(self) -> int:
        """Blocks currently allocated to files."""
        return self._used

    @property
    def free_blocks(self) -> int:
        """Blocks neither allocated nor reserved."""
        return self.nblocks - self._used - self._reserved

    @property
    def reserved_blocks(self) -> int:
        """Blocks promised to in-progress recordings."""
        return self._reserved

    def is_allocated(self, block: int) -> bool:
        """Whether ``block`` is currently in use."""
        self._check(block)
        return bool(self._bitmap[block])

    def _check(self, block: int) -> None:
        if not 0 <= block < self.nblocks:
            raise StorageError(f"block {block} outside [0, {self.nblocks})")

    # -- reservation ---------------------------------------------------------

    def reserve(self, blocks: int) -> Reservation:
        """Set aside ``blocks`` for a future recording, or raise."""
        if blocks < 0:
            raise ValueError(f"negative reservation: {blocks}")
        if blocks > self.free_blocks:
            raise OutOfSpaceError(
                f"reserve({blocks}): only {self.free_blocks} blocks free"
            )
        self._reserved += blocks
        return Reservation(self, blocks)

    # -- allocation ------------------------------------------------------------

    def alloc(self, reservation: Reservation = None) -> int:
        """Allocate one block (counting against ``reservation`` if given)."""
        if reservation is not None:
            if not reservation.active or reservation.blocks < 1:
                raise OutOfSpaceError("reservation exhausted")
        elif self.free_blocks < 1:
            raise OutOfSpaceError("disk full")
        for probe in range(self.nblocks):
            block = (self._cursor + probe) % self.nblocks
            if not self._bitmap[block]:
                self._bitmap[block] = 1
                self._cursor = (block + 1) % self.nblocks
                self._used += 1
                if reservation is not None:
                    reservation.consume()
                    self._reserved -= 1
                return block
        raise OutOfSpaceError("disk full")  # pragma: no cover - guarded above

    def alloc_many(self, n: int, reservation: Reservation = None) -> List[int]:
        """Allocate ``n`` blocks (not necessarily contiguous)."""
        out = []
        try:
            for _ in range(n):
                out.append(self.alloc(reservation))
        except OutOfSpaceError:
            for block in out:
                self.free(block)
            raise
        return out

    def free(self, block: int) -> None:
        """Return one block to the free pool."""
        self._check(block)
        if not self._bitmap[block]:
            raise StorageError(f"double free of block {block}")
        self._bitmap[block] = 0
        self._used -= 1
