"""File-system and IB-tree consistency checking (an fsck for the MSU).

The MSU's metadata is fully cached in memory and periodically synced
(§2.3.3); after a crash an operator wants to know the on-disk state is
sane before restoring the MSU to the Coordinator's schedule.  The checker
cross-validates the allocator bitmap against the file block lists and
walks each file's IB-tree:

* every file block is allocated exactly once and in range;
* the allocator's used count matches the metadata;
* data pages parse, delivery times are non-decreasing across the scan;
* the root pointer (if any) is in range and parses as an internal page;
* the recorded ``length`` matches the block payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import StorageError
from repro.storage.filesystem import MsuFileSystem
from repro.storage.ibtree import IBTreeConfig, IBTreeReader, _InternalPage

__all__ = ["CheckReport", "check_filesystem"]


@dataclass
class CheckReport:
    """What the checker found."""

    files_checked: int = 0
    pages_checked: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.errors

    def complain(self, message: str) -> None:
        self.errors.append(message)


def check_filesystem(
    fs: MsuFileSystem, config: IBTreeConfig = IBTreeConfig()
) -> CheckReport:
    """Synchronously audit ``fs`` (admin path: no simulated time)."""
    report = CheckReport()
    seen = {}
    for handle in fs.list_files():
        report.files_checked += 1
        for index, block in enumerate(handle.blocks):
            if not 0 <= block < fs.volume.nblocks:
                report.complain(
                    f"{handle.name}: block[{index}] = {block} out of range"
                )
                continue
            if block < fs.META_BLOCKS:
                report.complain(
                    f"{handle.name}: block[{index}] inside the metadata region"
                )
            owner = seen.get(block)
            if owner is not None:
                report.complain(
                    f"block {block} claimed by both {owner} and {handle.name}"
                )
            seen[block] = handle.name
            if not fs.allocator.is_allocated(block):
                report.complain(
                    f"{handle.name}: block {block} not marked in the bitmap"
                )
        _check_tree(fs, handle, config, report)
    # Bitmap blocks with no owner (metadata region excluded) are leaks.
    leaked = [
        block
        for block in range(fs.META_BLOCKS, fs.volume.nblocks)
        if fs.allocator.is_allocated(block) and block not in seen
    ]
    # Reserved-but-unallocated space is legitimate (open recordings).
    expected_used = len(seen) + fs.META_BLOCKS
    if fs.allocator.used_blocks != expected_used:
        report.complain(
            f"allocator used={fs.allocator.used_blocks} but metadata accounts "
            f"for {expected_used}"
        )
    for block in leaked:
        report.complain(f"block {block} allocated but owned by no file")
    return report


def _check_tree(fs, handle, config: IBTreeConfig, report: CheckReport) -> None:
    last_time = -1
    total_payload = 0
    # Pages below ``trimmed`` were reclaimed by a time-shift ring window;
    # only the resident span [trimmed, nblocks) is on disk to check.
    for index in range(handle.trimmed, handle.nblocks):
        if not 0 <= handle.blocks[index - handle.trimmed] < fs.volume.nblocks:
            continue  # already reported by the namespace pass
        buf = fs.read_block_sync(handle, index)
        report.pages_checked += 1
        try:
            records = IBTreeReader.parse_page(buf)
        except StorageError as err:
            report.complain(f"{handle.name}: page {index} corrupt: {err}")
            continue
        for record in records:
            if record.delivery_us < last_time:
                report.complain(
                    f"{handle.name}: page {index} breaks delivery-time order"
                )
                break
            last_time = record.delivery_us
        total_payload += sum(len(r.payload) for r in records)
    if handle.root is not None:
        page, offset, level = handle.root
        if not 0 <= page < handle.nblocks:
            report.complain(f"{handle.name}: root page {page} out of range")
        else:
            buf = fs.read_block_sync(handle, page)
            try:
                node_level, entries = _InternalPage.parse(buf, offset)
                if node_level != level:
                    report.complain(
                        f"{handle.name}: root level mismatch "
                        f"({node_level} stored vs {level} in metadata)"
                    )
                for _key, child, _off, child_level in entries:
                    if child_level == 0xFF and not 0 <= child < handle.nblocks:
                        report.complain(
                            f"{handle.name}: root entry points past EOF ({child})"
                        )
            except StorageError as err:
                report.complain(f"{handle.name}: root does not parse: {err}")
