"""Network-interface model (FDDI delivery side, Ethernet control side).

The transmit path follows the paper's data-path arithmetic (§3.2.3): a
packet costs a fixed CPU overhead (plus the two-HBA I/O stall when the
pathology is active), a user-to-mbuf copy at 18 MB/s, a checksum read at
53 MB/s and a DMA read at 53 MB/s, then serializes onto the line.  A full
output queue produces ENOBUFS and the sender backs off briefly and retries,
exactly as FreeBSD/ttcp behave (§3.1).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.hardware.params import NicParams
from repro.sim import Simulator, Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.machine import Machine

__all__ = ["NetworkInterface"]


class NetworkInterface:
    """One NIC: host send/receive path plus a line-rate transmit drain."""

    def __init__(self, sim: Simulator, machine: "Machine", params: NicParams):
        self.sim = sim
        self.machine = machine
        self.params = params
        self.name = params.name
        self._txq: deque = deque()
        self._tx_wakeup = Store(sim, name=f"{params.name}.txq")
        #: Called as ``on_transmit(payload, nbytes)`` when a frame finishes
        #: serializing; the net layer wires this to the simulated wire.
        self.on_transmit: Optional[Callable[[Any, int], None]] = None
        # statistics
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_received = 0
        self.bytes_received = 0
        self.enobufs_count = 0
        self.line_busy_time = 0.0
        self._last_activity = -float("inf")
        sim.process(self._tx_drain(), name=f"{params.name}.tx")

    #: A NIC counts as "active" for contention purposes this long after its
    #: last packet (one scheduler quantum's worth of driver state).
    ACTIVITY_WINDOW = 0.05

    @property
    def recently_active(self) -> bool:
        """True if this NIC moved a packet within ACTIVITY_WINDOW seconds."""
        return (self.sim.now - self._last_activity) < self.ACTIVITY_WINDOW

    @property
    def queue_pressure(self) -> bool:
        """True while the output queue is half full or more.

        Coarsened senders consult this before batching: a loaded interface
        means contention, and the pacing contract (DESIGN.md §13) requires
        falling back to per-packet scheduling under contention.
        """
        return len(self._txq) * 2 >= self.params.txq_depth

    # -- host transmit path -------------------------------------------------

    def udp_send(self, nbytes: int, payload: Any = None) -> Generator:
        """Full host send path for one UDP packet of ``nbytes`` payload.

        Holds the CPU through protocol processing, copy and checksum (so
        interrupts and other senders queue behind it), then DMAs the packet
        to the interface and enqueues it for line transmission.
        """
        if nbytes <= 0:
            raise ValueError(f"non-positive packet size {nbytes}")
        cpu = self.machine.cpu
        memory = self.machine.memory
        start = self.sim.now
        req = cpu.acquire()
        yield req
        try:
            self._last_activity = self.sim.now
            stall = cpu.io_stall_time()
            outstanding = self.machine.outstanding_commands()
            stall += cpu.params.packet_disk_penalty * outstanding
            yield self.sim.timeout(cpu.params.udp_send_overhead + stall)
            yield from memory.copy(nbytes)  # user space -> kernel mbuf
            yield from memory.read(nbytes)  # UDP checksum
        finally:
            cpu.release(req, busy=self.sim.now - start)
        # Interface output queue: full queue -> ENOBUFS, back off, retry.
        while len(self._txq) >= self.params.txq_depth:
            self.enobufs_count += 1
            yield self.sim.timeout(self.params.enobufs_backoff)
        yield from memory.dma_read(nbytes)  # device bus-master read
        self._txq.append((payload, nbytes))
        self._tx_wakeup.put(True)

    def udp_send_burst(self, chunks) -> Generator:
        """Host send path for a burst of UDP packets in one CPU hold.

        ``chunks`` is a list of ``(payload, nbytes)`` pairs.  The coarsened
        pacing contract (DESIGN.md §13): the burst pays the same aggregate
        cost as the per-packet path — n protocol overheads, n packets'
        copy/checksum/DMA bytes — but holds the CPU once and wakes once,
        so a steady-state stream costs O(1) events per batch instead of
        O(events) per packet.  Queue-pressure check happens up front; a
        burst that would overflow the output queue backs off whole.
        """
        if not chunks:
            return
        total = 0
        for _, nbytes in chunks:
            if nbytes <= 0:
                raise ValueError(f"non-positive packet size {nbytes}")
            total += nbytes
        cpu = self.machine.cpu
        memory = self.machine.memory
        n = len(chunks)
        start = self.sim.now
        req = cpu.acquire()
        yield req
        try:
            self._last_activity = self.sim.now
            stall = cpu.io_stall_time()
            outstanding = self.machine.outstanding_commands()
            stall += cpu.params.packet_disk_penalty * outstanding
            yield self.sim.sleep(n * (cpu.params.udp_send_overhead + stall))
            yield from memory.copy(total)  # user space -> kernel mbufs
            yield from memory.read(total)  # UDP checksums
        finally:
            cpu.release(req, busy=self.sim.now - start)
        while len(self._txq) + n > self.params.txq_depth:
            self.enobufs_count += 1
            yield self.sim.sleep(self.params.enobufs_backoff)
        yield from memory.dma_read(total)  # device bus-master reads
        self._txq.extend(chunks)
        self._tx_wakeup.put(True)

    def udp_receive(self, nbytes: int) -> Generator:
        """Host receive path: device DMA write, checksum, copy to user."""
        if nbytes <= 0:
            raise ValueError(f"non-positive packet size {nbytes}")
        cpu = self.machine.cpu
        memory = self.machine.memory
        yield from memory.dma_write(nbytes)  # device -> mbuf
        start = self.sim.now
        req = cpu.acquire()
        yield req
        try:
            stall = cpu.io_stall_time()
            yield self.sim.timeout(cpu.params.udp_recv_overhead + stall)
            yield from memory.read(nbytes)  # checksum verify
            yield from memory.copy(nbytes)  # mbuf -> user space
        finally:
            cpu.release(req, busy=self.sim.now - start)
        self.packets_received += 1
        self.bytes_received += nbytes

    # -- line side ------------------------------------------------------------

    def _tx_drain(self) -> Generator:
        while True:
            yield self._tx_wakeup.get()
            while self._txq:
                batch = self.sim.effective_batch()
                if batch > 1 and len(self._txq) > 1:
                    # Coarsened drain: serialize up to ``batch`` queued
                    # frames under one wakeup.  Line time is the exact sum
                    # of the per-frame holds; the frames just land at the
                    # end of the burst instead of one hold apart.
                    frames = [
                        self._txq.popleft()
                        for _ in range(min(batch, len(self._txq)))
                    ]
                    hold = sum(
                        (nb + self.params.header_bytes) / self.params.line_rate
                        + self.params.frame_overhead
                        for _, nb in frames
                    )
                    yield self.sim.sleep(hold)
                    self._last_activity = self.sim.now
                    self.line_busy_time += hold
                    for payload, nbytes in frames:
                        self.packets_sent += 1
                        self.bytes_sent += nbytes
                        if self.on_transmit is not None:
                            self.on_transmit(payload, nbytes)
                    continue
                payload, nbytes = self._txq.popleft()
                wire_bytes = nbytes + self.params.header_bytes
                hold = wire_bytes / self.params.line_rate + self.params.frame_overhead
                yield self.sim.sleep(hold)
                self._last_activity = self.sim.now
                self.line_busy_time += hold
                self.packets_sent += 1
                self.bytes_sent += nbytes
                if self.on_transmit is not None:
                    self.on_transmit(payload, nbytes)

    def throughput(self, elapsed: float) -> float:
        """Payload bytes/sec sent since construction over ``elapsed``."""
        return self.bytes_sent / elapsed if elapsed > 0 else 0.0
