"""Main-memory bandwidth model.

The Micron Pentium moves data at 53/25/18 MB/s (read/write/copy, §3.2.3) and
every byte a stream serves crosses memory four times on the read path
(disk DMA write, user-to-mbuf copy, checksum read, NIC DMA read).  The bus
is modelled as a single FIFO resource held in bounded chunks so that
concurrent transfers interleave and bandwidth is shared.
"""

from __future__ import annotations

from typing import Generator

from repro.hardware.params import MemoryParams
from repro.sim import Resource, Simulator

__all__ = ["MemoryBus"]


class MemoryBus:
    """A shared, chunk-interleaved memory bus."""

    def __init__(self, sim: Simulator, params: MemoryParams = MemoryParams()):
        self.sim = sim
        self.params = params
        self._bus = Resource(sim, capacity=1, name="membus")
        self.bytes_moved = 0
        self.busy_time = 0.0

    @property
    def utilization_clock(self) -> float:
        """Total bus-held seconds so far (divide by elapsed for utilization)."""
        return self.busy_time

    def _transfer(self, nbytes: int, rate: float) -> Generator:
        """Move ``nbytes`` at ``rate``, holding the bus one chunk at a time."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        chunk = self.params.chunk_bytes
        remaining = nbytes
        while remaining > 0:
            step = min(chunk, remaining)
            req = self._bus.request()
            yield req
            hold = step / rate
            try:
                yield self.sim.timeout(hold)
            finally:
                self._bus.release(req)
            self.busy_time += hold
            self.bytes_moved += step
            remaining -= step

    # The five op kinds the paper's data-path arithmetic distinguishes.

    def read(self, nbytes: int) -> Generator:
        """CPU read pass (e.g. the UDP checksum)."""
        return self._transfer(nbytes, self.params.read_rate)

    def write(self, nbytes: int) -> Generator:
        """CPU write pass (e.g. the disk-less baseline's buffer filler)."""
        return self._transfer(nbytes, self.params.write_rate)

    def copy(self, nbytes: int) -> Generator:
        """CPU copy pass (user space to kernel mbuf)."""
        return self._transfer(nbytes, self.params.copy_rate)

    def dma_write(self, nbytes: int) -> Generator:
        """Bus-master write into memory (disk or NIC receive DMA)."""
        return self._transfer(nbytes, self.params.dma_write_rate)

    def dma_read(self, nbytes: int) -> Generator:
        """Bus-master read out of memory (NIC transmit DMA)."""
        return self._transfer(nbytes, self.params.dma_read_rate)
