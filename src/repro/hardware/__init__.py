"""Calibrated models of the paper's 1995 testbed hardware.

The testbed (paper §3): a 66 MHz Micron Pentium PC running FreeBSD 2.0.5,
with Buslogic EISA fast-differential SCSI host-bus adaptors, 2 GB Seagate
Barracuda disks, 32 MB RAM, an SMC ISA Ethernet card for the intra-server
network and a DEC DEFPA PCI FDDI card for the delivery network.

Every timing constant lives in :mod:`repro.hardware.params`, annotated with
the Table 1 cell or text measurement it was calibrated against.
"""

from repro.hardware.cpu import Cpu
from repro.hardware.disk import DiskDrive, SeekPolicy
from repro.hardware.machine import Machine
from repro.hardware.memory import MemoryBus
from repro.hardware.nic import NetworkInterface
from repro.hardware.params import (
    CpuParams,
    DiskParams,
    MachineParams,
    MemoryParams,
    NicParams,
    ScsiParams,
    TimerParams,
)
from repro.hardware.scsi import HostBusAdapter
from repro.hardware.timer import SystemTimer

__all__ = [
    "Cpu",
    "CpuParams",
    "DiskDrive",
    "DiskParams",
    "HostBusAdapter",
    "Machine",
    "MachineParams",
    "MemoryBus",
    "MemoryParams",
    "NetworkInterface",
    "NicParams",
    "ScsiParams",
    "SeekPolicy",
    "SystemTimer",
    "TimerParams",
]
