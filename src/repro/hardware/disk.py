"""Disk drive mechanics: seek curve, rotation, media-paced transfers.

A request's service time is::

    seek(distance) + rotational latency + arbitration penalties
      + media-paced transfer (bursting over the SCSI chain in chunks)
      + chain command overhead + CPU interrupt service

The queue discipline is pluggable (§2.3.3): the MSU as built uses
round-robin/FCFS arrival order ("resulting in random seeks between disk
transfers"); ELEVATOR and SSTF are provided for the ~6 % elevator
experiment the paper reports.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.hardware.params import DiskParams
from repro.sim import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.machine import Machine
    from repro.hardware.scsi import HostBusAdapter

__all__ = ["DiskDrive", "SeekPolicy"]


class SeekPolicy(enum.Enum):
    """Disk queue discipline."""

    FCFS = "fcfs"
    ELEVATOR = "elevator"
    SSTF = "sstf"


class _Request:
    __slots__ = ("cylinder", "grant", "seq")

    def __init__(self, cylinder: int, grant: Event, seq: int):
        self.cylinder = cylinder
        self.grant = grant
        self.seq = seq


class DiskDrive:
    """One 2 GB Barracuda-class drive on a SCSI chain."""

    def __init__(
        self,
        sim: Simulator,
        hba: "HostBusAdapter",
        params: DiskParams = DiskParams(),
        name: str = "sd0",
        machine: "Machine | None" = None,
        policy: SeekPolicy = SeekPolicy.FCFS,
        seed: int = 1,
    ):
        self.sim = sim
        self.hba = hba
        self.params = params
        self.name = name
        self.machine = machine
        self.policy = policy
        self._rng = np.random.default_rng(seed)
        self._pending: deque = deque()
        self._seq = 0
        self._arm_busy = False
        self.busy = False  # command in flight (incl. queued bursts)
        self.head_cylinder = int(self._rng.integers(0, params.cylinders))
        self._direction = 1  # elevator scan direction
        # statistics
        self.bytes_transferred = 0
        self.requests_served = 0
        self.total_seek_distance = 0
        self.busy_time = 0.0

    # -- geometry ---------------------------------------------------------

    def cylinder_of(self, offset: int) -> int:
        """Map a byte offset on the platter to a cylinder number."""
        if not 0 <= offset < self.params.capacity_bytes:
            raise ValueError(
                f"{self.name}: offset {offset} outside disk of "
                f"{self.params.capacity_bytes} bytes"
            )
        frac = offset / self.params.capacity_bytes
        return min(self.params.cylinders - 1, int(frac * self.params.cylinders))

    def seek_time(self, distance: int) -> float:
        """Seek duration for a head move of ``distance`` cylinders.

        Zero-distance requests still pay rotational latency but no seek.
        The curve is the classic settle + sqrt shape.
        """
        if distance <= 0:
            return 0.0
        p = self.params
        frac = min(1.0, distance / p.cylinders)
        return p.seek_min + p.seek_max_extra * (frac**0.5)

    # -- queueing ---------------------------------------------------------

    def _pick_next(self) -> _Request:
        if self.policy is SeekPolicy.FCFS:
            return self._pending.popleft()
        if self.policy is SeekPolicy.SSTF:
            best = min(self._pending, key=lambda r: (abs(r.cylinder - self.head_cylinder), r.seq))
        else:  # ELEVATOR: continue in current direction, else reverse
            ahead = [
                r
                for r in self._pending
                if (r.cylinder - self.head_cylinder) * self._direction >= 0
            ]
            if not ahead:
                self._direction = -self._direction
                ahead = list(self._pending)
            best = min(ahead, key=lambda r: (abs(r.cylinder - self.head_cylinder), r.seq))
        self._pending.remove(best)
        return best

    def _dispatch(self) -> None:
        if self._arm_busy or not self._pending:
            return
        self._arm_busy = True
        nxt = self._pick_next()
        nxt.grant.succeed()

    # -- the transfer itself ----------------------------------------------

    def transfer(self, offset: int, nbytes: int, write: bool = False) -> Generator:
        """Read (or write) ``nbytes`` at byte ``offset``; yields until done.

        Reads DMA into main memory; writes DMA out of it.  The caller is a
        simulation process: ``yield from disk.transfer(...)``.
        """
        if nbytes <= 0:
            raise ValueError(f"{self.name}: non-positive transfer size {nbytes}")
        target = self.cylinder_of(offset)
        self._seq += 1
        grant = Event(self.sim, name=f"{self.name}.grant")
        request = _Request(target, grant, self._seq)
        self._pending.append(request)
        self._dispatch()
        try:
            yield grant
        except BaseException:
            # The owning process died waiting here (an MSU crash interrupts
            # its disk process mid-request).  Retract the request — or, if
            # the arm was already granted to us, free it and dispatch the
            # next waiter — so an abandoned grant cannot wedge the drive.
            if grant.triggered:
                self._arm_busy = False
                self._dispatch()
            else:
                self._pending.remove(request)
            raise

        start = self.sim.now
        sharing = sum(1 for d in self.hba_siblings() if d.busy)
        self.busy = True
        self.hba.command_begin()
        try:
            # Mechanical positioning plus bus/driver penalties.
            distance = abs(target - self.head_cylinder)
            rot = float(self._rng.uniform(0.0, self.params.rotation_time))
            penalty = self.hba.command_latency_penalty(sharing)
            yield self.sim.timeout(self.seek_time(distance) + rot + penalty)
            self.total_seek_distance += distance
            self.head_cylinder = target

            # Chain command overhead (selection, messaging).  The grant
            # wait sits inside the try so an interrupt landing there still
            # releases (= cancels) the bus claim.
            req = self.hba.bus.request()
            try:
                yield req
                yield self.sim.timeout(self.hba.params.command_overhead)
            finally:
                self.hba.bus.release(req)

            # Media-paced transfer, bursting chain+memory chunk by chunk.
            memory = self.machine.memory if self.machine is not None else None
            remaining = nbytes
            chunk = self.params.chunk_bytes
            while remaining > 0:
                step = min(chunk, remaining)
                media_t = step / self.params.media_rate
                bus_t = step / self.hba.params.burst_rate
                if media_t > bus_t:
                    yield self.sim.timeout(media_t - bus_t)
                req = self.hba.bus.request()
                try:
                    yield req
                    t0 = self.sim.now
                    if memory is not None:
                        mover = memory.dma_read(step) if write else memory.dma_write(step)
                        yield from mover
                    spent = self.sim.now - t0
                    if spent < bus_t:
                        yield self.sim.timeout(bus_t - spent)
                finally:
                    self.hba.bus.release(req)
                remaining -= step

            # Completion interrupt on the CPU.
            if self.machine is not None:
                yield from self.machine.cpu.execute(
                    self.machine.cpu.params.disk_interrupt_cost
                )
        finally:
            self.busy = False
            self.hba.command_end()
            self.busy_time += self.sim.now - start
            self._arm_busy = False
            self._dispatch()
        self.bytes_transferred += nbytes
        self.requests_served += 1

    def hba_siblings(self) -> list:
        """Other disks sharing this drive's SCSI chain."""
        if self.machine is None:
            return []
        return [d for d in self.machine.disks_on(self.hba) if d is not self]

    def throughput(self, elapsed: float) -> float:
        """Bytes/sec moved since construction over ``elapsed`` seconds."""
        return self.bytes_transferred / elapsed if elapsed > 0 else 0.0
