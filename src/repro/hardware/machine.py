"""A whole simulated PC: CPU, memory, timer, SCSI chains, disks and NICs."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hardware.cpu import Cpu
from repro.hardware.disk import DiskDrive, SeekPolicy
from repro.hardware.memory import MemoryBus
from repro.hardware.nic import NetworkInterface
from repro.hardware.params import MachineParams, NicParams
from repro.hardware.scsi import HostBusAdapter
from repro.hardware.timer import SystemTimer
from repro.sim import Simulator

__all__ = ["Machine"]


class Machine:
    """One PC assembled from the component models.

    ``params.disks_per_hba`` describes the SCSI topology, e.g. ``(2,)`` is
    Table 1's "2 disk (one HBA)" and ``(1, 1)`` its "2 disk (two HBA)".
    """

    def __init__(
        self,
        sim: Simulator,
        params: MachineParams = MachineParams(),
        seed: int = 0,
        disk_policy: SeekPolicy = SeekPolicy.FCFS,
    ):
        self.sim = sim
        self.params = params
        self.name = params.name
        self.cpu = Cpu(sim, params.cpu)
        self.memory = MemoryBus(sim, params.memory)
        self.timer = SystemTimer(sim, params.timer)
        self.hbas: List[HostBusAdapter] = []
        self.disks: List[DiskDrive] = []
        self._disks_by_hba: Dict[HostBusAdapter, List[DiskDrive]] = {}
        disk_index = 0
        for h, ndisks in enumerate(params.disks_per_hba):
            hba = HostBusAdapter(sim, params.scsi, name=f"{params.name}.bt{h}", machine=self)
            self.hbas.append(hba)
            self._disks_by_hba[hba] = []
            for _ in range(ndisks):
                disk = DiskDrive(
                    sim,
                    hba,
                    params.disk,
                    name=f"{params.name}.sd{disk_index}",
                    machine=self,
                    policy=disk_policy,
                    seed=seed * 1009 + disk_index + 1,
                )
                self.disks.append(disk)
                self._disks_by_hba[hba].append(disk)
                disk_index += 1
        self.cpu.attach_scsi_activity(self.active_hba_count, self.outstanding_commands)
        self.nics: Dict[str, NetworkInterface] = {}

    # -- NICs ---------------------------------------------------------------

    def add_nic(self, params: NicParams) -> NetworkInterface:
        """Install a network interface; its name must be unique."""
        if params.name in self.nics:
            raise ValueError(f"{self.name}: duplicate NIC {params.name!r}")
        nic = NetworkInterface(self.sim, self, params)
        self.nics[params.name] = nic
        return nic

    def nic(self, name: str) -> NetworkInterface:
        """Look up an installed NIC by name."""
        return self.nics[name]

    # -- SCSI activity (feeds the stall model) -------------------------------

    def active_hba_count(self, exclude: Optional[HostBusAdapter] = None) -> int:
        """HBAs with at least one command outstanding."""
        return sum(1 for h in self.hbas if h.active and h is not exclude)

    def outstanding_commands(self) -> int:
        """Commands in flight across every chain."""
        return sum(h.outstanding for h in self.hbas)

    def disks_on(self, hba: HostBusAdapter) -> List[DiskDrive]:
        """The disks attached to ``hba``."""
        return self._disks_by_hba[hba]

    def any_nic_active(self) -> bool:
        """True if any interface moved a packet very recently."""
        return any(nic.recently_active for nic in self.nics.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        topo = ",".join(str(len(v)) for v in self._disks_by_hba.values())
        return f"<Machine {self.name} disks/hba=({topo}) nics={list(self.nics)}>"
