"""CPU model: a single 66 MHz Pentium plus the I/O-stall pathology.

The CPU is a FIFO resource.  Besides ordinary ``execute`` holds, it exposes
:meth:`io_stall_time`, the extra latency suffered by I/O-instruction-heavy
operations when two or more SCSI host-bus adaptors have commands
outstanding — the hardware bug of §3.1 ("the sequence of instructions
needed to read the hardware timer ... often took 20 milliseconds with two
HBAs running").
"""

from __future__ import annotations

from typing import Generator

from repro.hardware.params import CpuParams
from repro.sim import Resource, Simulator

__all__ = ["Cpu"]


class Cpu:
    """A single processor with utilization accounting."""

    def __init__(self, sim: Simulator, params: CpuParams = CpuParams()):
        self.sim = sim
        self.params = params
        self._res = Resource(sim, capacity=1, name="cpu")
        self.busy_time = 0.0
        # Wired up by Machine: callables reporting SCSI activity.
        self._active_hba_count = lambda: 0
        self._outstanding_commands = lambda: 0

    def attach_scsi_activity(self, active_hbas, outstanding) -> None:
        """Connect the stall model to the machine's HBA registry."""
        self._active_hba_count = active_hbas
        self._outstanding_commands = outstanding

    def io_stall_time(self) -> float:
        """Current extra latency per I/O-heavy operation (0 when healthy)."""
        p = self.params
        if self._active_hba_count() < p.stall_hba_threshold:
            return 0.0
        extra_cmds = max(0, self._outstanding_commands() - 2)
        return p.io_stall_base + p.io_stall_per_command * extra_cmds

    def acquire(self):
        """Low-level claim on the CPU; yield the returned request event.

        Used by multi-phase paths (e.g. the NIC send path) that must hold
        the CPU across memory operations.  Pair with :meth:`release`.
        """
        return self._res.request()

    def release(self, req, busy: float = 0.0) -> None:
        """Release a claim from :meth:`acquire`, accounting ``busy`` secs."""
        self._res.release(req)
        if busy < 0:
            raise ValueError(f"negative busy time: {busy}")
        self.busy_time += busy

    def execute(self, duration: float) -> Generator:
        """Hold the CPU for ``duration`` seconds of work (FIFO queued)."""
        if duration < 0:
            raise ValueError(f"negative CPU time: {duration}")
        req = self._res.request()
        yield req
        try:
            yield self.sim.timeout(duration)
        finally:
            self._res.release(req)
        self.busy_time += duration

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent executing (0 if elapsed is 0)."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0
