"""The FreeBSD software clock with 10 ms granularity (§2.2.1).

Processes that pace packet delivery sleep via :meth:`SystemTimer.wait_until`
and therefore wake only on clock-tick boundaries, which is the source of the
schedule jitter the paper bounds at 150 ms worst case.  Setting
``granularity`` to 0 models the paper's Pentium-cycle-counter workaround
(precise wakeups) and is used by the timer-granularity ablation.
"""

from __future__ import annotations

import math
from typing import Generator

from repro.hardware.params import TimerParams
from repro.sim import Simulator

__all__ = ["SystemTimer"]


class SystemTimer:
    """Tick-quantized sleeping."""

    def __init__(self, sim: Simulator, params: TimerParams = TimerParams()):
        self.sim = sim
        self.params = params

    def next_tick_at_or_after(self, t: float) -> float:
        """The first tick boundary >= ``t`` (identity when granularity 0)."""
        g = self.params.granularity
        if g <= 0:
            return t
        # The 1e-9 guard keeps times already on a boundary from rounding up.
        return math.ceil(t / g - 1e-9) * g

    def wait_until(self, t: float) -> Generator:
        """Sleep until the first tick at or after ``t`` (no-op if past)."""
        target = self.next_tick_at_or_after(t)
        if target > self.sim.now:
            yield self.sim.sleep(target - self.sim.now)

    def sleep(self, duration: float) -> Generator:
        """Sleep at least ``duration`` seconds, waking on a tick."""
        if duration < 0:
            raise ValueError(f"negative sleep: {duration}")
        return self.wait_until(self.sim.now + duration)
