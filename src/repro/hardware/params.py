"""Calibrated hardware parameters for the simulated Micron Pentium testbed.

Each constant is annotated with the paper measurement it is calibrated
against.  The calibration targets (all in the paper's 10**6 byte/sec units)
come from Table 1 and §3 text:

* FDDI alone (ttcp, 4 KiB UDP):                      8.5 MB/s
* one disk alone (random 256 KiB raw reads):         3.6 MB/s
  ("70% of the maximum disk transfer bandwidth", §2.3.3)
* two disks, one HBA:                                2.8 MB/s each
* two disks, two HBAs:                               2.9 MB/s each
* three disks (2+1 over two HBAs):                   2.2 / 2.2 / 2.7 MB/s
* combined one disk + FDDI:                          disk 3.4, FDDI 5.9
* combined two disks (one HBA) + FDDI:               disks 2.4, FDDI 4.7
* combined two disks (two HBAs) + FDDI:              disks 2.7, FDDI 2.3
* combined three disks + FDDI:                       1.9/1.9/2.5, FDDI 1.4
* memory: read 53, write 25, copy 18 MB/s (§3.2.3)
* disk-less data path: theoretical 7.5 MB/s, measured ~6.3 MB/s (§3.2.3)

The dramatic FDDI collapse with two active HBAs reproduces the paper's
hardware pathology (§3.1): "in" and "out" instructions could take up to
20 ms when two HBAs were running, stalling interrupt service and the
network send path.  We model that as an extra CPU stall per packet send
that switches on when commands are outstanding on two or more HBAs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import KIB, ms, us

__all__ = [
    "DiskParams",
    "ScsiParams",
    "MemoryParams",
    "CpuParams",
    "NicParams",
    "TimerParams",
    "MachineParams",
    "FDDI",
    "ETHERNET_10",
]


@dataclass(frozen=True)
class DiskParams:
    """A 2 GB Seagate Barracuda-class mechanism.

    ``media_rate`` is the sustained head rate; a lone disk then reads random
    256 KiB blocks at ~3.6 MB/s, i.e. ~70 % of the 5.1 MB/s burst media
    bandwidth, matching §2.3.3's "70% of the maximum disk transfer
    bandwidth" and Table 1's one-disk cell.
    """

    capacity_bytes: int = 2_000_000_000
    cylinders: int = 2700
    rpm: float = 7200.0
    #: Fixed head-settle + command portion of every seek.
    seek_min: float = ms(1.6)
    #: Full-stroke seek adds this much (seek grows with sqrt of distance).
    seek_max_extra: float = ms(11.0)
    #: Sustained media transfer rate, bytes/sec.
    media_rate: float = 4.45e6
    #: Granularity at which a transfer claims buses and memory.
    chunk_bytes: int = 16 * KIB

    @property
    def rotation_time(self) -> float:
        """One full platter revolution, seconds."""
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency(self) -> float:
        """Expected rotational delay for a random request."""
        return self.rotation_time / 2.0


@dataclass(frozen=True)
class ScsiParams:
    """A Buslogic EISA fast-differential SCSI chain."""

    #: Burst rate from disk buffer over the chain (fast-differential SCSI).
    burst_rate: float = 10.0e6
    #: Per-command chain occupancy (selection, messaging, disconnects).
    command_overhead: float = ms(1.2)
    #: Extra per-command latency, scaled by sqrt(other outstanding commands)
    #: system wide (driver/interrupt serialization on the 66 MHz Pentium;
    #: fits the drop from 3.6 MB/s for one disk to ~2.8 each for two).
    per_command_load_penalty: float = ms(16.0)
    #: Extra per-command latency for each other active disk sharing this
    #: chain once >= 3 commands are outstanding system wide (fits the
    #: 2.2/2.2/2.7 split of the three-disk row).
    chain_share_penalty: float = ms(18.0)
    #: Extra per-command latency while a NIC is actively transmitting
    #: (interrupt and DMA interference; fits the combined-row disk drops).
    #: Applied as base + scale * sqrt(other outstanding commands).
    nic_active_base: float = ms(4.0)
    nic_active_penalty: float = ms(12.0)


@dataclass(frozen=True)
class MemoryParams:
    """Main-memory bandwidth of the Micron Pentium (§3.2.3)."""

    read_rate: float = 53.0e6
    write_rate: float = 25.0e6
    copy_rate: float = 18.0e6
    #: DMA (disk or NIC bus-master) writes move at the memory write rate.
    dma_write_rate: float = 25.0e6
    #: DMA reads move at the memory read rate.
    dma_read_rate: float = 53.0e6
    #: Max bytes a single memory-bus hold may cover (forces interleaving).
    chunk_bytes: int = 16 * KIB


@dataclass(frozen=True)
class CpuParams:
    """CPU costs and the two-HBA I/O-instruction stall pathology (§3.1)."""

    #: Per-UDP-packet fixed protocol/driver cost (syscall, headers, queueing)
    #: excluding memory movement.  Calibrated so FDDI-only = 8.5 MB/s.
    udp_send_overhead: float = us(100.0)
    #: Per-packet receive cost on the input path.
    udp_recv_overhead: float = us(80.0)
    #: CPU time to service a completed disk command (interrupt + driver).
    disk_interrupt_cost: float = ms(1.0)
    #: Extra stall added to every I/O-instruction-heavy operation (packet
    #: send, timer read) when >= ``stall_hba_threshold`` HBAs have commands
    #: outstanding.  Fits the FDDI 4.7 -> 2.3 collapse in Table 1.
    io_stall_base: float = ms(1.00)
    #: The stall grows with each outstanding command beyond two (fits the
    #: three-disk FDDI = 1.4 cell).
    io_stall_per_command: float = ms(0.90)
    stall_hba_threshold: int = 2
    #: Extra per-packet send cost per outstanding disk command, regardless
    #: of HBA count (driver-level interference; fits the combined-row FDDI
    #: drops 8.5 -> 5.9 -> 4.7).
    packet_disk_penalty: float = us(117.0)
    #: Cost of reading the hardware timer (the "4 microseconds" in §3.1).
    timer_read_cost: float = us(4.0)


@dataclass(frozen=True)
class NicParams:
    """A network interface (FDDI delivery side or Ethernet control side)."""

    name: str = "fddi0"
    #: Line rate in bytes/sec (FDDI: 100 Mbit/s).
    line_rate: float = 12.5e6
    #: Per-frame media overhead (token rotation, preamble, framing).
    frame_overhead: float = us(15.0)
    #: Output queue depth in packets; a full queue yields ENOBUFS and the
    #: sender retries after ``enobufs_backoff`` (ttcp's behaviour, §3.1).
    txq_depth: int = 50
    enobufs_backoff: float = ms(1.0)
    #: Per-packet header bytes added on the wire (UDP/IP/MAC).
    header_bytes: int = 46


FDDI = NicParams(name="fddi0", line_rate=12.5e6)
ETHERNET_10 = NicParams(
    name="ed0", line_rate=1.25e6, frame_overhead=us(40.0), txq_depth=50
)


@dataclass(frozen=True)
class TimerParams:
    """The FreeBSD software clock (§2.2.1: "timers have only 10 ms
    granularity, so delivery times are only approximate")."""

    granularity: float = ms(10.0)


@dataclass(frozen=True)
class MachineParams:
    """A whole MSU/Coordinator PC."""

    name: str = "pc0"
    disk: DiskParams = field(default_factory=DiskParams)
    scsi: ScsiParams = field(default_factory=ScsiParams)
    memory: MemoryParams = field(default_factory=MemoryParams)
    cpu: CpuParams = field(default_factory=CpuParams)
    timer: TimerParams = field(default_factory=TimerParams)
    #: disks per HBA, e.g. (2,) = one HBA with two disks; (2, 1) = two HBAs.
    disks_per_hba: tuple = (2,)
    ram_bytes: int = 32 * 1024 * 1024
