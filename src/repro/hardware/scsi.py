"""SCSI host-bus adaptor (chain) model.

Each HBA owns one SCSI chain shared by its disks: during a transfer the
disk streams from media into its on-drive buffer off-bus and bursts over
the chain at the fast-differential rate, so two disks on one chain overlap
seeks but serialize bursts.  The HBA also keeps the outstanding-command
registry that feeds the machine-wide stall model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hardware.params import ScsiParams
from repro.sim import Resource, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.machine import Machine

__all__ = ["HostBusAdapter"]


class HostBusAdapter:
    """One Buslogic EISA SCSI adaptor and its chain."""

    def __init__(
        self,
        sim: Simulator,
        params: ScsiParams = ScsiParams(),
        name: str = "bt0",
        machine: "Machine | None" = None,
    ):
        self.sim = sim
        self.params = params
        self.name = name
        self.machine = machine
        self.bus = Resource(sim, capacity=1, name=f"{name}.chain")
        self.outstanding = 0  # commands currently in flight on this chain
        self.commands_issued = 0

    @property
    def active(self) -> bool:
        """True while any command is outstanding on this chain."""
        return self.outstanding > 0

    def command_begin(self) -> None:
        """Record a new command entering the chain."""
        self.outstanding += 1
        self.commands_issued += 1

    def command_end(self) -> None:
        """Record a command completing."""
        if self.outstanding <= 0:
            raise RuntimeError(f"{self.name}: command_end without begin")
        self.outstanding -= 1

    def command_latency_penalty(self, sharing_disks_active: int) -> float:
        """Extra per-command latency from driver load and NIC interference.

        ``sharing_disks_active`` is the number of *other* disks on this
        chain that currently have commands in flight.  The remaining terms
        come from machine-wide state (total outstanding commands, NIC
        activity); calibration notes live in :class:`ScsiParams`.
        """
        p = self.params
        penalty = 0.0
        if self.machine is not None:
            others = max(0, self.machine.outstanding_commands() - 1)
            scale = others**0.5
            penalty += p.per_command_load_penalty * scale
            if sharing_disks_active > 0 and self.machine.outstanding_commands() >= 3:
                penalty += p.chain_share_penalty * sharing_disks_active
            if self.machine.any_nic_active():
                penalty += p.nic_active_base + p.nic_active_penalty * scale
        return penalty
