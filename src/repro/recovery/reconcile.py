"""Reconcile a replayed Coordinator against live MSU StateReports.

The journal is authoritative for durable facts — customers, the table of
contents, sessions, parked tickets.  For what is *streaming right now*
the MSUs are authoritative: terminations, patch drains and downgrades
that happened while the Coordinator was dead were sent into a closed
control channel and are gone forever.  So every discrepancy resolves
**MSU-wins**:

* a coordinator-side stream the MSU is not serving is dropped;
* an MSU-side stream the Coordinator has no record of is adopted as an
  orphan group (it keeps playing; its termination will clean it up);
* multicast channels and their subscriber sets are intersected the same
  way; pins follow the cache's reported reality; disk free-block counts
  come straight from the allocators.

Afterwards :func:`rebuild_books` recomputes every admission book from
the surviving allocations — charge by charge, in deterministic order —
so the post-recovery books equal a from-scratch reconciliation *by
construction* (:func:`expected_books` is that from-scratch sum, and E20
asserts byte-identical JSON between the two).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.admission import Allocation
from repro.failover.migrator import StreamMeta
from repro.net import messages as m

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.coordinator import Coordinator

__all__ = ["RecoveryOutcome", "reconcile", "rebuild_books", "expected_books",
           "books_state"]


@dataclass
class RecoveryOutcome:
    """What one Coordinator restart found and fixed (metrics/report)."""

    time_to_recover: float = 0.0
    wal_records: int = 0
    snapshot_seq: int = 0
    msus_reported: int = 0
    msus_missing: int = 0
    streams_kept: int = 0
    streams_dropped: int = 0
    streams_adopted: int = 0
    channels_kept: int = 0
    channels_dropped: int = 0
    channels_adopted: int = 0
    subscribers_dropped: int = 0
    pins_reset: int = 0
    tickets_recovered: int = 0
    discrepancies: List[str] = field(default_factory=list)


def reconcile(
    coord: "Coordinator",
    reports: Sequence[m.StateReport],
    missing: Sequence[str] = (),
) -> RecoveryOutcome:
    """Resolve replayed state against MSU truth; returns the outcome."""
    outcome = RecoveryOutcome(
        msus_reported=len(reports), msus_missing=len(missing)
    )
    # An expected MSU that never reported is treated exactly like a broken
    # control connection: drop its groups, queue resume tickets, zero it.
    for name in sorted(missing):
        outcome.discrepancies.append(f"{name}: no StateReport; declared failed")
        coord._msu_failed(name, reason="no-state-report")

    by_msu = {report.msu_name: report for report in reports}
    _reconcile_disks(coord, reports)
    _reconcile_streams(coord, by_msu, outcome)
    _reconcile_channels(coord, by_msu, outcome)
    _reconcile_live(coord, by_msu, outcome)
    _reconcile_pins(coord, reports, outcome)
    if coord.placement is not None:
        outcome.discrepancies.extend(coord.placement.reconcile_edges())
    rebuild_books(coord)
    outcome.tickets_recovered = len(coord.admission.queue)
    return outcome


def _reconcile_disks(coord, reports) -> None:
    """Free-block truth comes straight from the MSU allocators."""
    for report in reports:
        state = coord.db.msus.get(report.msu_name)
        if state is None:
            state = coord.db.register_msu(
                report.msu_name,
                [(disk_id, free) for disk_id, free in report.disks],
                report.cache_bps,
            )
            continue
        state.available = True
        state.cache_capacity = report.cache_bps
        for disk_id, free in report.disks:
            disk = state.disks.get(disk_id)
            if disk is not None:
                disk.free_blocks = free


def _reconcile_streams(coord, by_msu, outcome) -> None:
    from repro.core.coordinator import GroupRecord

    streams_at: Dict[str, Dict[Tuple[int, int], Tuple[str, str, str, float]]] = {}
    subscribers_at: Dict[str, Dict[Tuple[int, int], int]] = {}
    for name, report in by_msu.items():
        streams_at[name] = {
            (gid, sid): (content, disk_id, kind, rate)
            for gid, sid, content, disk_id, kind, rate in report.streams
        }
        subs: Dict[Tuple[int, int], int] = {}
        for channel_id, _gid, _sid, _content, _disk, pairs in report.channels:
            for sub_gid, sub_sid in pairs:
                subs[(sub_gid, sub_sid)] = channel_id
        # Live channels report separately; fold their fan-out streams and
        # viewer memberships in so those groups are kept (or adopted) by
        # the same MSU-wins rules as everything else.
        for channel_id, gid, sid, content, disk_id, rate, pairs in (
            report.live_channels
        ):
            streams_at[name][(gid, sid)] = (content, disk_id, "play", rate)
            for sub_gid, sub_sid in pairs:
                subs[(sub_gid, sub_sid)] = channel_id
        subscribers_at[name] = subs

    # Drop coordinator-side streams the MSU is not serving.
    for group in sorted(coord.groups.values(), key=lambda g: g.group_id):
        if group.msu_name not in by_msu:
            continue
        serving = streams_at[group.msu_name]
        subs = subscribers_at[group.msu_name]
        stream_ids = (
            set(group.allocations) | set(group.streams) | set(group.recordings)
        )
        for stream_id in sorted(stream_ids):
            key = (group.group_id, stream_id)
            if key in serving or key in subs:
                outcome.streams_kept += 1
                continue
            group.allocations.pop(stream_id, None)
            group.streams.pop(stream_id, None)
            recording = group.recordings.pop(stream_id, None)
            outcome.streams_dropped += 1
            what = "recording" if recording else "stream"
            outcome.discrepancies.append(
                f"{group.msu_name}: {what} {group.group_id}/{stream_id} "
                f"not serving; dropped"
            )
        if not group.allocations and not group.streams and not group.recordings:
            coord.groups.pop(group.group_id, None)
            session = coord.sessions.lookup(group.session_id)
            if session is not None:
                session.drop_group(group.group_id)

    # Adopt MSU-side streams the Coordinator has no record of.
    known = set()
    for group in coord.groups.values():
        for stream_id in (
            set(group.allocations) | set(group.streams) | set(group.recordings)
        ):
            known.add((group.group_id, stream_id))
    for name in sorted(by_msu):
        for key in sorted(streams_at[name]):
            if key in known:
                continue
            group_id, stream_id = key
            content, disk_id, kind, rate = streams_at[name][key]
            entry = coord.db.contents.get(content)
            group = coord.groups.get(group_id)
            if group is None:
                group = GroupRecord(group_id, 0, name)
                coord.groups[group_id] = group
            group.allocations[stream_id] = Allocation(
                name, disk_id, rate,
                content_name=content if entry is not None else "",
            )
            if kind == "record":
                group.recordings[stream_id] = (
                    content, entry.type_name if entry is not None else ""
                )
            else:
                group.streams[stream_id] = StreamMeta(
                    content, entry.type_name if entry is not None else "", ("", 0)
                )
            coord._next_group = max(coord._next_group, group_id + 1)
            coord._next_stream = max(coord._next_stream, stream_id + 1)
            outcome.streams_adopted += 1
            outcome.discrepancies.append(
                f"{name}: unknown {kind} {group_id}/{stream_id} "
                f"({content!r}); adopted"
            )


def _reconcile_channels(coord, by_msu, outcome) -> None:
    manager = coord.channel_manager
    if manager is None:
        return
    channels_at: Dict[str, Dict[int, tuple]] = {}
    for name, report in by_msu.items():
        channels_at[name] = {entry[0]: entry for entry in report.channels}

    for channel_id in sorted(manager.channels):
        record = manager.channels[channel_id]
        if record.msu_name not in by_msu:
            continue
        reported = channels_at[record.msu_name].get(channel_id)
        if reported is None:
            # The channel drained during the outage.
            manager.channels.pop(channel_id, None)
            record.released = True
            manager._channel_groups.pop(record.group_id, None)
            for gid in record.subscribers:
                manager._subscriber_groups.pop(gid, None)
            manager.ledger.close_channel(channel_id, forced=True)
            outcome.channels_dropped += 1
            outcome.discrepancies.append(
                f"{record.msu_name}: channel {channel_id} not serving; closed"
            )
            continue
        outcome.channels_kept += 1
        live_subs = {gid: sid for gid, sid in reported[5]}
        for gid in sorted(set(record.subscribers) - set(live_subs)):
            record.subscribers.pop(gid, None)
            manager._subscriber_groups.pop(gid, None)
            manager.ledger.refund_patch(channel_id, gid)
            outcome.subscribers_dropped += 1
            outcome.discrepancies.append(
                f"{record.msu_name}: channel {channel_id} subscriber "
                f"{gid} gone; detached"
            )
        for gid in sorted(set(live_subs) - set(record.subscribers)):
            record.subscribers[gid] = live_subs[gid]
            manager._subscriber_groups[gid] = channel_id
            outcome.discrepancies.append(
                f"{record.msu_name}: channel {channel_id} subscriber "
                f"{gid} unknown; adopted"
            )

    # Channels the MSU serves that the Coordinator has no record of.
    for name in sorted(by_msu):
        for channel_id in sorted(channels_at[name]):
            if channel_id in manager.channels:
                continue
            _cid, group_id, stream_id, content, disk_id, pairs = (
                channels_at[name][channel_id]
            )
            entry = coord.db.contents.get(content)
            ctype = coord.types.get(entry.type_name) if entry is not None else None
            rate = ctype.bandwidth_rate if ctype is not None else 0.0
            from repro.multicast.channel import ChannelRecord
            from repro.net.network import MULTICAST_PREFIX

            record = ChannelRecord(
                channel_id=channel_id,
                content_name=content,
                msu_name=name,
                disk_id=disk_id,
                group_id=group_id,
                stream_id=stream_id,
                rate=rate,
                started_at=coord.sim.now,
                duration_us=entry.duration_us if entry is not None else 0,
                blocks=entry.blocks if entry is not None else 0,
                allocation=Allocation(name, disk_id, rate, content_name=content),
                mcast_host=f"{MULTICAST_PREFIX}{name}:ch{channel_id}",
            )
            for gid, sid in pairs:
                record.subscribers[gid] = sid
                manager._subscriber_groups[gid] = channel_id
            manager.channels[channel_id] = record
            manager._channel_groups[group_id] = channel_id
            manager.ledger.open_channel(channel_id, content, rate)
            manager._next_channel = max(manager._next_channel, channel_id + 1)
            coord._next_group = max(coord._next_group, group_id + 1)
            coord._next_stream = max(coord._next_stream, stream_id + 1)
            outcome.channels_adopted += 1
            outcome.discrepancies.append(
                f"{name}: unknown channel {channel_id} ({content!r}); adopted"
            )


def _reconcile_live(coord, by_msu, outcome) -> None:
    """MSU-wins for live channels: the broadcast the MSU runs is real."""
    manager = coord.live_manager
    if manager is None:
        return
    live_at: Dict[str, Dict[int, tuple]] = {}
    for name, report in by_msu.items():
        live_at[name] = {entry[0]: entry for entry in report.live_channels}

    for channel_id in sorted(manager.channels):
        record = manager.channels[channel_id]
        if record.msu_name not in by_msu:
            continue
        reported = live_at[record.msu_name].get(channel_id)
        if reported is None:
            # The broadcast ended (or died) during the outage.  Its
            # groups were already dropped stream-by-stream above; this
            # only forgets the manager record.
            manager.drop_channel(channel_id)
            manager.channels_closed += 1
            outcome.channels_dropped += 1
            outcome.discrepancies.append(
                f"{record.msu_name}: live channel {channel_id} off the "
                f"air; closed"
            )
            continue
        outcome.channels_kept += 1
        live_subs = {gid: sid for gid, sid in reported[6]}
        for gid in sorted(set(record.subscribers) - set(live_subs)):
            record.subscribers.pop(gid, None)
            manager._subscriber_groups.pop(gid, None)
            outcome.subscribers_dropped += 1
            outcome.discrepancies.append(
                f"{record.msu_name}: live channel {channel_id} viewer "
                f"{gid} gone; detached"
            )
        for gid in sorted(set(live_subs) - set(record.subscribers)):
            record.subscribers[gid] = live_subs[gid]
            manager._subscriber_groups[gid] = channel_id
            outcome.discrepancies.append(
                f"{record.msu_name}: live channel {channel_id} viewer "
                f"{gid} unknown; adopted"
            )
        # An ingest that signed off while the Coordinator was dead.
        streams = {
            (gid, sid)
            for gid, sid, _c, _d, _k, _r in by_msu[record.msu_name].streams
        }
        if (
            not record.ingest_done
            and (record.ingest_group_id, record.ingest_stream_id)
            not in streams
        ):
            record.ingest_done = True
            manager._ingest_groups.pop(record.ingest_group_id, None)
            outcome.discrepancies.append(
                f"{record.msu_name}: live channel {channel_id} ingest "
                f"finished during outage"
            )

    # Broadcasts the MSU runs that the Coordinator has no record of.
    for name in sorted(by_msu):
        records_by_kind = {
            (gid, sid): (content, kind)
            for gid, sid, content, _d, kind, _r in by_msu[name].streams
        }
        for channel_id in sorted(live_at[name]):
            if channel_id in manager.channels:
                continue
            _cid, group_id, stream_id, content, disk_id, rate, pairs = (
                live_at[name][channel_id]
            )
            entry = coord.db.contents.get(content)
            ingest_gid, ingest_sid = 0, -1
            for (gid, sid), (c, kind) in sorted(records_by_kind.items()):
                if kind == "record" and c == content:
                    ingest_gid, ingest_sid = gid, sid
                    break
            from repro.live.manager import LiveChannelRecord
            from repro.net.network import MULTICAST_PREFIX

            record = LiveChannelRecord(
                channel_id=channel_id,
                content_name=content,
                type_name=entry.type_name if entry is not None else "",
                msu_name=name,
                disk_id=disk_id,
                group_id=group_id,
                stream_id=stream_id,
                ingest_group_id=ingest_gid,
                ingest_stream_id=ingest_sid,
                rate=rate,
                started_at=coord.sim.now,
                ring_blocks=0,
                dvr=False,
                mcast_host=f"{MULTICAST_PREFIX}{name}:live{channel_id}",
                source_host="",
            )
            record.ingest_done = ingest_sid < 0
            for gid, sid in pairs:
                record.subscribers[gid] = sid
            manager._install(record)
            manager.channels_opened += 1
            coord._next_group = max(coord._next_group, group_id + 1)
            coord._next_stream = max(coord._next_stream, stream_id + 1)
            outcome.channels_adopted += 1
            outcome.discrepancies.append(
                f"{name}: unknown live channel {channel_id} ({content!r}); "
                f"adopted"
            )


def _reconcile_pins(coord, reports, outcome) -> None:
    """A title is pinned iff its home MSU's cache says so."""
    for report in reports:
        pinned = {
            (disk_id, content)
            for disk_id, content, pages in report.pins
            if pages > 0
        }
        for entry in coord.db.contents.values():
            if entry.msu_name != report.msu_name:
                continue
            key = (entry.disk_id, entry.name)
            if entry.prefix_pinned and key not in pinned:
                entry.prefix_pinned = False
                outcome.pins_reset += 1
                outcome.discrepancies.append(
                    f"{report.msu_name}: prefix of {entry.name!r} not pinned; "
                    f"flag reset"
                )
            elif not entry.prefix_pinned and key in pinned:
                entry.prefix_pinned = True


def rebuild_books(coord: "Coordinator") -> None:
    """Recompute every admission book from the surviving allocations.

    Charges are re-applied in deterministic order (groups by id, streams
    by id, then channels by id) so the result is bit-identical to
    :func:`expected_books`.  Free-block counts are *not* touched: they
    were just set from allocator truth, which already accounts for
    recording reservations MSU-side.
    """
    db = coord.db
    for state in db.msus.values():
        state.delivery_used = 0.0
        state.active_streams = 0
        state.cache_used = 0.0
        for disk in state.disks.values():
            disk.bandwidth_used = 0.0
    for entry in db.contents.values():
        entry.active.clear()
    if coord.shards is not None:
        # Escrow spends re-derive through the observer as each charge
        # below re-applies; grants stay as replayed (they are durable).
        coord.shards.reset_spent()
    for group in sorted(coord.groups.values(), key=lambda g: g.group_id):
        for stream_id in sorted(group.allocations):
            coord.admission.apply(
                group.allocations[stream_id], reserve_blocks=False
            )
    manager = coord.channel_manager
    if manager is not None:
        for channel_id in sorted(manager.channels):
            record = manager.channels[channel_id]
            if not record.released:
                coord.admission.apply(record.allocation, reserve_blocks=False)


def books_state(coord: "Coordinator") -> dict:
    """The *actual* admission books in canonical JSON-safe form."""
    state: dict = {"msus": {}, "active": {}}
    for name in sorted(coord.db.msus):
        msu = coord.db.msus[name]
        state["msus"][name] = {
            "delivery_used": msu.delivery_used,
            "cache_used": msu.cache_used,
            "active_streams": msu.active_streams,
            "disks": {
                disk_id: msu.disks[disk_id].bandwidth_used
                for disk_id in sorted(msu.disks)
            },
        }
    for content_name in sorted(coord.db.contents):
        entry = coord.db.contents[content_name]
        if entry.active:
            state["active"][content_name] = {
                f"{loc[0]}/{loc[1]}": count
                for loc, count in sorted(entry.active.items())
            }
    return state


def expected_books(coord: "Coordinator") -> dict:
    """The books a from-scratch reconciliation would produce.

    Sums the surviving allocations in exactly :func:`rebuild_books`'
    order, so immediately after a recovery ``books_state(coord) ==
    expected_books(coord)`` holds with float equality, not just within
    epsilon.
    """
    delivery: Dict[str, float] = {}
    cache: Dict[str, float] = {}
    streams: Dict[str, int] = {}
    disk_bw: Dict[Tuple[str, str], float] = {}
    active: Dict[str, Dict[Tuple[str, str], int]] = {}

    def _apply(alloc: Allocation) -> None:
        delivery[alloc.msu_name] = (
            delivery.get(alloc.msu_name, 0.0) + alloc.bandwidth
        )
        streams[alloc.msu_name] = streams.get(alloc.msu_name, 0) + 1
        if alloc.cache_covered:
            cache[alloc.msu_name] = (
                cache.get(alloc.msu_name, 0.0) + alloc.bandwidth
            )
        else:
            key = (alloc.msu_name, alloc.disk_id)
            disk_bw[key] = disk_bw.get(key, 0.0) + alloc.bandwidth
        if alloc.content_name and alloc.content_name in coord.db.contents:
            counts = active.setdefault(alloc.content_name, {})
            loc = (alloc.msu_name, alloc.disk_id)
            counts[loc] = counts.get(loc, 0) + 1

    for group in sorted(coord.groups.values(), key=lambda g: g.group_id):
        for stream_id in sorted(group.allocations):
            _apply(group.allocations[stream_id])
    manager = coord.channel_manager
    if manager is not None:
        for channel_id in sorted(manager.channels):
            record = manager.channels[channel_id]
            if not record.released:
                _apply(record.allocation)

    state: dict = {"msus": {}, "active": {}}
    for name in sorted(coord.db.msus):
        msu = coord.db.msus[name]
        state["msus"][name] = {
            "delivery_used": delivery.get(name, 0.0),
            "cache_used": cache.get(name, 0.0),
            "active_streams": streams.get(name, 0),
            "disks": {
                disk_id: disk_bw.get((name, disk_id), 0.0)
                for disk_id in sorted(msu.disks)
            },
        }
    for content_name in sorted(active):
        state["active"][content_name] = {
            f"{loc[0]}/{loc[1]}": count
            for loc, count in sorted(active[content_name].items())
        }
    return state
