"""Coordinator crash recovery: WAL, snapshots, MSU-state reconciliation."""

from repro.recovery.journal import JournalRecord, JournalStore, RecoveryConfig
from repro.recovery.reconcile import (
    RecoveryOutcome,
    books_state,
    expected_books,
    rebuild_books,
    reconcile,
)
from repro.recovery.replay import apply_record, recover
from repro.recovery.snapshot import restore_state, snapshot_state

__all__ = [
    "RecoveryConfig",
    "JournalRecord",
    "JournalStore",
    "snapshot_state",
    "restore_state",
    "apply_record",
    "recover",
    "reconcile",
    "rebuild_books",
    "expected_books",
    "books_state",
    "RecoveryOutcome",
]
