"""WAL replay: re-apply journal records to a fresh Coordinator.

Each :class:`~repro.recovery.journal.JournalRecord` kind maps to one
handler that repeats the original mutation.  The vocabulary splits
cleanly in two:

* **book records** (``charge``, ``release``, ``release-msu``) mutate the
  admission books only, exactly as :class:`AdmissionControl` did live;
* **structural records** (everything else) mutate tables — customers,
  contents, sessions, groups, tickets, multicast channels — and never
  touch the books.

Because every live mutation journals exactly one of the two, replay
never double-applies anything.  Journaling hooks are quiescent during
replay (a recovering Coordinator has no journal attached yet), so the
handlers call the same database/admission methods the live path uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.admission import allocation_from_state
from repro.core.database import entry_from_state
from repro.recovery.journal import JournalStore
from repro.recovery.snapshot import (
    channel_record_from_state,
    group_from_state,
    port_from_state,
    restore_state,
    session_from_state,
    ticket_from_state,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.coordinator import Coordinator

__all__ = ["apply_record", "recover"]


def recover(coord: "Coordinator", store: JournalStore) -> int:
    """Restore the snapshot, replay the WAL tail; returns records replayed.

    The caller attaches the journal *afterwards* — replay itself must not
    generate new records.
    """
    was_replaying = False
    if coord.shards is not None:
        # Escrow moves arrive as replayed records; the observer hooks
        # must not originate fresh refills/steals mid-replay.
        was_replaying = coord.shards.replaying
        coord.shards.replaying = True
    try:
        if store.snapshot is not None:
            restore_state(coord, store.snapshot)
        for record in store.records:
            apply_record(coord, record.kind, record.payload)
    finally:
        if coord.shards is not None:
            coord.shards.replaying = was_replaying or coord.standby
    return len(store.records)


def apply_record(coord: "Coordinator", kind: str, payload: dict) -> None:
    """Re-apply one journaled mutation to ``coord``."""
    handler = _HANDLERS.get(kind)
    if handler is None:
        raise ValueError(f"unknown journal record kind: {kind!r}")
    handler(coord, payload)


# -- admin database -----------------------------------------------------------

def _customer_add(coord, p):
    coord.db.add_customer(p["name"], p.get("admin", False))


def _content_add(coord, p):
    coord.db.add_content(entry_from_state(p["entry"]))


def _content_remove(coord, p):
    coord.db.contents.pop(p["name"], None)


def _content_replica(coord, p):
    entry = coord.db.contents.get(p["name"])
    if entry is not None:
        entry.add_replica(p["msu_name"], p["disk_id"])


def _note_request(coord, p):
    entry = coord.db.contents.get(p["name"])
    if entry is not None:
        entry.request_count += 1


def _content_played(coord, p):
    entry = coord.db.contents.get(p["name"])
    if entry is not None:
        entry.play_count += p.get("count", 1)


def _msu_register(coord, p):
    coord.db.register_msu(
        p["name"],
        [(disk_id, free) for disk_id, free in p.get("disks", ())],
        p.get("cache_bps", 0.0),
    )


def _msu_down(coord, p):
    coord.db.mark_msu_down(p["name"])


def _disk_adjust(coord, p):
    coord.db.adjust_free_blocks(p["msu_name"], p["disk_id"], p["delta"])


def _prefix_pin(coord, p):
    entry = coord.db.contents.get(p["name"])
    if entry is not None:
        entry.prefix_pinned = True


# -- admission books ----------------------------------------------------------

def _charge(coord, p):
    coord.admission.apply(allocation_from_state(p["alloc"]))


def _release(coord, p):
    coord.admission.release(
        allocation_from_state(p["alloc"]), p.get("blocks_used", 0)
    )


def _release_msu(coord, p):
    coord.admission.release_msu(p["name"])


# -- escrowed shard books (repro.scaleout) ------------------------------------

def _shard_grant(coord, p):
    if coord.shards is not None:
        coord.shards.apply_grant(p)


def _shard_steal(coord, p):
    if coord.shards is not None:
        coord.shards.apply_steal(p)


# -- sessions -----------------------------------------------------------------

def _session_open(coord, p):
    session = session_from_state(
        {
            "session_id": p["session_id"],
            "customer": p["customer"],
            "client_host": p["client_host"],
        },
        coord.db.customers,
    )
    coord.sessions._sessions[session.session_id] = session
    coord.sessions._next_id = max(
        coord.sessions._next_id, session.session_id + 1
    )


def _session_close(coord, p):
    coord.sessions._sessions.pop(p["session_id"], None)


def _port_add(coord, p):
    session = coord.sessions.lookup(p["session_id"])
    if session is not None:
        port = port_from_state(p["port"])
        session.ports[port.name] = port


# -- stream groups ------------------------------------------------------------

def _group_open(coord, p):
    group = group_from_state(p["group"])
    coord.groups[group.group_id] = group
    session = coord.sessions.lookup(group.session_id)
    if session is not None and group.group_id not in session.active_groups:
        session.active_groups.append(group.group_id)
    coord._next_group = max(coord._next_group, group.group_id + 1)
    stream_ids = (
        set(group.allocations) | set(group.streams) | set(group.recordings)
    )
    if stream_ids:
        coord._next_stream = max(coord._next_stream, max(stream_ids) + 1)


def _group_drop(coord, p):
    group = coord.groups.pop(p["group_id"], None)
    if group is not None:
        session = coord.sessions.lookup(group.session_id)
        if session is not None:
            session.drop_group(group.group_id)
    for name in p.get("dropped_contents", ()):
        coord.db.contents.pop(name, None)


def _stream_end(coord, p):
    group = coord.groups.get(p["group_id"])
    if group is None:
        return
    stream_id = p["stream_id"]
    group.allocations.pop(stream_id, None)  # the book release has its own record
    recording = group.recordings.pop(stream_id, None)
    if recording is not None and p.get("reason") == "record-complete":
        entry = coord.db.contents.get(recording[0])
        if entry is not None:
            entry.blocks = p.get("recorded_blocks", 0)
    if not group.allocations and not group.recordings:
        coord.groups.pop(group.group_id, None)
        session = coord.sessions.lookup(group.session_id)
        if session is not None:
            session.drop_group(group.group_id)


# -- scheduling-queue tickets -------------------------------------------------

def _ticket_add(coord, p):
    request = ticket_from_state(p)
    coord.admission.enqueue(request)
    coord._next_ticket = max(coord._next_ticket, request.ticket_id + 1)


def _ticket_remove(coord, p):
    ticket_id = p["ticket_id"]
    for request in list(coord.admission.queue):
        if getattr(request, "ticket_id", 0) == ticket_id:
            coord.admission.queue.remove(request)
            break


# -- edge tier ----------------------------------------------------------------

def _placement(coord):
    return coord.placement


def _edge_attach(coord, p):
    placement = _placement(coord)
    if placement is not None:
        placement.replay_attach(p)


def _edge_down(coord, p):
    placement = _placement(coord)
    if placement is not None:
        placement.replay_down(p)


def _edge_place(coord, p):
    placement = _placement(coord)
    if placement is not None:
        placement.replay_place(p)


def _edge_evict(coord, p):
    placement = _placement(coord)
    if placement is not None:
        placement.replay_evict(p)


def _edge_serve(coord, p):
    # The uplink charge replays through its own "charge" record; this
    # only rebuilds the serve registry entry.
    placement = _placement(coord)
    if placement is not None:
        placement.replay_serve(p)


def _edge_serve_done(coord, p):
    placement = _placement(coord)
    if placement is not None:
        placement.replay_serve_done(p)


# -- multicast channels -------------------------------------------------------

def _manager(coord):
    return coord.channel_manager


def _mcast_open(coord, p):
    manager = _manager(coord)
    if manager is None:
        return
    record = channel_record_from_state(p["channel"])
    manager.channels[record.channel_id] = record
    manager._channel_groups[record.group_id] = record.channel_id
    for gid in record.subscribers:
        manager._subscriber_groups[gid] = record.channel_id
    manager.channels_created += 1
    manager.ledger.open_channel(
        record.channel_id, record.content_name, record.allocation.bandwidth
    )
    manager._next_channel = max(manager._next_channel, record.channel_id + 1)
    coord._next_group = max(coord._next_group, record.group_id + 1)
    coord._next_stream = max(coord._next_stream, record.stream_id + 1)


def _mcast_subscribe(coord, p):
    manager = _manager(coord)
    if manager is None:
        return
    record = manager.channels.get(p["channel_id"])
    if record is None:
        return
    record.subscribers[p["group_id"]] = p["stream_id"]
    record.viewers_total += 1
    record.peak_subscribers = max(
        record.peak_subscribers, len(record.subscribers)
    )
    manager._subscriber_groups[p["group_id"]] = record.channel_id
    manager.ledger.note_subscriber(record.channel_id)
    manager.viewers_joined += 1


def _mcast_patch(coord, p):
    manager = _manager(coord)
    if manager is None:
        return
    manager.ledger.charge_patch(
        p["channel_id"], p["group_id"], p["rate"], p.get("cache_covered", False)
    )


def _mcast_merge(coord, p):
    manager = _manager(coord)
    if manager is None:
        return
    group = coord.groups.get(p["group_id"])
    if group is not None:
        group.allocations.pop(p["stream_id"], None)
    if manager.ledger.refund_patch(p["channel_id"], p["group_id"]):
        manager.merges += 1


def _mcast_downgrade(coord, p):
    manager = _manager(coord)
    if manager is None:
        return
    group_id = p["group_id"]
    manager.ledger.refund_patch(p["channel_id"], group_id)
    record = manager.channels.get(p["channel_id"])
    if record is not None:
        record.subscribers.pop(group_id, None)
    manager._subscriber_groups.pop(group_id, None)
    group = coord.groups.get(group_id)
    if group is not None:
        group.allocations[p["stream_id"]] = allocation_from_state(p["alloc"])
    manager.downgrades += 1


def _mcast_detach(coord, p):
    manager = _manager(coord)
    if manager is None:
        return
    record = manager.channels.get(p["channel_id"])
    if record is not None:
        record.subscribers.pop(p["group_id"], None)
    manager._subscriber_groups.pop(p["group_id"], None)
    manager.ledger.refund_patch(p["channel_id"], p["group_id"])


def _mcast_close(coord, p):
    manager = _manager(coord)
    if manager is None:
        return
    record = manager.channels.pop(p["channel_id"], None)
    if record is not None:
        record.released = True
        manager._channel_groups.pop(record.group_id, None)
        for gid in record.subscribers:
            manager._subscriber_groups.pop(gid, None)
    manager.ledger.close_channel(p["channel_id"], forced=p.get("forced", False))


# -- live channels ------------------------------------------------------------

def _live(coord):
    return coord.live_manager


def _live_epg(coord, p):
    manager = _live(coord)
    if manager is not None:
        manager.fired.add(p["index"])


def _live_open(coord, p):
    manager = _live(coord)
    if manager is None:
        return
    from repro.recovery.snapshot import live_record_from_state

    record = live_record_from_state(p["channel"])
    manager._install(record)
    manager.channels_opened += 1
    coord._next_group = max(
        coord._next_group,
        max(record.group_id, record.ingest_group_id) + 1,
    )
    coord._next_stream = max(
        coord._next_stream,
        max(record.stream_id, record.ingest_stream_id) + 1,
    )


def _live_tune(coord, p):
    manager = _live(coord)
    if manager is None:
        return
    record = manager.channels.get(p["channel_id"])
    if record is None:
        return
    record.subscribers[p["group_id"]] = p["stream_id"]
    record.viewers_total += 1
    record.peak_subscribers = max(
        record.peak_subscribers, len(record.subscribers)
    )
    manager._subscriber_groups[p["group_id"]] = record.channel_id
    manager.viewers_joined += 1


def _live_rewind(coord, p):
    manager = _live(coord)
    if manager is None:
        return
    # The charge replays through its own "charge" record; here we only
    # pin the allocation back onto the viewer's group so a later merge
    # (or termination) finds it to refund.
    group = coord.groups.get(p["group_id"])
    if group is not None:
        group.allocations[p["stream_id"]] = allocation_from_state(p["alloc"])
    manager.rewinds += 1
    if p.get("hit", True):
        manager.rewind_hits += 1


def _live_merge(coord, p):
    manager = _live(coord)
    if manager is None:
        return
    group = coord.groups.get(p["group_id"])
    if group is not None:
        group.allocations.pop(p["stream_id"], None)
    manager.merges += 1


def _live_ingest_done(coord, p):
    manager = _live(coord)
    if manager is None:
        return
    record = manager.channels.get(p["channel_id"])
    if record is not None:
        record.ingest_done = True
        manager._ingest_groups.pop(record.ingest_group_id, None)


def _live_detach(coord, p):
    manager = _live(coord)
    if manager is None:
        return
    record = manager.channels.get(p["channel_id"])
    if record is not None:
        record.subscribers.pop(p["group_id"], None)
    manager._subscriber_groups.pop(p["group_id"], None)


def _live_close(coord, p):
    manager = _live(coord)
    if manager is None:
        return
    # Books and content moves were journaled separately.
    manager.drop_channel(p["channel_id"])
    manager.channels_closed += 1


_HANDLERS = {
    "customer-add": _customer_add,
    "content-add": _content_add,
    "content-remove": _content_remove,
    "content-replica": _content_replica,
    "note-request": _note_request,
    "content-played": _content_played,
    "msu-register": _msu_register,
    "msu-down": _msu_down,
    "disk-adjust": _disk_adjust,
    "prefix-pin": _prefix_pin,
    "charge": _charge,
    "release": _release,
    "release-msu": _release_msu,
    "shard-grant": _shard_grant,
    "shard-steal": _shard_steal,
    "session-open": _session_open,
    "session-close": _session_close,
    "port-add": _port_add,
    "group-open": _group_open,
    "group-drop": _group_drop,
    "stream-end": _stream_end,
    "ticket-add": _ticket_add,
    "ticket-remove": _ticket_remove,
    "edge-attach": _edge_attach,
    "edge-down": _edge_down,
    "edge-place": _edge_place,
    "edge-evict": _edge_evict,
    "edge-serve": _edge_serve,
    "edge-serve-done": _edge_serve_done,
    "mcast-open": _mcast_open,
    "mcast-subscribe": _mcast_subscribe,
    "mcast-patch": _mcast_patch,
    "mcast-merge": _mcast_merge,
    "mcast-downgrade": _mcast_downgrade,
    "mcast-detach": _mcast_detach,
    "mcast-close": _mcast_close,
    "live-epg": _live_epg,
    "live-open": _live_open,
    "live-tune": _live_tune,
    "live-rewind": _live_rewind,
    "live-merge": _live_merge,
    "live-ingest-done": _live_ingest_done,
    "live-detach": _live_detach,
    "live-close": _live_close,
}
