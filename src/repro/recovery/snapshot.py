"""Whole-Coordinator state images (the snapshot half of the WAL recipe).

:func:`snapshot_state` serializes everything the Coordinator would lose
in a crash — customers, the table of contents, MSU resource books,
sessions, stream groups, the multicast manager, the admission ledger and
the scheduling queue — into one JSON-safe dict.  :func:`restore_state`
is its exact inverse, applied to a freshly constructed Coordinator.

Only durable control-plane state is captured.  Live wiring (control
channels, heartbeat records, in-flight batch windows) is deliberately
absent: channels are re-established when MSUs reattach after a restart,
and everything the snapshot cannot know about the real-time half is
reconciled against MSU StateReports afterwards
(:mod:`repro.recovery.reconcile`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.admission import allocation_from_state, allocation_state
from repro.core.database import (
    Customer,
    DiskState,
    MsuState,
    entry_from_state,
    entry_state,
)
from repro.core.sessions import DisplayPort, Session
from repro.failover.migrator import MemberResume, ResumeTicket, StreamMeta
from repro.net import messages as m

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.coordinator import Coordinator

__all__ = ["snapshot_state", "restore_state"]

SNAPSHOT_FORMAT = "calliope-snapshot-v1"


# -- sessions -----------------------------------------------------------------

def port_state(port: DisplayPort) -> dict:
    return {
        "name": port.name,
        "type_name": port.type_name,
        "address": list(port.address) if port.address is not None else None,
        "component_ports": list(port.component_ports),
    }


def port_from_state(state: dict) -> DisplayPort:
    address = state.get("address")
    return DisplayPort(
        name=state["name"],
        type_name=state["type_name"],
        address=tuple(address) if address is not None else None,
        component_ports=tuple(state.get("component_ports", ())),
    )


def session_state(session: Session) -> dict:
    return {
        "session_id": session.session_id,
        "customer": session.customer.name,
        "client_host": session.client_host,
        "ports": [port_state(p) for p in session.ports.values()],
        "active_groups": list(session.active_groups),
    }


def session_from_state(state: dict, customers: dict) -> Session:
    name = state["customer"]
    customer = customers.get(name) or Customer(name)
    session = Session(
        session_id=state["session_id"],
        customer=customer,
        client_host=state["client_host"],
    )
    for port_data in state.get("ports", ()):
        port = port_from_state(port_data)
        session.ports[port.name] = port
    session.active_groups.extend(state.get("active_groups", ()))
    return session


# -- stream groups ------------------------------------------------------------

def stream_meta_state(meta: StreamMeta) -> dict:
    return {
        "content_name": meta.content_name,
        "type_name": meta.type_name,
        "display_address": list(meta.display_address),
    }


def stream_meta_from_state(state: dict) -> StreamMeta:
    return StreamMeta(
        content_name=state["content_name"],
        type_name=state["type_name"],
        display_address=tuple(state["display_address"]),
    )


def group_state(group) -> dict:
    return {
        "group_id": group.group_id,
        "session_id": group.session_id,
        "msu_name": group.msu_name,
        "allocations": [
            [sid, allocation_state(alloc)]
            for sid, alloc in sorted(group.allocations.items())
        ],
        "recordings": [
            [sid, list(pair)] for sid, pair in sorted(group.recordings.items())
        ],
        "streams": [
            [sid, stream_meta_state(meta)]
            for sid, meta in sorted(group.streams.items())
        ],
    }


def group_from_state(state: dict):
    from repro.core.coordinator import GroupRecord

    group = GroupRecord(
        group_id=state["group_id"],
        session_id=state["session_id"],
        msu_name=state["msu_name"],
    )
    for sid, alloc in state.get("allocations", ()):
        group.allocations[sid] = allocation_from_state(alloc)
    for sid, pair in state.get("recordings", ()):
        group.recordings[sid] = (pair[0], pair[1])
    for sid, meta in state.get("streams", ()):
        group.streams[sid] = stream_meta_from_state(meta)
    return group


# -- scheduling-queue tickets -------------------------------------------------

def message_state(message) -> dict:
    """Tag-and-image a queued request's message for the journal."""
    if isinstance(message, m.PlayRequest):
        return {
            "type": "play-request",
            "session_id": message.session_id,
            "content_name": message.content_name,
            "port_name": message.port_name,
            "request_id": message.request_id,
        }
    if isinstance(message, m.RecordRequest):
        return {
            "type": "record-request",
            "session_id": message.session_id,
            "content_name": message.content_name,
            "type_name": message.type_name,
            "port_name": message.port_name,
            "estimate_seconds": message.estimate_seconds,
            "request_id": message.request_id,
        }
    if isinstance(message, ResumeTicket):
        return {
            "type": "resume-ticket",
            "group_id": message.group_id,
            "session_id": message.session_id,
            "client_host": message.client_host,
            "from_msu": message.from_msu,
            "failed_at": message.failed_at,
            "members": [
                {
                    "stream_id": member.stream_id,
                    "content_name": member.content_name,
                    "type_name": member.type_name,
                    "display_address": list(member.display_address),
                    "start_page": member.start_page,
                    "start_us": member.start_us,
                }
                for member in message.members
            ],
        }
    raise ValueError(f"unjournalable queued message: {message!r}")


def message_from_state(state: dict):
    tag = state["type"]
    if tag == "play-request":
        return m.PlayRequest(
            session_id=state["session_id"],
            content_name=state["content_name"],
            port_name=state["port_name"],
            request_id=state.get("request_id", 0),
        )
    if tag == "record-request":
        return m.RecordRequest(
            session_id=state["session_id"],
            content_name=state["content_name"],
            type_name=state["type_name"],
            port_name=state["port_name"],
            estimate_seconds=state["estimate_seconds"],
            request_id=state.get("request_id", 0),
        )
    if tag == "resume-ticket":
        return ResumeTicket(
            group_id=state["group_id"],
            session_id=state["session_id"],
            client_host=state["client_host"],
            from_msu=state["from_msu"],
            failed_at=state["failed_at"],
            members=tuple(
                MemberResume(
                    stream_id=member["stream_id"],
                    content_name=member["content_name"],
                    type_name=member["type_name"],
                    display_address=tuple(member["display_address"]),
                    start_page=member.get("start_page", 0),
                    start_us=member.get("start_us", 0),
                )
                for member in state.get("members", ())
            ),
        )
    raise ValueError(f"unknown queued message tag: {tag!r}")


def ticket_state(request) -> dict:
    """JSON-safe image of one :class:`_QueuedRequest` ticket."""
    return {
        "ticket_id": request.ticket_id,
        "kind": request.kind,
        "session_id": request.session_id,
        "priority": request.priority,
        "message": message_state(request.message),
    }


def ticket_from_state(state: dict):
    from repro.core.coordinator import _QueuedRequest

    request = _QueuedRequest(
        kind=state["kind"],
        session_id=state["session_id"],
        message=message_from_state(state["message"]),
        channel=None,  # the requester's connection died with the crash
        priority=state.get("priority", 2),
    )
    request.ticket_id = state.get("ticket_id", 0)
    return request


# -- multicast ----------------------------------------------------------------

def channel_record_state(record) -> dict:
    return {
        "channel_id": record.channel_id,
        "content_name": record.content_name,
        "msu_name": record.msu_name,
        "disk_id": record.disk_id,
        "group_id": record.group_id,
        "stream_id": record.stream_id,
        "rate": record.rate,
        "started_at": record.started_at,
        "duration_us": record.duration_us,
        "blocks": record.blocks,
        "allocation": allocation_state(record.allocation),
        "mcast_host": record.mcast_host,
        "subscribers": [
            [gid, sid] for gid, sid in sorted(record.subscribers.items())
        ],
        "peak_subscribers": record.peak_subscribers,
        "viewers_total": record.viewers_total,
        "released": record.released,
    }


def channel_record_from_state(state: dict):
    from repro.multicast.channel import ChannelRecord

    record = ChannelRecord(
        channel_id=state["channel_id"],
        content_name=state["content_name"],
        msu_name=state["msu_name"],
        disk_id=state["disk_id"],
        group_id=state["group_id"],
        stream_id=state["stream_id"],
        rate=state["rate"],
        started_at=state["started_at"],
        duration_us=state["duration_us"],
        blocks=state["blocks"],
        allocation=allocation_from_state(state["allocation"]),
        mcast_host=state["mcast_host"],
    )
    for gid, sid in state.get("subscribers", ()):
        record.subscribers[gid] = sid
    record.peak_subscribers = state.get("peak_subscribers", 0)
    record.viewers_total = state.get("viewers_total", 0)
    record.released = state.get("released", False)
    return record


def _ledger_state(ledger) -> dict:
    return {
        "channels_opened": ledger.channels_opened,
        "channels_closed": ledger.channels_closed,
        "patches_charged": ledger.patches_charged,
        "patches_refunded": ledger.patches_refunded,
        "patches_cache_covered": ledger.patches_cache_covered,
        "channels": [
            {
                "channel_id": entry.channel_id,
                "content_name": entry.content_name,
                "rate": entry.rate,
                "channel_charge": entry.channel_charge,
                "patch_charges": [
                    [gid, rate] for gid, rate in sorted(entry.patch_charges.items())
                ],
                "subscribers_total": entry.subscribers_total,
                "patches_charged": entry.patches_charged,
                "patches_refunded": entry.patches_refunded,
                "patches_cache_covered": entry.patches_cache_covered,
                "closed": entry.closed,
                "forced": entry.forced,
            }
            for _, entry in sorted(ledger.channels.items())
        ],
    }


def _restore_ledger(ledger, state: dict) -> None:
    from repro.multicast.ledger import ChannelLedger

    ledger.channels_opened = state.get("channels_opened", 0)
    ledger.channels_closed = state.get("channels_closed", 0)
    ledger.patches_charged = state.get("patches_charged", 0)
    ledger.patches_refunded = state.get("patches_refunded", 0)
    ledger.patches_cache_covered = state.get("patches_cache_covered", 0)
    for data in state.get("channels", ()):
        entry = ChannelLedger(
            channel_id=data["channel_id"],
            content_name=data["content_name"],
            rate=data["rate"],
            channel_charge=data.get("channel_charge", 0.0),
        )
        for gid, rate in data.get("patch_charges", ()):
            entry.patch_charges[gid] = rate
        entry.subscribers_total = data.get("subscribers_total", 0)
        entry.patches_charged = data.get("patches_charged", 0)
        entry.patches_refunded = data.get("patches_refunded", 0)
        entry.patches_cache_covered = data.get("patches_cache_covered", 0)
        entry.closed = data.get("closed", False)
        entry.forced = data.get("forced", False)
        ledger.channels[entry.channel_id] = entry


# -- live channels ------------------------------------------------------------

def live_record_state(record) -> dict:
    return {
        "channel_id": record.channel_id,
        "content_name": record.content_name,
        "type_name": record.type_name,
        "msu_name": record.msu_name,
        "disk_id": record.disk_id,
        "group_id": record.group_id,
        "stream_id": record.stream_id,
        "ingest_group_id": record.ingest_group_id,
        "ingest_stream_id": record.ingest_stream_id,
        "rate": record.rate,
        "started_at": record.started_at,
        "ring_blocks": record.ring_blocks,
        "dvr": record.dvr,
        "mcast_host": record.mcast_host,
        "source_host": record.source_host,
        "subscribers": [
            [gid, sid] for gid, sid in sorted(record.subscribers.items())
        ],
        "ingest_done": record.ingest_done,
        "viewers_total": record.viewers_total,
        "peak_subscribers": record.peak_subscribers,
        "rewinds": record.rewinds,
        "rewind_hits": record.rewind_hits,
    }


def live_record_from_state(state: dict):
    from repro.live.manager import LiveChannelRecord

    record = LiveChannelRecord(
        channel_id=state["channel_id"],
        content_name=state["content_name"],
        type_name=state["type_name"],
        msu_name=state["msu_name"],
        disk_id=state["disk_id"],
        group_id=state["group_id"],
        stream_id=state["stream_id"],
        ingest_group_id=state["ingest_group_id"],
        ingest_stream_id=state["ingest_stream_id"],
        rate=state["rate"],
        started_at=state["started_at"],
        ring_blocks=state["ring_blocks"],
        dvr=state["dvr"],
        mcast_host=state["mcast_host"],
        source_host=state["source_host"],
    )
    for gid, sid in state.get("subscribers", ()):
        record.subscribers[gid] = sid
    record.ingest_done = state.get("ingest_done", False)
    record.viewers_total = state.get("viewers_total", 0)
    record.peak_subscribers = state.get("peak_subscribers", 0)
    record.rewinds = state.get("rewinds", 0)
    record.rewind_hits = state.get("rewind_hits", 0)
    return record


# -- MSU resource books -------------------------------------------------------

def _msu_state(state: MsuState) -> dict:
    return {
        "name": state.name,
        "available": state.available,
        "delivery_capacity": state.delivery_capacity,
        "delivery_used": state.delivery_used,
        "active_streams": state.active_streams,
        "cache_capacity": state.cache_capacity,
        "cache_used": state.cache_used,
        "disks": [
            {
                "disk_id": disk.disk_id,
                "free_blocks": disk.free_blocks,
                "bandwidth_capacity": disk.bandwidth_capacity,
                "bandwidth_used": disk.bandwidth_used,
            }
            for _, disk in sorted(state.disks.items())
        ],
    }


def _msu_from_state(data: dict) -> MsuState:
    state = MsuState(data["name"])
    state.available = data.get("available", True)
    state.delivery_capacity = data.get("delivery_capacity", state.delivery_capacity)
    state.delivery_used = data.get("delivery_used", 0.0)
    state.active_streams = data.get("active_streams", 0)
    state.cache_capacity = data.get("cache_capacity", 0.0)
    state.cache_used = data.get("cache_used", 0.0)
    for disk_data in data.get("disks", ()):
        disk = DiskState(
            state.name,
            disk_data["disk_id"],
            disk_data["free_blocks"],
            bandwidth_capacity=disk_data.get("bandwidth_capacity", 2.3e6),
        )
        disk.bandwidth_used = disk_data.get("bandwidth_used", 0.0)
        state.disks[disk.disk_id] = disk
    return state


# -- the whole Coordinator ----------------------------------------------------

def snapshot_state(coord: "Coordinator") -> dict:
    """One JSON-safe image of every durable Coordinator structure."""
    db = coord.db
    manager = coord.channel_manager
    multicast: Optional[dict] = None
    if manager is not None:
        multicast = {
            "next_channel": manager._next_channel,
            "channels": [
                channel_record_state(record)
                for _, record in sorted(manager.channels.items())
            ],
            "ledger": _ledger_state(manager.ledger),
        }
    return {
        "format": SNAPSHOT_FORMAT,
        "customers": [
            {"name": c.name, "admin": c.admin}
            for _, c in sorted(db.customers.items())
        ],
        "contents": [entry_state(e) for _, e in sorted(db.contents.items())],
        "msus": [_msu_state(s) for _, s in sorted(db.msus.items())],
        "sessions": [
            session_state(s) for _, s in sorted(coord.sessions._sessions.items())
        ],
        "next_session_id": coord.sessions._next_id,
        "groups": [group_state(g) for _, g in sorted(coord.groups.items())],
        "queue": [ticket_state(req) for req in coord.admission.queue],
        "counters": {
            "next_group": coord._next_group,
            "next_stream": coord._next_stream,
            "next_ticket": coord._next_ticket,
            "admitted": coord.admission.admitted,
            "queued": coord.admission.queued,
            "rejected": coord.admission.rejected,
            "cache_admitted": coord.admission.cache_admitted,
            "edge_admitted": coord.admission.edge_admitted,
        },
        "multicast": multicast,
        "edge": coord.placement.state() if coord.placement is not None else None,
        "live": (
            coord.live_manager.state()
            if coord.live_manager is not None else None
        ),
        "shards": coord.shards.state() if coord.shards is not None else None,
    }


def restore_state(coord: "Coordinator", state: dict) -> None:
    """Load a :func:`snapshot_state` image into a fresh Coordinator.

    Journaling must be off while restoring (a restarting Coordinator has
    no journal attached yet), so the database/admission hooks see nothing.
    """
    if state.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(f"not a Calliope snapshot: {state.get('format')!r}")
    db = coord.db
    db.customers.clear()
    for data in state.get("customers", ()):
        db.customers[data["name"]] = Customer(data["name"], data.get("admin", False))
    db.contents.clear()
    for data in state.get("contents", ()):
        entry = entry_from_state(data)
        db.contents[entry.name] = entry
    db.msus.clear()
    for data in state.get("msus", ()):
        msu = _msu_from_state(data)
        db.msus[msu.name] = msu
    coord.sessions._sessions.clear()
    for data in state.get("sessions", ()):
        session = session_from_state(data, db.customers)
        coord.sessions._sessions[session.session_id] = session
    coord.sessions._next_id = state.get("next_session_id", 1)
    coord.groups.clear()
    for data in state.get("groups", ()):
        group = group_from_state(data)
        coord.groups[group.group_id] = group
    coord.admission.queue.clear()
    for data in state.get("queue", ()):
        coord.admission.queue.append(ticket_from_state(data))
    counters = state.get("counters", {})
    coord._next_group = counters.get("next_group", 1)
    coord._next_stream = counters.get("next_stream", 1)
    coord._next_ticket = counters.get("next_ticket", 1)
    coord.admission.admitted = counters.get("admitted", 0)
    coord.admission.queued = counters.get("queued", 0)
    coord.admission.rejected = counters.get("rejected", 0)
    coord.admission.cache_admitted = counters.get("cache_admitted", 0)
    coord.admission.edge_admitted = counters.get("edge_admitted", 0)
    edge = state.get("edge")
    if edge is not None and coord.placement is not None:
        coord.placement.restore(edge)
    multicast = state.get("multicast")
    manager = coord.channel_manager
    if multicast is not None and manager is not None:
        manager._next_channel = multicast.get("next_channel", 1)
        manager.channels.clear()
        manager._channel_groups.clear()
        manager._subscriber_groups.clear()
        for data in multicast.get("channels", ()):
            record = channel_record_from_state(data)
            manager.channels[record.channel_id] = record
            if not record.released:
                manager._channel_groups[record.group_id] = record.channel_id
                for gid in record.subscribers:
                    manager._subscriber_groups[gid] = record.channel_id
        manager.ledger.channels.clear()
        _restore_ledger(manager.ledger, multicast["ledger"])
    live = state.get("live")
    if live is not None and coord.live_manager is not None:
        coord.live_manager.restore(live)
    if coord.shards is not None:
        shards = state.get("shards")
        if shards is not None:
            coord.shards.restore(shards)
        else:
            # Snapshot predates the escrow split: start it empty (the
            # bank holds everything, spends re-derive from replay).
            coord.shards.books.clear()
