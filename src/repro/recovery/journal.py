"""The Coordinator's write-ahead log (Coordinator crash recovery).

The paper concedes that "Calliope does not recover from Coordinator
failures" — the admission books, table of contents, sessions and the
scheduling queue all live in one process's memory.  ``repro.recovery``
closes that gap with the classic database recipe:

* every mutation of the admin database, the admission books, the group
  table, the multicast ledger and the scheduling queue appends one
  JSON-safe :class:`JournalRecord` to a durable :class:`JournalStore`;
* periodically the whole Coordinator state is serialized into a
  **snapshot** and the log is truncated (the store keeps the snapshot
  plus the records appended since);
* a cold-started Coordinator restores the snapshot, replays the log
  tail (``repro.recovery.replay``), and then *reconciles* the replayed
  books against live MSU StateReports (``repro.recovery.reconcile``) —
  the journal is authoritative for durable facts (customers, contents,
  sessions, tickets), the MSUs for what is actually streaming.

The store is intentionally a plain in-memory object owned by the
*cluster*, not the Coordinator: in the simulation it plays the role of
the Coordinator's local disk, which survives the process.  ``to_json``
and ``from_json`` give the CLI (``cli recovery``) a portable file format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["RecoveryConfig", "JournalRecord", "JournalStore"]


@dataclass(frozen=True)
class RecoveryConfig:
    """Durability and restart-protocol knobs."""

    #: WAL records accumulated before the next snapshot truncates the log.
    snapshot_every: int = 256
    #: Seconds a restarted Coordinator waits for every expected MSU's
    #: StateReport before reconciling without the silent ones (which are
    #: then treated as failed, exactly like a broken control connection).
    report_grace: float = 1.0


@dataclass(frozen=True)
class JournalRecord:
    """One logged mutation: a monotone sequence number, a kind, a payload."""

    seq: int
    kind: str
    payload: dict

    def to_dict(self) -> dict:
        return {"seq": self.seq, "kind": self.kind, "payload": self.payload}

    @classmethod
    def from_dict(cls, data: dict) -> "JournalRecord":
        return cls(int(data["seq"]), str(data["kind"]), dict(data["payload"]))


@dataclass
class JournalStore:
    """Snapshot + WAL tail; the Coordinator's simulated stable storage."""

    snapshot_every: int = 256
    #: Last installed snapshot (None until the first one).
    snapshot: Optional[dict] = None
    #: Sequence number of the last record folded into the snapshot.
    snapshot_seq: int = 0
    #: Records appended since the snapshot, in order.
    records: List[JournalRecord] = field(default_factory=list)
    next_seq: int = 1
    #: Lifetime counters (metrics/report).
    appends: int = 0
    snapshots_taken: int = 0
    truncated_records: int = 0

    # -- writing --------------------------------------------------------------

    def append(self, kind: str, payload: dict) -> JournalRecord:
        """Log one mutation; returns the durable record."""
        record = JournalRecord(self.next_seq, kind, payload)
        self.next_seq += 1
        self.records.append(record)
        self.appends += 1
        return record

    def snapshot_due(self) -> bool:
        """Whether the WAL tail is long enough to warrant a snapshot."""
        return self.snapshot_every > 0 and len(self.records) >= self.snapshot_every

    def install_snapshot(self, state: dict) -> None:
        """Replace the snapshot with ``state`` and truncate the log."""
        self.snapshot = state
        if self.records:
            self.snapshot_seq = self.records[-1].seq
        self.truncated_records += len(self.records)
        self.records = []
        self.snapshots_taken += 1

    # -- inspection -----------------------------------------------------------

    def wal_length(self) -> int:
        return len(self.records)

    def counts_by_kind(self) -> Dict[str, int]:
        """Record counts per kind in the current WAL tail (inspection)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return dict(sorted(counts.items()))

    # -- file format ----------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": "calliope-journal-v1",
                "snapshot_every": self.snapshot_every,
                "snapshot": self.snapshot,
                "snapshot_seq": self.snapshot_seq,
                "next_seq": self.next_seq,
                "records": [record.to_dict() for record in self.records],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "JournalStore":
        data = json.loads(text)
        if data.get("format") != "calliope-journal-v1":
            raise ValueError(f"not a Calliope journal: {data.get('format')!r}")
        store = cls(snapshot_every=int(data.get("snapshot_every", 256)))
        store.snapshot = data.get("snapshot")
        store.snapshot_seq = int(data.get("snapshot_seq", 0))
        store.next_seq = int(data.get("next_seq", 1))
        store.records = [
            JournalRecord.from_dict(rec) for rec in data.get("records", ())
        ]
        return store
