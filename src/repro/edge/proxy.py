"""The EdgeProxy node: a memory-only cache host on the delivery network.

An edge is deliberately dumb — it pins what the Coordinator tells it to
pin (:class:`~repro.net.messages.PlacePrefix` /
:class:`~repro.net.messages.EvictPrefix`), serves page ranges when told
to (:class:`~repro.net.messages.EdgeServe`) and reports what it holds
(:class:`~repro.net.messages.EdgeReport`).  All policy — popularity
tracking, placement, admission, routing — lives Coordinator-side in
:class:`~repro.edge.placement.PlacementManager`, mirroring how MSUs
never decide what to serve.

The proxy reuses the PR 1 cache vocabulary: a bounded
:class:`~repro.cache.pool.BufferPool` accounts every retained byte and a
:class:`~repro.cache.prefix.PrefixCache` holds the pinned opening pages
per title.  An edge owns no disks; a crash loses everything it holds and
it returns cold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional, Tuple

from repro.cache.pool import BufferPool
from repro.cache.prefix import PrefixCache
from repro.net import messages as m
from repro.net.network import Host, Network

__all__ = ["EdgeConfig", "EdgeProxy"]

#: PrefixCache keys are ``(disk_id, name)`` pairs on MSUs; an edge has no
#: disks, so every pin lives under this pseudo-disk.
EDGE_DISK = "mem"


@dataclass(frozen=True)
class EdgeConfig:
    """Shape and tuning of the edge tier.

    ``prefix_pages`` bounds each pinned prefix; together with the page
    size it sets how far into a title an edge can carry a viewer before
    the MSU tail stream must take over.  ``fetch_per_page`` paces the
    background trickle that fills a prefix after a PinPrefix decision —
    placement is deliberately not instantaneous.
    """

    n_edges: int = 1
    #: Bytes of cache memory per edge (pool budget).
    memory_budget: int = 64 * 1024 * 1024
    #: Delivery-side uplink each edge can sustain (bytes/sec); the
    #: admission zero-disk-cost lane charges edge serves against this.
    uplink_bps: float = 40e6
    #: Pages pinned per title (min with the title's length).
    prefix_pages: int = 72
    page_size: int = 16384
    #: Placement loop period (decay + rebalance), seconds.
    placement_period: float = 1.0
    #: Per-period multiplier on the popularity scores.
    decay: float = 0.6
    #: Decayed score at/above which a title is pinned on its edges.
    promote_score: float = 2.0
    #: Decayed score at/below which a pinned title is evicted.
    evict_score: float = 0.5
    report_period: float = 1.0
    #: Seconds per page for the background prefix fetch trickle.
    fetch_per_page: float = 0.002
    #: How long an edge's just-served window counts as an interval hit
    #: for a trailing viewer (seconds).
    interval_ttl: float = 10.0

    def __post_init__(self):
        if not (0.0 <= self.decay < 1.0):
            raise ValueError(f"decay must be in [0, 1): {self.decay}")
        if self.evict_score >= self.promote_score:
            raise ValueError(
                f"evict_score {self.evict_score} must stay below "
                f"promote_score {self.promote_score}"
            )


class EdgeProxy:
    """One edge node: pinned prefixes + paced memory serves.

    A plain :class:`~repro.net.network.Host` on the delivery network (no
    Machine — an edge models a small memory appliance, not a server with
    disks and SCSI buses), plus one control channel to the Coordinator
    over the intra-server Ethernet.
    """

    def __init__(self, sim, name: str, network: Network, config: EdgeConfig):
        self.sim = sim
        self.name = name
        self.config = config
        self.host = Host(sim, network, name)
        self.pool = BufferPool(config.memory_budget)
        self.prefix = PrefixCache(pool=self.pool,
                                  max_pages_per_title=config.prefix_pages)
        self.coordinator_channel = None
        self.down = False
        #: Bumped on crash so in-flight serve/fetch processes die silently.
        self._epoch = 0
        #: Sum of the rates of currently-running serves (bytes/sec).
        self.uplink_used = 0.0
        self.prefix_bytes_served = 0
        self.patch_bytes_served = 0
        self.hits = 0
        self.misses = 0
        self._sock = self.host.bind()

    # -- wiring ------------------------------------------------------------

    def attach_coordinator(self, channel) -> None:
        """(Re)connect to the Coordinator: hello, then serve its commands."""
        self.coordinator_channel = channel
        self.down = False
        self._hello()
        self.sim.process(self._control_loop(channel), name=f"{self.name}.ctl")
        self.sim.process(self._report_loop(channel), name=f"{self.name}.rpt")

    def _hello(self) -> None:
        self.coordinator_channel.send(
            self.name,
            m.EdgeHello(
                self.name, self.config.memory_budget, self.config.uplink_bps,
                pinned=self._pinned_tuple(),
            ),
            nbytes=m.WIRE_BYTES,
        )

    def _pinned_tuple(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(
            (name, pages)
            for (_disk, name), pages in self.prefix.pinned_titles().items()
        ))

    # -- control plane -----------------------------------------------------

    def _control_loop(self, channel) -> Generator:
        epoch = self._epoch
        while True:
            msg = yield channel.recv(self.name)
            if msg is None or self.down or epoch != self._epoch:
                return
            if isinstance(msg, m.PlacePrefix):
                self.sim.process(self._place(msg), name=f"{self.name}.fill")
            elif isinstance(msg, m.EvictPrefix):
                self.evict(msg.content_name)
            elif isinstance(msg, m.EdgeServe):
                self.sim.process(self._serve(msg), name=f"{self.name}.serve")

    def _report_loop(self, channel) -> Generator:
        epoch = self._epoch
        period = self.config.report_period
        if period <= 0:
            return
        while True:
            yield self.sim.timeout(period)
            if self.down or epoch != self._epoch or not channel.open:
                return
            channel.send(self.name, self.report(), nbytes=m.WIRE_BYTES)

    def report(self) -> m.EdgeReport:
        return m.EdgeReport(
            self.name,
            pinned=self._pinned_tuple(),
            bytes_pinned=self.pool.used,
            uplink_used_bps=self.uplink_used,
            prefix_bytes_served=self.prefix_bytes_served,
            patch_bytes_served=self.patch_bytes_served,
            hits=self.hits,
            misses=self.misses,
        )

    # -- placement (fill / evict) ------------------------------------------

    def _place(self, msg: m.PlacePrefix) -> Generator:
        """Trickle-fetch and pin a title's opening pages (best effort).

        The fill is paced (``fetch_per_page``) to model the background
        transfer from the owning MSU; the trickle rides under admission
        granularity, so it costs no disk slot.  Budget or pool denials
        simply stop the fill — the Coordinator learns the truth from the
        next report.
        """
        epoch = self._epoch
        key = (EDGE_DISK, msg.content_name)
        for index in range(msg.pages):
            yield self.sim.timeout(self.config.fetch_per_page)
            if self.down or epoch != self._epoch:
                return
            if not self.prefix.pin(key, index, bytes(msg.page_size)):
                return

    def evict(self, content_name: str) -> int:
        """Drop a title's pinned prefix; returns pages freed."""
        return self.prefix.unpin((EDGE_DISK, content_name))

    def pinned_pages(self, content_name: str) -> int:
        return self.prefix.pinned_count((EDGE_DISK, content_name))

    def pinned_titles(self) -> Dict[str, int]:
        """title -> pinned page count (the invariant checkers' view)."""
        return {
            name: pages
            for (_disk, name), pages in self.prefix.pinned_titles().items()
        }

    # -- data plane --------------------------------------------------------

    def _serve(self, msg: m.EdgeServe) -> Generator:
        """Pace pages ``[start_page, end_page)`` at ``rate`` to the client.

        Pages come from the pinned prefix when present; an edge asked to
        serve something it no longer pins (a crash raced the plan)
        synthesizes the bytes anyway — the client-visible stream must
        not stall on a bookkeeping race — and counts a miss.
        """
        epoch = self._epoch
        key = (EDGE_DISK, msg.content_name)
        if self.prefix.pinned_count(key) >= msg.end_page:
            self.hits += 1
        else:
            self.misses += 1
        pace = msg.page_size / msg.rate if msg.rate > 0 else 0.0
        self.uplink_used += msg.rate
        nbytes = 0
        try:
            for index in range(msg.start_page, msg.end_page):
                data = self.prefix.lookup(key, index) or bytes(msg.page_size)
                yield from self._sock.send(tuple(msg.display_address), data)
                nbytes += len(data)
                if pace > 0:
                    yield self.sim.timeout(pace)
                if self.down or epoch != self._epoch:
                    return
        finally:
            if epoch == self._epoch:
                self.uplink_used = max(0.0, self.uplink_used - msg.rate)
        if msg.kind == "patch":
            self.patch_bytes_served += nbytes
        else:
            self.prefix_bytes_served += nbytes
        if self.coordinator_channel is not None and self.coordinator_channel.open:
            self.coordinator_channel.send(
                self.name,
                m.EdgeServeDone(
                    self.name, msg.group_id, msg.stream_id, nbytes, msg.kind
                ),
                nbytes=m.WIRE_BYTES,
            )

    # -- failure injection -------------------------------------------------

    def crash(self) -> None:
        """Kill the edge: pins gone, running serves die, control breaks."""
        if self.down:
            return
        self.down = True
        self._epoch += 1
        for (_disk, name) in list(self.prefix.pinned_titles()):
            self.prefix.unpin((_disk, name))
        self.uplink_used = 0.0
        if self.coordinator_channel is not None and self.coordinator_channel.open:
            self.coordinator_channel.close()
        self.coordinator_channel = None

    def recover(self) -> None:
        """Bring the edge back up, cold.  The caller re-wires the control
        channel (:meth:`attach_coordinator` sends the fresh hello)."""
        self.down = False
