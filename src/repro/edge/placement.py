"""Coordinator-side edge policy: popularity, placement, serve bookkeeping.

The :class:`PlacementManager` owns every decision the edge tier makes:

* a **decayed popularity estimator** — each play request bumps its
  title's score, every placement period multiplies all scores by
  ``decay``; titles crossing ``promote_score`` get their prefix pinned on
  the edges, titles falling to ``evict_score`` are evicted.  Under a Zipf
  workload the surviving set is exactly the Zipf head.
* **routing** — each client host maps to one edge by stable hash, so a
  viewer's repeat requests always land where its title's prefix lives.
* the **zero-disk-cost admission lane** — edge serves are charged to the
  edge's uplink through the ordinary admission ``apply``/``release``
  choke points (the manager is the Coordinator's ``edge_books``), so
  they are journaled, replayed and audited like every other grant while
  costing no MSU disk slot and no delivery flow.
* **serve bookkeeping** — a registry of in-flight edge serves, refunded
  wholesale when an edge dies (its serves died with it) and reconciled
  edge-wins when one says hello after a Coordinator restart.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.admission import Allocation, allocation_state, allocation_from_state
from repro.edge.proxy import EdgeConfig
from repro.net import messages as m

__all__ = ["EdgeView", "PlacementManager"]

#: Scores below this are dropped entirely (bounds the estimator's size).
SCORE_FLOOR = 0.001


@dataclass
class EdgeView:
    """The Coordinator's picture of one edge (its resource record)."""

    name: str
    memory_budget: int = 0
    uplink_bps: float = 0.0
    #: The live control channel; None while detached (down or pre-hello).
    channel: object = None
    #: title -> pinned pages, per the edge's latest hello/report.
    pinned: Dict[str, int] = field(default_factory=dict)
    #: Bytes/sec of uplink charged to in-flight edge serves (the book
    #: the zero-disk-cost admission lane debits).
    uplink_used: float = 0.0
    bytes_pinned: int = 0
    prefix_bytes_served: int = 0
    patch_bytes_served: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def attached(self) -> bool:
        return self.channel is not None and getattr(self.channel, "open", False)

    def pinned_bytes(self, page_size: int) -> int:
        return sum(self.pinned.values()) * page_size


@dataclass
class _Serve:
    """One in-flight edge serve (prefix leg, patch window or interval)."""

    edge_name: str
    content_name: str
    kind: str
    end_page: int
    allocation: Allocation


class PlacementManager:
    """Popularity tracking + prefix placement + the edge admission books."""

    def __init__(self, coordinator, config: Optional[EdgeConfig] = None):
        self.coord = coordinator
        self.sim = coordinator.sim
        self.config = config or EdgeConfig()
        #: edge name -> resource record.
        self.edges: Dict[str, EdgeView] = {}
        #: title -> decayed request score.
        self.scores: Dict[str, float] = {}
        #: (group_id, stream_id) -> in-flight serve record.
        self.serves: Dict[Tuple[int, int], _Serve] = {}
        #: edge -> title -> (end_page, expires_at): windows a trailing
        #: viewer can ride as a pure interval hit.
        self.recent: Dict[str, Dict[str, Tuple[int, float]]] = {}
        self.prefix_serves = 0
        self.patch_serves = 0
        self.interval_serves = 0
        self.plan_misses = 0
        if not getattr(coordinator, "standby", False):
            self.sim.process(self._loop(), name="coord.placement")

    def activate(self) -> None:
        """Start the placement loop on a promoted warm standby."""
        self.sim.process(self._loop(), name="coord.placement")

    # -- popularity estimator ---------------------------------------------

    def note_request(self, content_name: str) -> None:
        self.scores[content_name] = self.scores.get(content_name, 0.0) + 1.0

    def decay(self) -> None:
        factor = self.config.decay
        self.scores = {
            name: score * factor
            for name, score in self.scores.items()
            if score * factor >= SCORE_FLOOR
        }

    def hot_titles(self) -> List[Tuple[str, float]]:
        return sorted(self.scores.items(), key=lambda kv: (-kv[1], kv[0]))

    # -- placement loop ----------------------------------------------------

    def _loop(self) -> Generator:
        period = self.config.placement_period
        while True:
            yield self.sim.timeout(period)
            if self.coord.dead:
                return
            self.decay()
            self.rebalance()

    def rebalance(self) -> None:
        """Pin rising titles, evict fallen ones, within each edge budget."""
        hot = self.hot_titles()
        for view in self.edges.values():
            if not view.attached:
                continue
            for name in list(view.pinned):
                if self.scores.get(name, 0.0) <= self.config.evict_score:
                    self._evict(view, name)
            for name, score in hot:
                if score < self.config.promote_score or name in view.pinned:
                    continue
                self._place(view, name)

    def _place(self, view: EdgeView, content_name: str) -> None:
        entry = self.coord.db.contents.get(content_name)
        if entry is None or entry.components or not entry.msu_name:
            return
        pages = min(entry.blocks, self.config.prefix_pages)
        if pages <= 0:
            return
        page_size = self.config.page_size
        if view.pinned_bytes(page_size) + pages * page_size > view.memory_budget:
            return
        view.pinned[content_name] = pages
        view.channel.send(
            self.coord.name,
            m.PlacePrefix(
                content_name, entry.msu_name, entry.disk_id,
                pages, page_size, self._rate_of(entry),
            ),
            nbytes=m.WIRE_BYTES,
        )
        self.coord._journal(
            "edge-place",
            {"edge": view.name, "content": content_name, "pages": pages},
        )
        self.coord._trace("edge-place", content_name,
                          f"edge={view.name} pages={pages}")

    def _evict(self, view: EdgeView, content_name: str) -> None:
        view.pinned.pop(content_name, None)
        view.channel.send(
            self.coord.name, m.EvictPrefix(content_name), nbytes=m.WIRE_BYTES
        )
        self.coord._journal(
            "edge-evict", {"edge": view.name, "content": content_name}
        )
        self.coord._trace("edge-evict", content_name, f"edge={view.name}")

    def _rate_of(self, entry) -> float:
        ctype = self.coord.types.get(entry.type_name)
        return ctype.bandwidth_rate if ctype is not None else 0.0

    # -- routing and planning ---------------------------------------------

    def live_edges(self) -> List[EdgeView]:
        return [v for v in self.edges.values() if v.attached]

    def edge_for(self, client_host: str) -> Optional[EdgeView]:
        """The client's assigned edge: stable hash over the live set."""
        live = sorted(self.live_edges(), key=lambda v: v.name)
        if not live:
            return None
        return live[zlib.crc32(str(client_host).encode()) % len(live)]

    def _uplink_fits(self, view: EdgeView, rate: float) -> bool:
        return view.uplink_used + rate <= view.uplink_bps + 1e-9

    def plan_prefix(
        self, entry, ctype, client_host: str
    ) -> Optional[Tuple[str, int, str]]:
        """Plan the edge leg of a unicast play: ``(edge, splice, kind)``.

        The edge serves pages ``[0, splice)`` from memory while the MSU
        tail stream starts at ``splice``; the splice is capped at
        ``blocks - 1`` so the MSU always anchors the stream (StreamReady,
        EOS and VCR handling stay exactly as they were).  Falls back to a
        recent interval window when no prefix is pinned; returns None on
        a miss (the request proceeds exactly as without edges).
        """
        view = self.edge_for(client_host)
        if view is None or entry.blocks <= 1:
            return None
        rate = ctype.bandwidth_rate if ctype is not None else 0.0
        kind = "prefix"
        pages = view.pinned.get(entry.name, 0)
        if pages <= 0:
            window = self.recent.get(view.name, {}).get(entry.name)
            if window is not None and window[1] >= self.sim.now:
                pages, kind = window[0], "interval"
        splice = min(pages, entry.blocks - 1)
        if splice <= 0 or not self._uplink_fits(view, rate):
            self.plan_misses += 1
            view.misses += 1
            return None
        return view.name, splice, kind

    def cover_patch(
        self, entry, patch_pages: int, rate: float, client_host: str
    ) -> Optional[str]:
        """The edge that can serve a whole patch window ``[0, patch_pages)``.

        Partial coverage is a miss — a patch split between edge and disk
        would still cost the MSU slot the lane exists to avoid.
        """
        view = self.edge_for(client_host)
        if view is None or patch_pages <= 0:
            return None
        if view.pinned.get(entry.name, 0) < patch_pages:
            self.plan_misses += 1
            view.misses += 1
            return None
        if not self._uplink_fits(view, rate):
            self.plan_misses += 1
            return None
        return view.name

    # -- the admission lane's books (edge_books protocol) ------------------

    def charge(self, alloc: Allocation) -> None:
        """Debit an edge allocation (called from ``AdmissionControl.apply``).

        Views are created lazily: WAL replay re-applies charges before
        any edge has said hello to the restarted Coordinator.
        """
        view = self.edges.setdefault(alloc.edge_name, EdgeView(alloc.edge_name))
        view.uplink_used += alloc.bandwidth

    def release(self, alloc: Allocation) -> None:
        view = self.edges.get(alloc.edge_name)
        if view is not None:
            view.uplink_used = max(0.0, view.uplink_used - alloc.bandwidth)

    def feasible(self, edge_name: str, rate: float) -> bool:
        view = self.edges.get(edge_name)
        return view is not None and self._uplink_fits(view, rate)

    # -- serve lifecycle ---------------------------------------------------

    def begin_serve(
        self, edge_name: str, group_id: int, stream_id: int, entry,
        start_page: int, end_page: int, rate: float, kind: str,
        display_address, alloc: Allocation,
    ) -> None:
        """Register, journal and dispatch one edge serve (synchronous)."""
        key = (group_id, stream_id)
        self.serves[key] = _Serve(edge_name, entry.name, kind, end_page, alloc)
        if kind == "patch":
            self.patch_serves += 1
        elif kind == "interval":
            self.interval_serves += 1
        else:
            self.prefix_serves += 1
        view = self.edges.get(edge_name)
        if view is not None:
            view.hits += 1
        self.coord._journal(
            "edge-serve",
            {
                "edge": edge_name, "group_id": group_id,
                "stream_id": stream_id, "content": entry.name,
                "kind": kind, "end_page": end_page,
                "alloc": allocation_state(alloc),
            },
        )
        if view is not None and view.attached:
            view.channel.send(
                self.coord.name,
                m.EdgeServe(
                    group_id, stream_id, entry.name,
                    tuple(display_address), start_page, end_page,
                    rate, self.config.page_size, kind,
                ),
                nbytes=m.WIRE_BYTES,
            )
        self.coord._trace(
            "edge-serve", entry.name,
            f"edge={edge_name} group={group_id} kind={kind} "
            f"pages=[{start_page},{end_page})",
        )
        # When the serve's whole span is already resident (pinned) on the
        # edge, the interval window is rideable *now* — a trailing viewer
        # need not wait for this serve to complete before hitting it.
        if (
            kind != "patch"
            and view is not None
            and view.pinned.get(entry.name, 0) >= end_page
        ):
            windows = self.recent.setdefault(edge_name, {})
            current = windows.get(entry.name)
            if current is None or current[0] <= end_page:
                windows[entry.name] = (
                    end_page, self.sim.now + self.config.interval_ttl
                )

    def serve_done(self, msg: m.EdgeServeDone) -> None:
        """An edge finished a serve: release its charge (idempotent —
        a late report after edge-wins reconciliation must no-op)."""
        record = self.serves.pop((msg.group_id, msg.stream_id), None)
        if record is None:
            return
        self.coord.admission.release(record.allocation)
        self.coord._journal(
            "edge-serve-done",
            {"group_id": msg.group_id, "stream_id": msg.stream_id,
             "nbytes": msg.nbytes, "kind": msg.kind},
        )
        view = self.edges.get(record.edge_name)
        if view is not None:
            if record.kind == "patch":
                view.patch_bytes_served += msg.nbytes
            else:
                view.prefix_bytes_served += msg.nbytes
        # The window just served trails fresh in edge memory: a viewer
        # arriving shortly after can ride it as a pure interval hit.
        if record.kind != "patch":
            windows = self.recent.setdefault(record.edge_name, {})
            windows[record.content_name] = (
                record.end_page, self.sim.now + self.config.interval_ttl
            )

    def _refund_edge(self, edge_name: str) -> None:
        """Refund every in-flight serve of a dead/reset edge wholesale."""
        for key, record in list(self.serves.items()):
            if record.edge_name != edge_name:
                continue
            del self.serves[key]
            self.coord.admission.release(record.allocation)

    # -- edge lifecycle (hello / report / down) ----------------------------

    def edge_hello(self, msg: m.EdgeHello, channel) -> None:
        """An edge (re)connected: its word wins, ours is refunded.

        Any serves we still carry for it died with its old incarnation
        (or were lost across our own restart) — refund them wholesale;
        its pinned inventory replaces our view.
        """
        view = self.edges.setdefault(msg.edge_name, EdgeView(msg.edge_name))
        view.memory_budget = msg.memory_budget
        view.uplink_bps = msg.uplink_bps
        view.channel = channel
        view.pinned = dict(msg.pinned)
        self._refund_edge(msg.edge_name)
        # A charge whose serve record was lost (crash between the two
        # journal appends) leaves residue the refund cannot see; the old
        # incarnation's serves are all gone, so zero is the truth.
        view.uplink_used = 0.0
        self.recent.pop(msg.edge_name, None)
        self.coord._journal(
            "edge-attach",
            {
                "edge": msg.edge_name,
                "memory_budget": msg.memory_budget,
                "uplink_bps": msg.uplink_bps,
                "pinned": sorted(dict(msg.pinned).items()),
            },
        )

    def edge_report(self, msg: m.EdgeReport) -> None:
        view = self.edges.get(msg.edge_name)
        if view is None or not view.attached:
            return
        view.pinned = dict(msg.pinned)
        view.bytes_pinned = msg.bytes_pinned
        view.prefix_bytes_served = max(
            view.prefix_bytes_served, msg.prefix_bytes_served
        )
        view.patch_bytes_served = max(
            view.patch_bytes_served, msg.patch_bytes_served
        )

    def reconcile_edges(self) -> List[str]:
        """Refund serve state for edges that have not re-attached.

        The restart counterpart of the silent-MSU rule: a replayed serve
        whose edge never says hello can never complete (its
        EdgeServeDone was sent into a closed channel or the edge is
        dead), so its charge must not outlive the recovery.  Attached
        edges were already reconciled edge-wins at their hello.
        """
        notes: List[str] = []
        for name in sorted(self.edges):
            view = self.edges[name]
            if view.attached:
                continue
            dropped = sum(
                1 for serve in self.serves.values() if serve.edge_name == name
            )
            if dropped or view.pinned or view.uplink_used:
                notes.append(
                    f"{name}: no EdgeHello; dropped {dropped} serve(s) "
                    f"and {len(view.pinned)} pin(s)"
                )
            self._refund_edge(name)
            view.pinned.clear()
            view.uplink_used = 0.0
            self.recent.pop(name, None)
            self.coord._journal("edge-down", {"edge": name})
        return notes

    def edge_down(self, edge_name: str) -> None:
        """The edge's control connection broke: everything it held is gone."""
        view = self.edges.get(edge_name)
        if view is None or view.channel is None:
            return
        view.channel = None
        view.pinned.clear()
        self._refund_edge(edge_name)
        view.uplink_used = 0.0
        self.recent.pop(edge_name, None)
        self.coord._journal("edge-down", {"edge": edge_name})
        self.coord._trace("edge-down", edge_name, "control connection lost")

    # -- statistics --------------------------------------------------------

    def covered_serves(self) -> int:
        return self.prefix_serves + self.patch_serves + self.interval_serves

    def hit_ratio(self) -> float:
        total = self.covered_serves() + self.plan_misses
        return self.covered_serves() / total if total else 0.0

    # -- crash-recovery state (snapshot / restore / replay) -----------------

    def state(self) -> dict:
        return {
            "scores": sorted(self.scores.items()),
            "edges": [
                {
                    "name": v.name,
                    "memory_budget": v.memory_budget,
                    "uplink_bps": v.uplink_bps,
                    "pinned": sorted(v.pinned.items()),
                    "uplink_used": v.uplink_used,
                }
                for v in sorted(self.edges.values(), key=lambda v: v.name)
            ],
            "serves": [
                {
                    "group_id": gid, "stream_id": sid,
                    "edge": s.edge_name, "content": s.content_name,
                    "kind": s.kind, "end_page": s.end_page,
                    "alloc": allocation_state(s.allocation),
                }
                for (gid, sid), s in sorted(self.serves.items())
            ],
            "counters": {
                "prefix_serves": self.prefix_serves,
                "patch_serves": self.patch_serves,
                "interval_serves": self.interval_serves,
                "plan_misses": self.plan_misses,
            },
        }

    def restore(self, state: dict) -> None:
        self.scores = {name: score for name, score in state.get("scores", [])}
        for estate in state.get("edges", []):
            view = EdgeView(
                estate["name"],
                memory_budget=estate.get("memory_budget", 0),
                uplink_bps=estate.get("uplink_bps", 0.0),
            )
            view.pinned = {n: p for n, p in estate.get("pinned", [])}
            view.uplink_used = estate.get("uplink_used", 0.0)
            self.edges[view.name] = view
        for sstate in state.get("serves", []):
            key = (sstate["group_id"], sstate["stream_id"])
            self.serves[key] = _Serve(
                sstate["edge"], sstate["content"], sstate["kind"],
                sstate.get("end_page", 0),
                allocation_from_state(sstate["alloc"]),
            )
        counters = state.get("counters", {})
        self.prefix_serves = counters.get("prefix_serves", 0)
        self.patch_serves = counters.get("patch_serves", 0)
        self.interval_serves = counters.get("interval_serves", 0)
        self.plan_misses = counters.get("plan_misses", 0)

    # -- WAL replay handlers (repro.recovery.replay) ------------------------

    def replay_attach(self, payload: dict) -> None:
        view = self.edges.setdefault(payload["edge"], EdgeView(payload["edge"]))
        view.memory_budget = payload.get("memory_budget", 0)
        view.uplink_bps = payload.get("uplink_bps", 0.0)
        view.pinned = {n: p for n, p in payload.get("pinned", [])}
        # No live channel survives a replay; the edge re-hellos later.
        view.channel = None
        # The hello refunded our in-flight serves for this edge (the
        # "release" records replay just before this one); drop the
        # matching registry entries too.
        for key, record in list(self.serves.items()):
            if record.edge_name == payload["edge"]:
                del self.serves[key]

    def replay_down(self, payload: dict) -> None:
        view = self.edges.get(payload["edge"])
        if view is not None:
            view.channel = None
            view.pinned.clear()
            view.uplink_used = 0.0
        for key, record in list(self.serves.items()):
            if record.edge_name == payload["edge"]:
                del self.serves[key]

    def replay_place(self, payload: dict) -> None:
        view = self.edges.setdefault(payload["edge"], EdgeView(payload["edge"]))
        view.pinned[payload["content"]] = payload["pages"]

    def replay_evict(self, payload: dict) -> None:
        view = self.edges.get(payload["edge"])
        if view is not None:
            view.pinned.pop(payload["content"], None)

    def replay_serve(self, payload: dict) -> None:
        # The uplink charge replays separately through the standard
        # "charge" record; only the registry entry is rebuilt here.
        key = (payload["group_id"], payload["stream_id"])
        self.serves[key] = _Serve(
            payload["edge"], payload["content"], payload["kind"],
            payload.get("end_page", 0),
            allocation_from_state(payload["alloc"]),
        )

    def replay_serve_done(self, payload: dict) -> None:
        # Likewise the refund replays via "release"; just drop the entry.
        self.serves.pop((payload["group_id"], payload["stream_id"]), None)
