"""Edge proxy tier: popularity-aware prefix caches near the clients.

Calliope's capacity story stops at the MSU — every admitted stream
ultimately costs a disk duty-cycle slot, so the cluster tops out at its
aggregate disk bandwidth.  The edge tier breaks that bound for popular
titles: an :class:`~repro.edge.proxy.EdgeProxy` sits between the MSUs
and the clients on the delivery network, pins hot-title prefixes in
memory, and serves prefix playouts, multicast patch streams and interval
hits without touching an MSU disk.  The Coordinator-side
:class:`~repro.edge.placement.PlacementManager` tracks per-title
popularity with a decayed estimator and pre-positions/evicts prefixes
across edges ahead of demand (Jayarekha & Nair: prefix- and
popularity-aware interval caching for multicast VoD).
"""

from repro.edge.placement import EdgeView, PlacementManager
from repro.edge.proxy import EdgeConfig, EdgeProxy

__all__ = ["EdgeConfig", "EdgeProxy", "EdgeView", "PlacementManager"]
