"""Calliope: a distributed, scalable multimedia server (USENIX '96).

A full reproduction of Heybey, Sullivan & England's system: a Coordinator
plus Multimedia Storage Units (MSUs) serving constant- and variable-rate
audio/video streams, running on a deterministic discrete-event simulation
of the paper's Pentium/FreeBSD testbed.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"
