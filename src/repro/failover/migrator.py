"""Mid-stream migration of playback groups onto surviving replicas.

When the Coordinator declares an MSU dead, every playback group it was
serving is turned into a :class:`ResumeTicket`: the group's identity,
its member streams (content, type, display address) and the last
position each stream reported via heartbeat.  The migrator then re-runs
admission for the whole group on the surviving MSUs — the content table
already knows about replicas made by the ReplicationManager — and, on
success, sends the new MSU :class:`~repro.net.messages.ResumePlay` for
each member plus a :class:`~repro.net.messages.StreamMigrated` notice to
the client's session.

Group identity is preserved across the move: the resumed streams keep
their group and stream ids, so the client's existing
:class:`~repro.clients.client.GroupView` simply receives a new VCR
channel and fresh ``StreamReady`` messages from the new MSU.

Tickets that cannot be placed (no live replica, or survivors full) are
parked on the admission queue at ``PRIORITY_RESUME`` — ahead of all new
requests — and retried by the Coordinator's normal ``_retry_queue``
machinery whenever resources change: a stream ends, a new replica is
made, or the failed MSU rejoins.

Recording groups are not migrated: their half-written files died with
the MSU and the Coordinator already dropped the partial content entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Generator, List, Tuple

from repro.net import messages as m

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.admission import Allocation
    from repro.core.coordinator import Coordinator

__all__ = ["StreamMeta", "MemberResume", "ResumeTicket", "MigrationRecord",
           "StreamMigrator"]


@dataclass(frozen=True)
class StreamMeta:
    """What the Coordinator must remember per stream to re-place it."""

    content_name: str
    type_name: str
    display_address: Tuple[str, int]


@dataclass(frozen=True)
class MemberResume:
    """One stream of a ticket: identity plus where to pick it back up."""

    stream_id: int
    content_name: str
    type_name: str
    display_address: Tuple[str, int]
    start_page: int = 0
    start_us: int = 0


@dataclass(frozen=True)
class ResumeTicket:
    """A playback group orphaned by an MSU failure."""

    group_id: int
    session_id: int
    client_host: str
    from_msu: str
    members: Tuple[MemberResume, ...]
    failed_at: float


@dataclass(frozen=True)
class MigrationRecord:
    """One completed migration (for logs, metrics and tests)."""

    group_id: int
    from_msu: str
    to_msu: str
    at: float
    streams: int


class StreamMigrator:
    """Turns orphaned playback groups into resumed ones."""

    def __init__(self, coordinator: "Coordinator"):
        self.coordinator = coordinator
        self.records: List[MigrationRecord] = []
        self.migrated_groups = 0
        self.migrated_streams = 0
        #: Tickets parked on the admission queue (no replica / no room).
        self.queued = 0
        #: Tickets dropped because session or content no longer exists.
        self.dropped = 0

    # -- ticket construction ---------------------------------------------------

    def msu_failed(self, msu_name: str, groups: List) -> None:
        """Build resume tickets for the dead MSU's playback groups."""
        coord = self.coordinator
        for group in groups:
            if group.recordings or not group.streams:
                continue  # recordings died with their half-written files
            session = coord.sessions.lookup(group.session_id)
            if session is None:
                self.dropped += 1
                continue
            members = []
            for stream_id, meta in group.streams.items():
                page, us = (0, 0)
                if coord.monitor is not None:
                    page, us = coord.monitor.position(
                        msu_name, group.group_id, stream_id
                    )
                members.append(
                    MemberResume(
                        stream_id, meta.content_name, meta.type_name,
                        tuple(meta.display_address), start_page=page, start_us=us,
                    )
                )
            ticket = ResumeTicket(
                group.group_id, group.session_id, session.client_host,
                msu_name, tuple(members), coord.sim.now,
            )
            coord.sim.process(
                self.migrate(ticket), name=f"migrate.g{group.group_id}"
            )

    # -- migration -------------------------------------------------------------

    def migrate(self, ticket: ResumeTicket) -> Generator:
        """Re-admit a ticket's group on a surviving MSU and resume it."""
        from repro.core.coordinator import GroupRecord

        coord = self.coordinator
        if coord.dead:
            return
        if coord.recovering:
            # Books are mid-rebuild; park the ticket durably instead of
            # placing against stale capacity.  It drains with the queue
            # once reconciliation completes.
            coord.queue_resume(ticket)
            self.queued += 1
            return
        if ticket.group_id in coord.groups:
            return  # already resumed (double failure signal)
        session = coord.sessions.lookup(ticket.session_id)
        if session is None:
            self.dropped += 1
            return
        placed: List[Tuple[MemberResume, "Allocation"]] = []
        msu_pin = None
        for member in ticket.members:
            entry = coord.db.contents.get(member.content_name)
            if entry is None:
                for _, granted in placed:
                    coord.admission.release(granted)
                self.dropped += 1
                self._trace("migrate-drop", ticket, "content gone")
                return
            ctype = coord.types.get(member.type_name)
            alloc = coord.admission.place_read(entry, ctype, msu_pin=msu_pin)
            if alloc is None:
                for _, granted in placed:
                    coord.admission.release(granted)
                coord.queue_resume(ticket)
                self.queued += 1
                self._trace("migrate-queued", ticket, "no live replica/capacity")
                return
            msu_pin = alloc.msu_name
            placed.append((member, alloc))
        group = GroupRecord(ticket.group_id, ticket.session_id, msu_pin)
        msu_channel = coord._msu_channels.get(msu_pin)
        if msu_channel is None:  # the survivor vanished mid-decision
            for _, granted in placed:
                coord.admission.release(granted)
            coord.queue_resume(ticket)
            self.queued += 1
            return
        size = len(placed)
        for member, alloc in placed:
            group.allocations[member.stream_id] = alloc
            group.streams[member.stream_id] = StreamMeta(
                member.content_name, member.type_name, member.display_address
            )
            ctype = coord.types.get(member.type_name)
            yield from coord.machine.cpu.execute(coord.SCHEDULE_CPU)
            msu_channel.send(
                coord.name,
                m.ResumePlay(
                    ticket.group_id, member.stream_id, member.content_name,
                    alloc.disk_id, ctype.protocol, ctype.bandwidth_rate,
                    ctype.variable, tuple(member.display_address),
                    ticket.client_host, start_page=member.start_page,
                    start_us=member.start_us, group_size=size,
                ),
                nbytes=m.WIRE_BYTES,
            )
        coord.register_group(group, session)
        coord.notify_session(
            ticket.session_id,
            m.StreamMigrated(
                group.group_id, msu_pin,
                tuple((mem.stream_id, mem.start_us) for mem, _ in placed),
            ),
        )
        record = MigrationRecord(
            group.group_id, ticket.from_msu, msu_pin, coord.sim.now, size
        )
        self.records.append(record)
        self.migrated_groups += 1
        self.migrated_streams += size
        self._trace("migrated", ticket, f"to={msu_pin} streams={size}")

    def _trace(self, category: str, ticket: ResumeTicket, detail: str) -> None:
        self.coordinator._trace(
            category, f"group={ticket.group_id}",
            f"from={ticket.from_msu} {detail}",
        )
