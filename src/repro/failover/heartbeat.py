"""Heartbeat-based failure detection for arbitrary beating endpoints.

The paper's Coordinator only notices a dead MSU when the TCP control
connection breaks (§2.2).  That signal is reliable for a crashed kernel
but arbitrarily late for a hung one, so the failover subsystem adds the
classic complement: endpoints send a small heartbeat every ``period``
seconds, and a per-endpoint watchdog runs a three-state machine:

``alive``    beats arriving on time.
``suspect``  ``miss_threshold`` consecutive periods with no beat.  The
             watchdog re-probes with exponential backoff rather than
             declaring death immediately — a congested control network
             should not trigger a cluster-wide migration storm.
``dead``     still silent after ``suspect_probes`` backoff probes; the
             owner's failure path runs.

The monitor is *self-arming*: only endpoints that have sent at least one
heartbeat are watched.  That keeps protocol-minimal endpoints (the
scalability experiment's fake MSUs, old traces) out of the watchdog's
jurisdiction — for them the broken-connection signal still applies.

Two deployments share the machinery:

* the Coordinator watches its **MSUs** via :meth:`HeartbeatMonitor.beat`
  (fed from :class:`~repro.net.messages.Heartbeat` control messages,
  which piggyback each playback stream's position so the migrator knows
  where to resume each stream on a replica);
* a warm-standby Coordinator (``repro.scaleout``) watches the **leader**
  via :meth:`HeartbeatMonitor.beat_for` — no positions, just liveness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Iterable, Optional, Tuple

from repro.net import messages as m
from repro.sim import Simulator

__all__ = [
    "HeartbeatConfig",
    "EndpointHealth",
    "MsuHealth",
    "HeartbeatMonitor",
]


@dataclass(frozen=True)
class HeartbeatConfig:
    """Cadence and patience of the failure detector."""

    #: Seconds between beats (0 disables heartbeats entirely).
    period: float = 0.25
    #: Consecutive missed periods before an MSU becomes suspect.
    miss_threshold: int = 3
    #: First backoff interval once suspect.
    suspect_backoff: float = 0.2
    #: Multiplier applied to the backoff between probes.
    backoff_factor: float = 2.0
    #: Silent backoff probes tolerated before declaring death.
    suspect_probes: int = 2

    @property
    def detection_latency(self) -> float:
        """Worst-case seconds from last beat to the ``dead`` verdict."""
        total = self.period * self.miss_threshold
        backoff = self.suspect_backoff
        for _ in range(self.suspect_probes):
            total += backoff
            backoff *= self.backoff_factor
        return total


@dataclass
class EndpointHealth:
    """Watchdog state for one beating endpoint (MSU or leader)."""

    name: str
    last_beat: float
    last_seq: int = 0
    beats: int = 0
    state: str = "alive"  # alive | suspect | dead
    stopped: bool = False
    backoff: float = 0.0
    probes: int = 0


#: Backward-compatible alias from when only MSUs were watched.
MsuHealth = EndpointHealth


class HeartbeatMonitor:
    """Tracks beating endpoints and reports suspected/confirmed deaths."""

    def __init__(
        self,
        sim: Simulator,
        config: HeartbeatConfig,
        on_suspect: Optional[Callable[[str], None]] = None,
        on_dead: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.on_suspect = on_suspect
        self.on_dead = on_dead
        self._records: Dict[str, EndpointHealth] = {}
        #: Latest reported stream positions, replaced wholesale per beat
        #: so stale streams age out: name -> (group, stream) -> (page, us).
        self._positions: Dict[str, Dict[Tuple[int, int], Tuple[int, int]]] = {}
        self.suspects = 0
        self.deaths = 0

    # -- intake ---------------------------------------------------------------

    def beat_for(
        self,
        name: str,
        seq: int = 0,
        positions: Iterable[Tuple[int, int, int, int]] = (),
    ) -> None:
        """Register a heartbeat from any endpoint; arms its watchdog on
        the first one.  ``positions`` is optional — a leader beacon beats
        with liveness only."""
        rec = self._records.get(name)
        if rec is None or rec.stopped:
            rec = EndpointHealth(name=name, last_beat=self.sim.now)
            self._records[name] = rec
            self.sim.process(self._watch(rec), name=f"hb-watch.{name}")
        rec.last_beat = self.sim.now
        rec.last_seq = seq
        rec.beats += 1
        if rec.state == "suspect":
            rec.state = "alive"
        self._positions[name] = {
            (group_id, stream_id): (page_index, position_us)
            for group_id, stream_id, page_index, position_us in positions
        }

    def beat(self, msg: m.Heartbeat) -> None:
        """Register an MSU heartbeat control message."""
        self.beat_for(msg.msu_name, msg.seq, msg.positions)

    def forget(self, name: str) -> None:
        """Stop watching an endpoint (it was declared down by any path)."""
        rec = self._records.get(name)
        if rec is not None:
            rec.stopped = True
        # Positions are kept: the migrator reads them *after* death.

    def forget_msu(self, msu_name: str) -> None:
        """Alias for :meth:`forget`, kept for the MSU-watching call sites."""
        self.forget(msu_name)

    def stop_all(self) -> None:
        """Disarm every watchdog (the Coordinator itself went down)."""
        for rec in self._records.values():
            rec.stopped = True

    # -- queries --------------------------------------------------------------

    def state(self, name: str) -> str:
        rec = self._records.get(name)
        return rec.state if rec is not None else "unknown"

    def position(
        self, msu_name: str, group_id: int, stream_id: int
    ) -> Tuple[int, int]:
        """Last reported (page_index, position_us), or (0, 0) if unknown."""
        return self._positions.get(msu_name, {}).get((group_id, stream_id), (0, 0))

    def audit(self) -> list:
        """Watchdog state-machine anomalies, as strings.

        Valid at any instant: every record is in a known state, a dead
        verdict always stops its watchdog, and the death counter never
        exceeds the suspect counter (death is only reachable via suspect).
        """
        problems = []
        for rec in self._records.values():
            if rec.state not in ("alive", "suspect", "dead"):
                problems.append(f"{rec.name}: unknown state {rec.state!r}")
            if rec.state == "dead" and not rec.stopped:
                problems.append(f"{rec.name}: dead but watchdog still armed")
            if rec.last_beat > self.sim.now + 1e-9:
                problems.append(
                    f"{rec.name}: last beat {rec.last_beat} in the future"
                )
        if self.deaths > self.suspects:
            problems.append(
                f"{self.deaths} deaths exceed {self.suspects} suspects"
            )
        return problems

    # -- watchdog -------------------------------------------------------------

    def _watch(self, rec: EndpointHealth) -> Generator:
        cfg = self.config
        while not rec.stopped:
            if rec.state == "alive":
                deadline = rec.last_beat + cfg.period * cfg.miss_threshold
                if self.sim.now < deadline - 1e-9:
                    yield self.sim.timeout(deadline - self.sim.now)
                    continue
                rec.state = "suspect"
                rec.backoff = cfg.suspect_backoff
                rec.probes = 0
                self.suspects += 1
                if self.on_suspect is not None:
                    self.on_suspect(rec.name)
            else:  # suspect: exponential backoff before the verdict
                seen = rec.last_beat
                yield self.sim.timeout(rec.backoff)
                if rec.stopped:
                    return
                if rec.last_beat > seen:  # a beat landed during the backoff
                    rec.state = "alive"
                    continue
                rec.probes += 1
                if rec.probes >= cfg.suspect_probes:
                    rec.state = "dead"
                    rec.stopped = True
                    self.deaths += 1
                    if self.on_dead is not None:
                        self.on_dead(rec.name)
                    return
                rec.backoff *= cfg.backoff_factor
