"""Degraded-mode admission policy.

While the cluster is missing an MSU, the Coordinator's queue stops being
plain FIFO.  Three bands, most urgent first:

``PRIORITY_RESUME``       interrupted streams waiting for a replica or a
                          freed slot — a viewer is staring at a frozen
                          frame right now.
``PRIORITY_SINGLE_COPY``  new requests for titles whose only live copy
                          competes for scarce surviving capacity.
``PRIORITY_NORMAL``       everything else.

The band is computed at enqueue time from the admin database's view of
live copies; :meth:`AdmissionControl.enqueue` keeps the queue sorted so
the existing ``_retry_queue`` drain order is the priority order.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = [
    "PRIORITY_RESUME",
    "PRIORITY_SINGLE_COPY",
    "PRIORITY_NORMAL",
    "live_locations",
    "is_degraded",
    "play_priority",
]

PRIORITY_RESUME = 0
PRIORITY_SINGLE_COPY = 1
PRIORITY_NORMAL = 2


def live_locations(db, entry) -> List[Tuple[str, str]]:
    """The entry's (msu, disk) copies hosted on MSUs still marked up."""
    out = []
    for msu_name, disk_id in entry.locations():
        state = db.msus.get(msu_name)
        if state is not None and state.available:
            out.append((msu_name, disk_id))
    return out


def is_degraded(db) -> bool:
    """True while any registered MSU is marked down."""
    return any(not state.available for state in db.msus.values())


def play_priority(db, entry) -> int:
    """Queue band for a new play request on ``entry``."""
    if is_degraded(db) and len(live_locations(db, entry)) <= 1:
        return PRIORITY_SINGLE_COPY
    return PRIORITY_NORMAL
