"""Failover: heartbeats, mid-stream migration, degraded-mode admission.

The paper stops at failure *detection* — a broken MSU control connection
takes the machine out of scheduling and its streams die (§2.2).  This
package adds the recovery half:

- :mod:`repro.failover.heartbeat` — MSUs beat periodically with stream
  positions; a suspect/dead state machine with exponential backoff
  detects silent failures faster than the TCP break.
- :mod:`repro.failover.migrator` — dead MSUs' playback groups are
  re-admitted on surviving replicas and resumed from their last
  reported position with a new ``ResumePlay`` message.
- :mod:`repro.failover.degraded` — while capacity is lost, the
  scheduling queue becomes a priority queue: interrupted streams first,
  then new requests for titles down to one live copy.

:class:`FailoverConfig` bundles the knobs; ``ClusterConfig.failover``
carries it to the Coordinator and the MSUs (None disables everything and
reproduces the paper's behavior exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.failover.degraded import (
    PRIORITY_NORMAL,
    PRIORITY_RESUME,
    PRIORITY_SINGLE_COPY,
    is_degraded,
    live_locations,
    play_priority,
)
from repro.failover.heartbeat import (
    EndpointHealth,
    HeartbeatConfig,
    HeartbeatMonitor,
    MsuHealth,
)
from repro.failover.migrator import (
    MemberResume,
    MigrationRecord,
    ResumeTicket,
    StreamMeta,
    StreamMigrator,
)

__all__ = [
    "FailoverConfig",
    "HeartbeatConfig",
    "HeartbeatMonitor",
    "EndpointHealth",
    "MsuHealth",
    "StreamMeta",
    "MemberResume",
    "ResumeTicket",
    "MigrationRecord",
    "StreamMigrator",
    "PRIORITY_RESUME",
    "PRIORITY_SINGLE_COPY",
    "PRIORITY_NORMAL",
    "is_degraded",
    "live_locations",
    "play_priority",
]


@dataclass(frozen=True)
class FailoverConfig:
    """Everything the failover subsystem needs to know."""

    heartbeat: HeartbeatConfig = field(default_factory=HeartbeatConfig)
    #: Migrate orphaned playback groups to replicas (False: queue only).
    migrate: bool = True
