"""Exception hierarchy for the Calliope reproduction."""

from __future__ import annotations


class CalliopeError(Exception):
    """Base class for all library-specific errors."""


class AdmissionError(CalliopeError):
    """A request could not be scheduled for lack of resources."""


class TypeMismatchError(CalliopeError):
    """Content type and display-port type do not match."""


class UnknownContentError(CalliopeError):
    """A content name is not in the Coordinator's table of contents."""


class ContentInUseError(CalliopeError):
    """Content cannot be removed while streams are actively reading it."""


class UnknownPortError(CalliopeError):
    """A display-port name is not registered for this session."""


class PermissionError_(CalliopeError):
    """The client lacks permission for an administrative operation."""


class StorageError(CalliopeError):
    """MSU file-system failure (out of space, bad block address, ...)."""


class OutOfSpaceError(StorageError):
    """The allocator could not find a free block."""


class ProtocolError(CalliopeError):
    """Malformed packet or unknown protocol module."""


class MSUUnavailableError(CalliopeError):
    """Operation addressed to an MSU that is marked down."""


class VCRError(CalliopeError):
    """Invalid VCR command for the stream's current state."""
