"""Experiment E5 — §3.2.3: the memory-bandwidth bottleneck.

The paper derives the disk-less data-path ceiling from the memory rates::

    1 / (1/25 + 1/18 + 2/53)  =  7.5 MByte/sec

(write into buffers at 25, copy user->kernel at 18, checksum read and
device DMA read at 53) and then measures ~6.3 MB/s by replacing the disk
process with one that writes constant values into memory buffers while a
sender transmits them — the shortfall being instruction fetches and other
accesses not in the per-byte arithmetic.

The reproduction runs the same producer/consumer pair on the simulated
machine: the writer holds the CPU while filling 4 KiB buffers; the sender
runs the full UDP path.  The model's per-packet protocol cost plays the
paper's "instruction fetch" role, so the measured figure lands below the
theoretical one the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.hardware import Machine, MachineParams
from repro.hardware.params import FDDI, MemoryParams
from repro.sim import Simulator, Store
from repro.units import CBR_PACKET_SIZE, to_mbyte_per_s

__all__ = ["MemoryPathResult", "theoretical_rate", "run_memorypath", "format_memorypath"]

#: Paper numbers for the record.
PAPER_THEORETICAL = 7.5
PAPER_MEASURED = 6.3


@dataclass(frozen=True)
class MemoryPathResult:
    """Theoretical vs measured disk-less data-path throughput (MB/s)."""

    theoretical: float
    measured: float


def theoretical_rate(memory: MemoryParams = MemoryParams()) -> float:
    """The paper's closed-form ceiling, in MB/s."""
    per_byte = (
        1.0 / memory.write_rate
        + 1.0 / memory.copy_rate
        + 2.0 / memory.read_rate
    )
    return to_mbyte_per_s(1.0 / per_byte)


def _writer(sim: Simulator, machine: Machine, tokens: Store) -> Generator:
    """The paper's replacement disk process: writes constant values."""
    cpu = machine.cpu
    while True:
        start = sim.now
        req = cpu.acquire()
        yield req
        try:
            yield from machine.memory.write(CBR_PACKET_SIZE)
        finally:
            cpu.release(req, busy=sim.now - start)
        tokens.put(CBR_PACKET_SIZE)


def _sender(sim: Simulator, nic, tokens: Store) -> Generator:
    while True:
        nbytes = yield tokens.get()
        yield from nic.udp_send(nbytes)


def run_memorypath(duration: float = 20.0) -> MemoryPathResult:
    """Measure the disk-less data path on the simulated Pentium."""
    sim = Simulator()
    machine = Machine(sim, MachineParams(disks_per_hba=()))
    nic = machine.add_nic(FDDI)
    tokens = Store(sim, name="buffers")
    sim.process(_writer(sim, machine, tokens), name="writer")
    sim.process(_sender(sim, nic, tokens), name="sender")
    sim.run(until=duration)
    return MemoryPathResult(
        theoretical=theoretical_rate(machine.params.memory),
        measured=to_mbyte_per_s(nic.throughput(duration)),
    )


def format_memorypath(result: MemoryPathResult) -> str:
    """Render the §3.2.3 comparison."""
    return (
        "Memory-path bottleneck (disk-less data path, MByte/sec)\n"
        f"  theoretical 1/(1/25 + 1/18 + 2/53): {result.theoretical:5.2f}"
        f"   (paper: {PAPER_THEORETICAL})\n"
        f"  measured writer+sender pipeline:    {result.measured:5.2f}"
        f"   (paper: ~{PAPER_MEASURED})"
    )


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_memorypath(run_memorypath()))
