"""Experiment E18 (extension) — multicast channels vs. unicast delivery.

The paper's delivery model charges one duty-cycle disk slot and one
paced unicast flow per viewer (§2.2, §3.2), which caps a single disk at
~12 concurrent MPEG-1 streams and the whole send path at the 23-stream
ceiling of Graph 1.  For a VoD workload that is wasteful: Zipf
popularity means most viewers watch the same few titles seconds apart.

This experiment replays the one-disk Zipf workload of E16 twice: once
with the paper's unicast delivery, once with the multicast subsystem on
(``ClusterConfig(multicast=MulticastConfig())``).  With multicast, the
Coordinator batches near-simultaneous requests onto one channel and lets
late joiners inside the patching horizon merge via a short unicast
patch, so admission charges per *channel*, not per viewer — the same
disk sustains at least twice the concurrent viewers, and the report
shows where the gain came from: channel occupancy, patch ratio and
disk/delivery slots saved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.clients.client import Client
from repro.clients.population import ViewerPopulation
from repro.core.cluster import CalliopeCluster, ClusterConfig
from repro.media.mpeg import MpegEncoder, packetize_cbr
from repro.metrics.report import format_multicast_summary
from repro.multicast import MulticastConfig
from repro.sim import Simulator
from repro.storage.ibtree import IBTreeConfig
from repro.units import MPEG1_RATE

__all__ = ["MulticastPoint", "run_multicast", "format_multicast"]

_CONFIG = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)


@dataclass(frozen=True)
class MulticastPoint:
    """One configuration's outcome (multicast on or off)."""

    multicast_enabled: bool
    offered_erlangs: float
    arrivals: int
    admitted: int
    blocked_or_abandoned: int
    blocking_probability: float
    concurrent_peak: int
    channels_created: int
    viewers_joined: int
    channel_occupancy: float
    patch_ratio: float
    slots_saved: int
    merges: int
    downgrades: int
    ledger_outstanding: float
    #: Per-join patch bounds: (offset_us, patch_us) for auditing.
    patch_bounds: Tuple[Tuple[int, int], ...]
    #: Network-level fan-out: sends to a group vs. per-member copies.
    multicast_sends: int
    multicast_copies: int


def _run_once(
    multicast: Optional[MulticastConfig],
    offered: float,
    mean_watch_seconds: float,
    duration: float,
    n_titles: int,
    seed: int,
) -> MulticastPoint:
    sim = Simulator()
    cluster = CalliopeCluster(
        sim,
        ClusterConfig(
            n_msus=1,
            disks_per_hba=(1,),  # disk-bound on purpose: one disk, ~12 streams
            ibtree_config=_CONFIG,
            multicast=multicast,
        ),
    )
    cluster.coordinator.db.add_customer("user")
    length = mean_watch_seconds * 6.0
    packets = packetize_cbr(
        MpegEncoder(seed=seed).bitstream(length), MPEG1_RATE, 1024
    )
    titles = []
    for t in range(n_titles):
        name = f"title{t}"
        cluster.load_content(name, "mpeg1", packets, disk_index=0)
        titles.append(name)
    sim.run(until=0.01)
    client = Client(sim, cluster, "audience")
    population = ViewerPopulation(
        sim, client, titles,
        arrival_rate=offered / mean_watch_seconds,
        mean_watch_seconds=mean_watch_seconds,
        queue_patience=2.0,
        seed=seed,
    )
    population.start()
    sim.run(until=duration)
    population.stop()
    sim.run(until=duration + 30.0)  # drain in-flight viewers
    stats = population.stats
    manager = cluster.coordinator.channel_manager
    return MulticastPoint(
        multicast_enabled=multicast is not None,
        offered_erlangs=offered,
        arrivals=stats.arrivals,
        admitted=stats.admitted,
        blocked_or_abandoned=stats.blocked + stats.abandoned,
        blocking_probability=stats.blocking_probability,
        concurrent_peak=stats.concurrent_peak,
        channels_created=manager.channels_created if manager else 0,
        viewers_joined=manager.viewers_joined if manager else 0,
        channel_occupancy=manager.occupancy() if manager else 0.0,
        patch_ratio=manager.patch_ratio() if manager else 0.0,
        slots_saved=manager.slots_saved() if manager else 0,
        merges=manager.merges if manager else 0,
        downgrades=manager.downgrades if manager else 0,
        ledger_outstanding=manager.ledger.outstanding() if manager else 0.0,
        patch_bounds=tuple(
            (j.offset_us, j.patch_us) for j in manager.patch_joins
        ) if manager else (),
        multicast_sends=cluster.delivery_net.multicast_carried,
        multicast_copies=cluster.delivery_net.multicast_copies,
    )


def run_multicast(
    offered_erlangs: float = 60.0,
    mean_watch_seconds: float = 8.0,
    duration: float = 120.0,
    n_titles: int = 8,
    batch_window: float = 0.5,
    patch_horizon: float = 6.0,
    seed: int = 14,
) -> List[MulticastPoint]:
    """The same Zipf VoD workload with unicast and multicast delivery."""
    unicast = _run_once(
        None, offered_erlangs, mean_watch_seconds, duration, n_titles, seed
    )
    multicast = _run_once(
        MulticastConfig(batch_window=batch_window, patch_horizon=patch_horizon),
        offered_erlangs, mean_watch_seconds, duration, n_titles, seed,
    )
    return [unicast, multicast]


def format_multicast(points: List[MulticastPoint]) -> str:
    """Render the on/off comparison plus the channel metrics."""
    lines = [
        "Multicast channels on the disk-bound Zipf VoD workload "
        "(one MSU, one disk)",
        f"{'delivery':>9} | {'arrivals':>8} | {'admitted':>8} | {'denied':>6} | "
        f"{'P(block)':>8} | {'peak':>4} | {'channels':>8} | {'saved':>5}",
    ]
    for p in points:
        label = "mcast" if p.multicast_enabled else "unicast"
        lines.append(
            f"{label:>9} | {p.arrivals:>8} | {p.admitted:>8} | "
            f"{p.blocked_or_abandoned:>6} | {p.blocking_probability:>8.3f} | "
            f"{p.concurrent_peak:>4} | {p.channels_created:>8} | "
            f"{p.slots_saved:>5}"
        )
    off = next((p for p in points if not p.multicast_enabled), None)
    on = next((p for p in points if p.multicast_enabled), None)
    if off is not None and on is not None and off.concurrent_peak:
        gain = on.concurrent_peak / off.concurrent_peak
        lines.append(
            f"concurrent viewers per disk: {off.concurrent_peak} -> "
            f"{on.concurrent_peak} ({gain:.1f}x); "
            f"{on.multicast_sends} channel sends fanned out to "
            f"{on.multicast_copies} receiver copies"
        )
    if on is not None:

        class _View:  # format_multicast_summary expects manager-like attrs
            channels_created = on.channels_created
            viewers_joined = on.viewers_joined
            merges = on.merges
            downgrades = on.downgrades

            @staticmethod
            def occupancy() -> float:
                return on.channel_occupancy

            @staticmethod
            def patch_ratio() -> float:
                return on.patch_ratio

            @staticmethod
            def slots_saved() -> int:
                return on.slots_saved

        for name, value in format_multicast_summary(_View):
            lines.append(f"  {name:<36} {value:>10.1f}")
        lines.append(
            f"  {'ledger outstanding after drain':<36} "
            f"{on.ledger_outstanding:>10.1f}"
        )
    lines.append(
        "(the paper's per-viewer unicast delivery (§2.2) pays one disk"
        " slot per viewer; batching and patching charge per channel, so"
        " concurrent viewers scale with delivery fan-out, not disk arms)"
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_multicast(run_multicast()))
