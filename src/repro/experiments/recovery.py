"""Experiment E20 (extension) — Coordinator recovery: WAL replay + reconciliation.

The paper's Coordinator keeps every admission book and the AdminDatabase
in process memory; §2.2's failure story covers only MSU death.  PR 5
adds the other half: a write-ahead journal with periodic snapshots
(:mod:`repro.recovery`) so a cold-started Coordinator can rebuild its
state and reconcile it against live MSU ``StateReport``s.

This experiment measures that restart path as the cluster's load grows.
For each scale it admits ``n`` viewers, kills the Coordinator
mid-playback, lets the MSUs serve unsupervised for a fixed outage, then
cold-starts a replacement from the journal.  Measured per point:

* **time to recover** — simulated seconds from the replacement's
  ``begin_recovery`` until reconciliation completes (every surviving
  MSU's StateReport collected and the books rebuilt).
* **WAL replay volume** — records replayed past the last snapshot.
* **books fidelity** — immediately after reconciliation the rebuilt
  admission books must be *byte-identical* (``json.dumps`` equality) to
  a from-scratch reconciliation of the same state; and every stream that
  was admitted before the crash must still be playing (kept, not
  dropped) afterwards.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Generator, List, Sequence

from repro.clients.client import Client, GroupView
from repro.core.cluster import CalliopeCluster, ClusterConfig
from repro.media.mpeg import MpegEncoder, packetize_cbr
from repro.metrics.report import format_recovery_summary
from repro.recovery import RecoveryConfig, books_state, expected_books
from repro.sim import Simulator
from repro.storage.ibtree import IBTreeConfig
from repro.units import MPEG1_RATE

__all__ = ["RecoveryPoint", "run_recovery", "format_recovery"]

_CONFIG = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)

#: How long the MSUs serve alone between the kill and the cold start.
_OUTAGE = 2.0

#: Reconciliation grace: MSUs that fail to report within this window
#: after the cold start are declared failed (none should, here).
_GRACE = 1.0


@dataclass(frozen=True)
class RecoveryPoint:
    """One restart at one load level."""

    viewers: int
    #: Streams the books charged the instant before the kill.
    active_before: int
    time_to_recover_s: float
    wal_records: int
    snapshot_seq: int
    msus_reported: int
    streams_kept: int
    streams_dropped: int
    streams_adopted: int
    tickets_recovered: int
    discrepancies: int
    #: json.dumps equality of the rebuilt books vs a from-scratch
    #: reconciliation, taken immediately after recovery completed.
    books_identical: bool
    #: The full RecoveryOutcome, for the detailed summary block.
    outcome: object = None


def _viewer(
    client: Client, title: str, port_name: str, views: Dict[str, GroupView]
) -> Generator:
    yield from client.register_port(port_name, "mpeg1")
    view = yield from client.play(title, port_name)
    views[port_name] = view
    yield from client.wait_ready(view)


def _run_point(
    n_viewers: int,
    n_msus: int,
    n_titles: int,
    kill_at: float,
    seed: int,
) -> RecoveryPoint:
    sim = Simulator()
    cluster = CalliopeCluster(
        sim,
        ClusterConfig(
            n_msus=n_msus,
            ibtree_config=_CONFIG,
            recovery=RecoveryConfig(snapshot_every=256, report_grace=_GRACE),
            seed=seed,
        ),
    )
    coord = cluster.coordinator
    coord.db.add_customer("user")
    length = kill_at + _OUTAGE + 25.0
    packets = packetize_cbr(MpegEncoder(seed=seed).bitstream(length), MPEG1_RATE, 1024)
    titles = []
    for t in range(n_titles):
        name = f"title{t}"
        cluster.load_content(
            name, "mpeg1", packets, msu_index=t % n_msus, disk_index=t % 2
        )
        titles.append(name)
    sim.run(until=0.05)  # let the MsuHello round-trip register every MSU

    client = Client(sim, cluster, "audience")
    views: Dict[str, GroupView] = {}
    sim.process(client.open_session("user"), name="e20.session")
    sim.run(until=0.2)
    for v in range(n_viewers):
        sim.process(
            _viewer(client, titles[v % n_titles], f"v{v}", views), name=f"e20.v{v}"
        )
    sim.run(until=kill_at)

    active_before = sum(
        len(group.allocations) for group in coord.groups.values()
    )
    cluster.crash_coordinator()
    sim.run(until=sim.now + _OUTAGE)
    cluster.restart_coordinator()
    coord = cluster.coordinator
    # StateReports arrive within a couple of control-channel round trips;
    # the grace timer bounds the wait even if one never comes.
    sim.run(until=sim.now + _GRACE + 0.5)

    outcome = coord.last_recovery
    if outcome is None:  # pragma: no cover - recovery must complete
        raise RuntimeError("reconciliation never completed")
    have = json.dumps(books_state(coord), sort_keys=True)
    want = json.dumps(expected_books(coord), sort_keys=True)
    return RecoveryPoint(
        viewers=n_viewers,
        active_before=active_before,
        time_to_recover_s=outcome.time_to_recover,
        wal_records=outcome.wal_records,
        snapshot_seq=outcome.snapshot_seq,
        msus_reported=outcome.msus_reported,
        streams_kept=outcome.streams_kept,
        streams_dropped=outcome.streams_dropped,
        streams_adopted=outcome.streams_adopted,
        tickets_recovered=outcome.tickets_recovered,
        discrepancies=len(outcome.discrepancies),
        books_identical=have == want,
        outcome=outcome,
    )


def run_recovery(
    scales: Sequence[int] = (4, 8, 16),
    n_msus: int = 3,
    n_titles: int = 4,
    kill_at: float = 5.0,
    seed: int = 13,
) -> List[RecoveryPoint]:
    """One kill/cold-start cycle per load level in ``scales``."""
    return [
        _run_point(n, n_msus, n_titles, kill_at, seed + i)
        for i, n in enumerate(scales)
    ]


def format_recovery(points: List[RecoveryPoint]) -> str:
    """Render the restart path the way the recovery story reads."""
    lines = [
        "Coordinator recovery: journal replay + MSU-state reconciliation "
        f"(outage {_OUTAGE:.1f}s)",
        f"{'viewers':>7} | {'active':>6} | {'recover s':>9} | {'WAL':>5} | "
        f"{'kept':>4} | {'dropped':>7} | {'adopted':>7} | {'books':>9}",
    ]
    for p in points:
        books = "identical" if p.books_identical else "DIVERGED"
        lines.append(
            f"{p.viewers:>7} | {p.active_before:>6} | "
            f"{p.time_to_recover_s:>9.3f} | {p.wal_records:>5} | "
            f"{p.streams_kept:>4} | {p.streams_dropped:>7} | "
            f"{p.streams_adopted:>7} | {books:>9}"
        )
    biggest = points[-1]
    lines.append(f"-- {biggest.viewers} viewers --")
    for name, value in format_recovery_summary(biggest.outcome):
        lines.append(f"  {name:<28} {value:>10.2f}")
    lines.append(
        "(streams admitted before the kill keep playing through the outage;"
        " the cold start replays snapshot+WAL, collects StateReports, and"
        " rebuilds books byte-identical to a from-scratch reconciliation)"
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_recovery(run_recovery()))
