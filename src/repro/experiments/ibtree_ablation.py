"""Experiment E8 — §2.2.1: what integrating internal pages buys.

The IB-tree copies a full internal page into the current data page, so a
recording writes *zero* extra disk transfers for its index, and on
sequential reads the internal pages "are so small and only appear in 0.1%
of the data pages so they do not affect read bandwidth appreciably".

The ablation compares the integrated layout against the classic layout
that writes every internal page as its own disk transfer: extra
duty-cycle slots on the write path, and the read-bandwidth overhead of
the embedded pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

import numpy as np

from repro.hardware import Machine, MachineParams
from repro.sim import Simulator
from repro.storage.filesystem import MsuFileSystem
from repro.storage.ibtree import IBTreeConfig, IBTreeWriter, PacketRecord
from repro.storage.layout import SpanVolume
from repro.storage.raw_disk import RawDisk

__all__ = [
    "ABLATION_CONFIG",
    "IbtreeAblationResult",
    "format_ibtree_ablation",
    "run_ibtree_ablation",
]


@dataclass(frozen=True)
class IbtreeAblationResult:
    """Costs of the integrated vs separate internal-page layouts."""

    data_pages: int
    internal_pages: int
    #: Fraction of read-back bytes that are embedded index (paper: ~0.1 %).
    read_overhead_fraction: float
    #: Seconds to write the stream with internal pages integrated.
    integrated_write_seconds: float
    #: Seconds with internal pages written as separate transfers.
    separate_write_seconds: float

    @property
    def write_penalty(self) -> float:
        """Fractional write-time increase of the separate layout."""
        return self.separate_write_seconds / self.integrated_write_seconds - 1.0


#: Scaled geometry with the paper's proportions: one internal page per
#: ``max_keys`` data pages and the same internal/data size ratio as the
#: production 28 KiB / 256 KiB / 1024-key layout, so the read-overhead
#: fraction matches the paper's ~0.1 % while a modest stream still embeds
#: several internal pages.
ABLATION_CONFIG = IBTreeConfig(
    data_page_size=32 * 1024, internal_page_size=2 * 1024, max_keys=64
)


def _build_pages(
    npackets: int, config: IBTreeConfig, seed: int, payload_bytes: int = 1024
) -> List[bytes]:
    rng = np.random.default_rng(seed)
    writer = IBTreeWriter(config)
    pages: List[bytes] = []
    t = 0
    for _ in range(npackets):
        t += int(rng.integers(15_000, 30_000))
        payload = rng.integers(0, 256, payload_bytes, dtype=np.uint8).tobytes()
        page = writer.feed(PacketRecord(t, payload))
        if page is not None:
            pages.append(page)
    tail, _root = writer.finish()
    pages.extend(tail)
    return pages


def _timed_write(
    sim: Simulator, fs: MsuFileSystem, pages: List[bytes],
    extra_internal_writes: int, internal_size: int,
) -> Generator:
    handle = fs.create("stream", "mpeg1")
    interval = max(1, len(pages) // max(1, extra_internal_writes)) if extra_internal_writes else 0
    raw = fs.volume.disks[0]
    written = 0
    for i, page in enumerate(pages):
        yield from fs.append_file_block(handle, page)
        if extra_internal_writes and written < extra_internal_writes and (i + 1) % interval == 0:
            # The separate layout pays one more transfer (and seek) per
            # full internal page, at the internal-page size.
            offset = (fs.volume.nblocks - 1 - written) * fs.volume.block_size
            yield from raw.drive.transfer(offset, internal_size, write=True)
            written += 1


def run_ibtree_ablation(
    npackets: int = 9_000, seed: int = 5, config: IBTreeConfig = None
) -> IbtreeAblationResult:
    """Build a long stream both ways and compare write cost."""
    if config is None:
        config = ABLATION_CONFIG
    pages = _build_pages(npackets, config, seed)
    internal_pages = sum(
        1 for p in pages
        if int.from_bytes(p[10:14], "little") > 0  # header internal_len field
    )
    read_overhead = (internal_pages * config.internal_page_size) / (
        len(pages) * config.data_page_size
    )
    timings = []
    for extra in (0, internal_pages):
        sim = Simulator()
        machine = Machine(sim, MachineParams(disks_per_hba=(1,)), seed=seed)
        fs = MsuFileSystem(SpanVolume(RawDisk(machine.disks[0]), config.data_page_size))
        proc = sim.process(
            _timed_write(sim, fs, pages, extra, config.internal_page_size),
            name="writer",
        )
        sim.run_until_event(proc)
        timings.append(sim.now)
    return IbtreeAblationResult(
        data_pages=len(pages),
        internal_pages=internal_pages,
        read_overhead_fraction=read_overhead,
        integrated_write_seconds=timings[0],
        separate_write_seconds=timings[1],
    )


def format_ibtree_ablation(result: IbtreeAblationResult) -> str:
    """Render the integrated-vs-separate comparison."""
    return (
        "IB-tree integration ablation\n"
        f"  data pages written:        {result.data_pages}\n"
        f"  internal pages embedded:   {result.internal_pages}\n"
        f"  read-bandwidth overhead:   {result.read_overhead_fraction * 100.0:.3f}%"
        "   (paper: ~0.1%)\n"
        f"  write time, integrated:    {result.integrated_write_seconds:7.2f} s\n"
        f"  write time, separate:      {result.separate_write_seconds:7.2f} s"
        f"  (+{result.write_penalty * 100.0:.1f}% — the slots the IB-tree saves)"
    )


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_ibtree_ablation(run_ibtree_ablation()))
