"""Experiment E7 — §2.3.3: elevator scheduling buys only ~6 %.

"Using a simple program that simulated 24 concurrent users reading random
256 KByte disk blocks, we found that an elevator scheduling algorithm
improves throughput by only about 6% for our disks."

The reason, as the paper argues: rotation and settle time are unaffected
by head scheduling, and 256 KiB transfers already dominate the service
time, so shrinking the seek component moves the needle very little.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.hardware import Machine, MachineParams, SeekPolicy
from repro.sim import Simulator
from repro.units import BLOCK_SIZE, to_mbyte_per_s

__all__ = ["ElevatorResult", "run_elevator", "format_elevator"]

PAPER_IMPROVEMENT = 0.06


@dataclass(frozen=True)
class ElevatorResult:
    """Throughput (MB/s) under each disk queue discipline."""

    fcfs: float
    elevator: float
    sstf: float

    @property
    def elevator_gain(self) -> float:
        """Fractional throughput improvement of elevator over FCFS."""
        return self.elevator / self.fcfs - 1.0


def _reader(sim: Simulator, disk, rng: np.random.Generator) -> Generator:
    nblocks = disk.params.capacity_bytes // BLOCK_SIZE
    while True:
        offset = int(rng.integers(0, nblocks)) * BLOCK_SIZE
        yield from disk.transfer(offset, BLOCK_SIZE)


def _measure(policy: SeekPolicy, users: int, duration: float, seed: int) -> float:
    sim = Simulator()
    machine = Machine(
        sim, MachineParams(disks_per_hba=(1,)), seed=seed, disk_policy=policy
    )
    disk = machine.disks[0]
    rng = np.random.default_rng(seed)
    for _ in range(users):
        child = np.random.default_rng(rng.integers(0, 2**63))
        sim.process(_reader(sim, disk, child), name="reader")
    sim.run(until=duration)
    return to_mbyte_per_s(disk.throughput(duration))


def run_elevator(
    users: int = 24, duration: float = 60.0, seed: int = 3
) -> ElevatorResult:
    """24 concurrent random 256 KiB readers under three disciplines."""
    return ElevatorResult(
        fcfs=_measure(SeekPolicy.FCFS, users, duration, seed),
        elevator=_measure(SeekPolicy.ELEVATOR, users, duration, seed),
        sstf=_measure(SeekPolicy.SSTF, users, duration, seed),
    )


def format_elevator(result: ElevatorResult) -> str:
    """Render the comparison the §2.3.3 aside makes."""
    return (
        "Disk head scheduling, 24 concurrent 256 KiB random readers (MByte/sec)\n"
        f"  FCFS (round-robin, as built): {result.fcfs:5.2f}\n"
        f"  elevator:                     {result.elevator:5.2f}"
        f"  (+{result.elevator_gain * 100.0:.1f}%, paper: ~6%)\n"
        f"  SSTF:                         {result.sstf:5.2f}"
    )


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_elevator(run_elevator()))
