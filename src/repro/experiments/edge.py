"""Experiment E21 (extension) — the edge proxy tier on the Zipf workload.

E18 showed multicast batching and patching lift a single disk from ~12
concurrent MPEG-1 viewers to channel-limited fan-out, but the merge
window is still bounded by the MSU patch horizon: a joiner more than
``patch_horizon`` seconds behind a running channel needs a fresh channel
— and a fresh disk slot.  The edge tier attacks exactly that bound.
The Coordinator's placement loop pre-positions the hottest titles'
prefixes on memory-only EdgeProxy nodes; a late joiner whose missed
opening is covered by a pinned prefix receives the patch from the edge
instead, which costs edge uplink bandwidth but **no MSU disk slot and
no ledger charge** — so the joinable window of a channel stretches from
the patch horizon to the pinned-prefix duration.

This experiment replays the one-disk Zipf(1.0) workload twice at the
same offered load: once with multicast alone (the E18 winner), once
with multicast plus one edge proxy.  The acceptance bar is a further
>=2x in concurrent viewers per disk, with the report showing where the
gain came from: edge-covered patches, the edge hit ratio, and uplink
bytes served from memory instead of disk arms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.clients.client import Client
from repro.clients.population import ViewerPopulation
from repro.core.cluster import CalliopeCluster, ClusterConfig
from repro.edge import EdgeConfig
from repro.media.mpeg import MpegEncoder, packetize_cbr
from repro.multicast import MulticastConfig
from repro.sim import Simulator
from repro.storage.ibtree import IBTreeConfig
from repro.units import MPEG1_RATE

__all__ = ["EdgePoint", "run_edge", "format_edge"]

_CONFIG = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)


@dataclass(frozen=True)
class EdgePoint:
    """One configuration's outcome (edge tier on or off)."""

    edges_enabled: bool
    offered_erlangs: float
    arrivals: int
    admitted: int
    blocked_or_abandoned: int
    blocking_probability: float
    concurrent_peak: int
    channels_created: int
    viewers_joined: int
    channel_occupancy: float
    msu_patches: int
    edge_patches: int
    edge_prefix_serves: int
    edge_hit_ratio: float
    edge_bytes_served: int
    edge_pinned_bytes: int
    edge_admitted: int
    slots_saved: int
    ledger_outstanding: float
    edge_uplink_outstanding: float


def _run_once(
    edge: Optional[EdgeConfig],
    offered: float,
    mean_watch_seconds: float,
    duration: float,
    n_titles: int,
    zipf_s: float,
    seed: int,
) -> EdgePoint:
    sim = Simulator()
    cluster = CalliopeCluster(
        sim,
        ClusterConfig(
            n_msus=1,
            disks_per_hba=(1,),  # disk-bound on purpose, exactly like E18
            ibtree_config=_CONFIG,
            multicast=MulticastConfig(batch_window=0.5, patch_horizon=6.0),
            edge=edge,
        ),
    )
    cluster.coordinator.db.add_customer("user")
    length = mean_watch_seconds * 6.0
    packets = packetize_cbr(
        MpegEncoder(seed=seed).bitstream(length), MPEG1_RATE, 1024
    )
    titles = []
    for t in range(n_titles):
        name = f"title{t}"
        cluster.load_content(name, "mpeg1", packets, disk_index=0)
        titles.append(name)
    sim.run(until=0.01)
    client = Client(sim, cluster, "audience")
    population = ViewerPopulation(
        sim, client, titles,
        arrival_rate=offered / mean_watch_seconds,
        mean_watch_seconds=mean_watch_seconds,
        zipf_s=zipf_s,
        queue_patience=2.0,
        seed=seed,
    )
    population.start()
    sim.run(until=duration)
    population.stop()
    # Drain in-flight viewers plus the longest possible edge patch.
    sim.run(until=duration + 60.0)
    stats = population.stats
    manager = cluster.coordinator.channel_manager
    placement = cluster.coordinator.placement
    edge_bytes = sum(
        proxy.prefix_bytes_served + proxy.patch_bytes_served
        for proxy in cluster.edges
    )
    pinned = sum(proxy.pool.used for proxy in cluster.edges)
    uplink = sum(
        view.uplink_used for view in placement.edges.values()
    ) if placement else 0.0
    return EdgePoint(
        edges_enabled=edge is not None,
        offered_erlangs=offered,
        arrivals=stats.arrivals,
        admitted=stats.admitted,
        blocked_or_abandoned=stats.blocked + stats.abandoned,
        blocking_probability=stats.blocking_probability,
        concurrent_peak=stats.concurrent_peak,
        channels_created=manager.channels_created if manager else 0,
        viewers_joined=manager.viewers_joined if manager else 0,
        channel_occupancy=manager.occupancy() if manager else 0.0,
        msu_patches=len(manager.patch_joins) if manager else 0,
        edge_patches=manager.edge_patched if manager else 0,
        edge_prefix_serves=placement.prefix_serves if placement else 0,
        edge_hit_ratio=placement.hit_ratio() if placement else 0.0,
        edge_bytes_served=edge_bytes,
        edge_pinned_bytes=pinned,
        edge_admitted=cluster.coordinator.admission.edge_admitted,
        slots_saved=manager.slots_saved() if manager else 0,
        ledger_outstanding=manager.ledger.outstanding() if manager else 0.0,
        edge_uplink_outstanding=uplink,
    )


def run_edge(
    offered_erlangs: float = 110.0,
    mean_watch_seconds: float = 8.0,
    duration: float = 120.0,
    n_titles: int = 8,
    zipf_s: float = 1.0,
    prefix_pages: int = 256,
    seed: int = 14,
) -> List[EdgePoint]:
    """The same Zipf(1.0) VoD workload with and without the edge tier."""
    baseline = _run_once(
        None, offered_erlangs, mean_watch_seconds, duration, n_titles,
        zipf_s, seed,
    )
    edged = _run_once(
        EdgeConfig(
            n_edges=1,
            prefix_pages=prefix_pages,
            placement_period=0.5,
            promote_score=0.5,
            evict_score=0.01,
            decay=0.9,
        ),
        offered_erlangs, mean_watch_seconds, duration, n_titles,
        zipf_s, seed,
    )
    return [baseline, edged]


def format_edge(points: List[EdgePoint]) -> str:
    """Render the on/off comparison plus the edge-tier metrics."""
    lines = [
        "Edge proxy tier on the disk-bound Zipf(1.0) VoD workload "
        "(one MSU, one disk, multicast on)",
        f"{'tier':>10} | {'arrivals':>8} | {'admitted':>8} | {'denied':>6} | "
        f"{'P(block)':>8} | {'peak':>4} | {'channels':>8} | {'patches':>7}",
    ]
    for p in points:
        label = "mcast+edge" if p.edges_enabled else "mcast"
        lines.append(
            f"{label:>10} | {p.arrivals:>8} | {p.admitted:>8} | "
            f"{p.blocked_or_abandoned:>6} | {p.blocking_probability:>8.3f} | "
            f"{p.concurrent_peak:>4} | {p.channels_created:>8} | "
            f"{p.msu_patches + p.edge_patches:>7}"
        )
    off = next((p for p in points if not p.edges_enabled), None)
    on = next((p for p in points if p.edges_enabled), None)
    if off is not None and on is not None and off.concurrent_peak:
        gain = on.concurrent_peak / off.concurrent_peak
        lines.append(
            f"concurrent viewers per disk: {off.concurrent_peak} -> "
            f"{on.concurrent_peak} ({gain:.1f}x over the E18 multicast "
            f"baseline)"
        )
    if on is not None:
        lines.append(
            f"  {'edge-covered patches':<36} {on.edge_patches:>10}"
        )
        lines.append(
            f"  {'MSU (disk) patches':<36} {on.msu_patches:>10}"
        )
        lines.append(
            f"  {'edge plan hit ratio':<36} {on.edge_hit_ratio:>10.2f}"
        )
        lines.append(
            f"  {'bytes served from edge memory':<36} "
            f"{on.edge_bytes_served:>10}"
        )
        lines.append(
            f"  {'bytes pinned at drain':<36} {on.edge_pinned_bytes:>10}"
        )
        lines.append(
            f"  {'zero-disk-cost admissions':<36} {on.edge_admitted:>10}"
        )
        lines.append(
            f"  {'edge uplink outstanding after drain':<36} "
            f"{on.edge_uplink_outstanding:>10.1f}"
        )
        lines.append(
            f"  {'ledger outstanding after drain':<36} "
            f"{on.ledger_outstanding:>10.1f}"
        )
    lines.append(
        "(an edge-served patch charges the edge uplink, not an MSU disk"
        " slot, so a channel's joinable window stretches from the patch"
        " horizon to the pinned-prefix duration — more viewers merge"
        " onto the same channel and the disk arm stays free)"
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_edge(run_edge()))
