"""Experiment E9 — §2.2.1: timer-granularity jitter.

"Calliope does not use a real-time operating system and FreeBSD timers
have only 10 ms granularity, so delivery times are only approximate. ...
Calliope will not add more than 150 milliseconds of jitter in the worst
case" — and the paper's workaround for the clock bug was to keep time with
the Pentium cycle counter instead.

The ablation runs the same comfortable constant-rate workload under a
10 ms timer, a 1 ms timer, and a precise (cycle-counter) timer, and
compares the lateness the MSU's own scheduling adds.
"""

from __future__ import annotations

from typing import Dict

from repro.core.cluster import ClusterConfig
from repro.experiments._support import StreamingRig, run_streaming_workload
from repro.hardware.params import TimerParams
from repro.media.mpeg import MpegEncoder, packetize_cbr
from repro.metrics.lateness import LatenessCdf
from repro.metrics.report import format_cdf_table
from repro.units import CBR_PACKET_SIZE, MPEG1_RATE, ms

__all__ = ["run_timer_jitter", "format_timer_jitter"]

PAPER_WORST_CASE_MS = 150.0


def run_timer_jitter(
    granularities_ms=(10.0, 1.0, 0.0),
    streams: int = 16,
    duration: float = 30.0,
    seed: int = 4,
) -> Dict[float, LatenessCdf]:
    """Sweep the software-clock granularity; returns gran (ms) -> CDF."""
    curves: Dict[float, LatenessCdf] = {}
    for gran in granularities_ms:
        rig = StreamingRig(ClusterConfig())
        rig.msu.machine.timer.params = TimerParams(granularity=ms(gran))
        rig.uncap_admission()
        encoder = MpegEncoder(rate=MPEG1_RATE, seed=seed)
        packets = packetize_cbr(
            encoder.bitstream(duration + 30.0), MPEG1_RATE, CBR_PACKET_SIZE
        )
        ndisks = len(rig.msu.disk_ids())
        for d in range(ndisks):
            rig.cluster.load_content(f"movie-d{d}", "mpeg1", packets, disk_index=d)
        plan = [(f"movie-d{i % ndisks}", "mpeg1") for i in range(streams)]
        curves[gran] = run_streaming_workload(
            rig, plan, duration, stagger_span=2.0, seed=seed
        )
    return curves


def format_timer_jitter(curves: Dict[float, LatenessCdf]) -> str:
    """Render the sweep."""
    named = {
        ("cycle counter" if g == 0 else f"{g:g} ms timer"): c
        for g, c in curves.items()
    }
    return (
        "Timer-granularity jitter (16 constant-rate streams)\n"
        + format_cdf_table(named, points_ms=(0, 5, 10, 25, 50, 150))
    )


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_timer_jitter(run_timer_jitter()))
