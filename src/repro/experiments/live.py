"""Experiment E22 (extension) — live TV at channel-surf scale.

The Calliope paper serves *stored* streams; PR 8 adds the broadcast
shape: a channel's media is appended onto an MSU by a feed while the
multicast fan-out follows the growing tail, viewers pause-live and
rewind-live inside a bounded time-shift ring, and the Coordinator's EPG
owns the lineup.  The economics to demonstrate: one ingest slot plus
one fan-out slot per channel serves *every* viewer — disk cost is
O(channels), not O(viewers) — while the ring bounds the storage cost of
time shift to a window, not a broadcast.

This experiment puts a ``ChannelSurfer`` population (default 55
viewers, each hopping a Zipf-weighted lineup with pauses and
rewind-lives) on a small cluster broadcasting three live channels, and
then reruns the seeded chaos sweep — MSU crashes/hangs, Coordinator
outages, ingest stalls, surf storms — asserting that every registered
invariant (ring bounds, fan-out membership, drained books) holds
throughout.  Headlines: peak live viewers per busy disk, the rewind
hit rate inside the ring window, and surf join latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Sequence

from repro.clients.workload import ChannelSurfer
from repro.core.cluster import CalliopeCluster, ClusterConfig
from repro.live import ChannelSpec, LiveConfig, LiveSource
from repro.media.mpeg import MpegEncoder, packetize_cbr
from repro.sim import Simulator
from repro.storage.ibtree import IBTreeConfig
from repro.units import MPEG1_RATE
from repro.verify import ChaosCluster, ChaosConfig, ChaosSchedule, ChaosReport
from repro.verify.invariants import builtin_registry

__all__ = ["LivePoint", "run_live", "run_live_chaos", "format_live"]

_CONFIG = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)


@dataclass(frozen=True)
class LivePoint:
    """Outcome of one live-TV surf run."""

    n_channels: int
    n_surfers: int
    n_disks: int
    busy_disks: int           # disks actually hosting a live channel
    broadcast_seconds: float
    joins: int
    timeouts: int
    errors: int
    peak_viewers: int         # max concurrent fan-out subscribers
    viewers_per_disk: float   # peak over the disks carrying channels
    join_latency_mean: float
    join_latency_p95: float
    pauses: int
    rewinds: int
    rewind_hits: int
    rewind_hit_rate: float
    merges: int
    surf_throttled: int
    channels_opened: int
    channels_closed: int
    pages_trimmed: int        # ring reclamation across all channels
    drain_violations: int     # registered invariants broken after drain


def run_live(
    n_channels: int = 3,
    n_surfers: int = 55,
    broadcast_seconds: float = 24.0,
    ring_seconds: float = 5.0,
    n_msus: int = 2,
    hops: int = 3,
    dwell_mean: float = 2.0,
    seed: int = 22,
) -> LivePoint:
    """One surf-storm run against a live lineup; returns its LivePoint."""
    sim = Simulator()
    live = LiveConfig(
        lineup=tuple(
            ChannelSpec(
                f"live{c}", "mpeg1", f"feed{c}",
                start_at=0.5 + 0.2 * c,
                duration_seconds=broadcast_seconds,
            )
            for c in range(n_channels)
        ),
        ring_seconds=ring_seconds,
        surf_rate=30.0,
        surf_burst=15.0,
        off_air_grace=8.0,
    )
    cluster = CalliopeCluster(
        sim,
        ClusterConfig(n_msus=n_msus, ibtree_config=_CONFIG, live=live),
    )
    cluster.coordinator.db.add_customer("user")
    for c in range(n_channels):
        source = LiveSource(sim, cluster, f"feed{c}")
        source.add_feed(
            f"live{c}",
            packetize_cbr(
                MpegEncoder(seed=seed + c).bitstream(broadcast_seconds),
                MPEG1_RATE, 1024,
            ),
        )
    lineup_names = [spec.name for spec in live.lineup]
    surfers: List[ChannelSurfer] = []
    for i in range(n_surfers):
        surfer = ChannelSurfer(
            sim, cluster, f"surf{i}", lineup_names,
            hops=hops, dwell_mean=dwell_mean, tune_timeout=3.0,
            pause_chance=0.25, rewind_chance=0.35,
            rewind_seconds=max(1.0, ring_seconds - 1.0),
            seed=seed * 1000 + i,
        )
        surfers.append(surfer)

    def stagger() -> Generator:
        # Arrivals spread over the first third of the broadcast, so the
        # lineup sees join waves while every channel is still on the air.
        gap = broadcast_seconds / (3.0 * max(1, n_surfers))
        yield sim.timeout(1.0)
        for surfer in surfers:
            surfer.start()
            yield sim.timeout(gap)

    sim.process(stagger(), name="surf.arrivals")

    peak = [0]
    hosts: set = set()
    trimmed: dict = {}  # channel id -> last pages_trimmed seen

    def monitor() -> Generator:
        # Rings and hosting disks must be sampled *while* channels are on
        # the air: a closed channel leaves no MSU-side state behind.
        manager = cluster.coordinator.live_manager
        while True:
            live_now = 0
            for msu in cluster.msus:
                for cid, ch in msu.channels.items():
                    if cid in msu.live:
                        live_now += len(ch.subscribers)
                        trimmed[cid] = msu.live[cid].pages_trimmed
            peak[0] = max(peak[0], live_now)
            for rec in manager.channels.values():
                hosts.add((rec.msu_name, rec.disk_id))
            yield sim.timeout(0.2)

    sim.process(monitor(), name="surf.monitor")
    sim.run(until=broadcast_seconds + 12.0)

    manager = cluster.coordinator.live_manager
    busy_disks = max(1, len(hosts))
    n_disks = sum(len(msu.disk_processes) for msu in cluster.msus)
    latencies = sorted(
        lat for surfer in surfers for lat in surfer.join_latencies
    )
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    p95 = latencies[int(0.95 * (len(latencies) - 1))] if latencies else 0.0
    pages_trimmed = sum(trimmed.values())
    violations = builtin_registry().check(cluster, "drain")
    return LivePoint(
        n_channels=n_channels,
        n_surfers=n_surfers,
        n_disks=n_disks,
        busy_disks=busy_disks,
        broadcast_seconds=broadcast_seconds,
        joins=sum(s.joins for s in surfers),
        timeouts=sum(s.timeouts for s in surfers),
        errors=sum(s.errors for s in surfers),
        peak_viewers=peak[0],
        viewers_per_disk=peak[0] / max(1, busy_disks),
        join_latency_mean=mean,
        join_latency_p95=p95,
        pauses=sum(s.pauses for s in surfers),
        rewinds=manager.rewinds,
        rewind_hits=manager.rewind_hits,
        rewind_hit_rate=manager.rewind_hits / max(1, manager.rewinds),
        merges=manager.merges,
        surf_throttled=manager.surf_throttled,
        channels_opened=manager.channels_opened,
        channels_closed=manager.channels_closed,
        pages_trimmed=pages_trimmed,
        drain_violations=len(violations),
    )


def run_live_chaos(
    seeds: Sequence[int] = (61, 62, 63),
    n_ops: int = 12,
    horizon: float = 20.0,
) -> List[ChaosReport]:
    """The seeded chaos sweep with live channels and surf storms on."""
    reports = []
    for seed in seeds:
        schedule = ChaosSchedule.generate(
            seed, n_ops, horizon=horizon, n_msus=2, n_titles=2,
            n_channels=2,
        )
        reports.append(ChaosCluster(schedule, ChaosConfig()).run())
    return reports


def format_live(point: LivePoint, reports: List[ChaosReport]) -> str:
    """Render the surf run plus the chaos-sweep verdicts."""
    lines = [
        f"Live TV: {point.n_channels} channels ingesting for "
        f"{point.broadcast_seconds:.0f} s while {point.n_surfers} viewers "
        f"channel-surf (pause-live / rewind-live on a "
        f"ring window)",
        f"  joins {point.joins}  timeouts {point.timeouts}  "
        f"errors {point.errors}  throttled {point.surf_throttled}",
        f"  peak concurrent viewers {point.peak_viewers} on "
        f"{point.busy_disks} busy disk(s) of {point.n_disks} -> "
        f"{point.viewers_per_disk:.1f} viewers/disk "
        f"(disk cost is per channel, not per viewer)",
        f"  join latency mean {point.join_latency_mean * 1e3:.0f} ms, "
        f"p95 {point.join_latency_p95 * 1e3:.0f} ms",
        f"  time shift: {point.pauses} pauses, {point.rewinds} rewinds "
        f"({point.rewind_hit_rate:.0%} inside the ring), "
        f"{point.merges} re-merges, {point.pages_trimmed} ring pages "
        f"reclaimed",
        f"  channels opened {point.channels_opened} / closed "
        f"{point.channels_closed}; drain violations "
        f"{point.drain_violations}",
        "",
        "Chaos sweep (live faults + failures of every earlier tier):",
    ]
    for report in reports:
        lines.append(f"  {report.summary()}")
    clean = sum(1 for r in reports if r.ok)
    lines.append(f"  {clean}/{len(reports)} seeds with zero violations")
    return "\n".join(lines)
