"""Experiment E16 (extension) — interval/prefix caching vs. the no-cache MSU.

The paper rejects a block cache outright ("not enough data locality or
sharing", §2.3.3), but its own sizing story — Zipf popularity, thousands
of viewers, a handful of hot titles — is the textbook case for *interval
caching*: a trailing viewer re-reads exactly the pages a leading viewer
of the same title just read.  This experiment replays the vod_load
workload on a deliberately disk-bound installation (one disk per MSU, so
raw bandwidth admits ~12 MPEG-1 streams) twice: once as the paper built
it, once with the interval+prefix page cache enabled.

With the cache on, the Coordinator's popularity-aware admission grants
trailing viewers of hot titles a *cache-covered* slot once the disk's raw
bandwidth is exhausted, and the MSU's duty cycle serves them from memory
— so the same disk sustains substantially more concurrent streams (the
delivery path becomes the binding resource, as it should be), blocking
drops, and the report shows where the gain came from: hit ratio, pool
occupancy and duty-cycle slots saved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.manager import CacheConfig, CacheSnapshot
from repro.clients.client import Client
from repro.clients.population import ViewerPopulation
from repro.core.cluster import CalliopeCluster, ClusterConfig
from repro.media.mpeg import MpegEncoder, packetize_cbr
from repro.metrics.probes import CounterProbe
from repro.metrics.report import format_cache_summary
from repro.sim import Simulator
from repro.storage.ibtree import IBTreeConfig
from repro.units import MIB, MPEG1_RATE

__all__ = ["CachePoint", "run_cache", "format_cache"]

_CONFIG = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)


@dataclass(frozen=True)
class CachePoint:
    """One configuration's outcome (cache on or off)."""

    cache_enabled: bool
    offered_erlangs: float
    arrivals: int
    admitted: int
    blocked_or_abandoned: int
    blocking_probability: float
    concurrent_peak: int
    cache_admitted: int
    pages_read: int  # duty-cycle slots actually spent on the disk
    pages_from_cache: int  # slots the cache absorbed
    snapshot: Optional[CacheSnapshot]
    #: Mean cache-served pages/sec across the run (CounterProbe windows).
    hit_rate_per_s: float


def _run_once(
    cache_config: Optional[CacheConfig],
    offered: float,
    mean_watch_seconds: float,
    duration: float,
    n_titles: int,
    seed: int,
) -> CachePoint:
    sim = Simulator()
    cluster = CalliopeCluster(
        sim,
        ClusterConfig(
            n_msus=1,
            disks_per_hba=(1,),  # disk-bound on purpose: one disk, ~12 streams
            ibtree_config=_CONFIG,
            cache=cache_config,
        ),
    )
    cluster.coordinator.db.add_customer("user")
    length = mean_watch_seconds * 6.0
    packets = packetize_cbr(
        MpegEncoder(seed=seed).bitstream(length), MPEG1_RATE, 1024
    )
    titles = []
    for t in range(n_titles):
        name = f"title{t}"
        cluster.load_content(name, "mpeg1", packets, disk_index=0)
        titles.append(name)
    sim.run(until=0.01)
    msu = cluster.msus[0]
    probe = None
    if msu.cache is not None:
        probe = CounterProbe(
            sim, lambda: msu.cache.slots_saved, period=5.0, name="cache-hits"
        )
    client = Client(sim, cluster, "audience")
    population = ViewerPopulation(
        sim, client, titles,
        arrival_rate=offered / mean_watch_seconds,
        mean_watch_seconds=mean_watch_seconds,
        queue_patience=2.0,
        seed=seed,
    )
    population.start()
    sim.run(until=duration)
    population.stop()
    sim.run(until=duration + 30.0)  # drain in-flight viewers
    if probe is not None:
        probe.stop()
    stats = population.stats
    disk_proc = next(iter(msu.disk_processes.values()))
    return CachePoint(
        cache_enabled=cache_config is not None,
        offered_erlangs=offered,
        arrivals=stats.arrivals,
        admitted=stats.admitted,
        blocked_or_abandoned=stats.blocked + stats.abandoned,
        blocking_probability=stats.blocking_probability,
        concurrent_peak=stats.concurrent_peak,
        cache_admitted=cluster.coordinator.admission.cache_admitted,
        pages_read=disk_proc.pages_read,
        pages_from_cache=disk_proc.pages_from_cache,
        snapshot=msu.cache.snapshot() if msu.cache is not None else None,
        hit_rate_per_s=probe.mean_rate() if probe is not None else 0.0,
    )


def run_cache(
    offered_erlangs: float = 20.0,
    mean_watch_seconds: float = 8.0,
    duration: float = 200.0,
    n_titles: int = 8,
    pool_bytes: int = 32 * MIB,
    prefix_pages: int = 16,
    seed: int = 14,
) -> List[CachePoint]:
    """The same Zipf VoD workload without and with the page cache."""
    disabled = _run_once(
        None, offered_erlangs, mean_watch_seconds, duration, n_titles, seed
    )
    enabled = _run_once(
        CacheConfig(pool_bytes=pool_bytes, prefix_pages=prefix_pages),
        offered_erlangs, mean_watch_seconds, duration, n_titles, seed,
    )
    return [disabled, enabled]


def format_cache(points: List[CachePoint]) -> str:
    """Render the on/off comparison plus the cache's own metrics."""
    lines = [
        "Interval/prefix caching on the disk-bound Zipf VoD workload "
        "(one MSU, one disk)",
        f"{'cache':>8} | {'arrivals':>8} | {'admitted':>8} | {'denied':>6} | "
        f"{'P(block)':>8} | {'peak':>4} | {'disk pages':>10} | {'cache pages':>11}",
    ]
    for p in points:
        label = "on" if p.cache_enabled else "off"
        lines.append(
            f"{label:>8} | {p.arrivals:>8} | {p.admitted:>8} | "
            f"{p.blocked_or_abandoned:>6} | {p.blocking_probability:>8.3f} | "
            f"{p.concurrent_peak:>4} | {p.pages_read:>10} | {p.pages_from_cache:>11}"
        )
    off = next((p for p in points if not p.cache_enabled), None)
    on = next((p for p in points if p.cache_enabled), None)
    if off is not None and on is not None and off.concurrent_peak:
        gain = (on.concurrent_peak - off.concurrent_peak) / off.concurrent_peak
        lines.append(
            f"concurrent streams per disk: {off.concurrent_peak} -> "
            f"{on.concurrent_peak} ({gain * 100.0:+.0f}%), "
            f"{on.cache_admitted} admissions were cache-covered"
        )
    if on is not None and on.snapshot is not None:
        for name, value in format_cache_summary(on.snapshot):
            lines.append(f"  {name:<26} {value:>10.1f}")
        lines.append(f"  {'cache-served pages/sec':<26} {on.hit_rate_per_s:>10.1f}")
    lines.append(
        "(the paper's no-cache stance (§2.3.3) holds for uniform access;"
        " under Zipf popularity, trailing viewers of hot titles re-read"
        " the leader's pages, and interval caching turns those duty-cycle"
        " disk slots into memory copies)"
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_cache(run_cache()))
