"""Experiment E6 — §3.3: Coordinator and intra-network scalability.

"We start two of these [fake] MSUs on different machines and started two
clients who together sent 10,000 requests to the coordinator at a rate of
about 60 requests per second.  We measured the Coordinator's CPU
utilization at 14% and the network utilization at 6% ... a large scale
implementation of Calliope serving 3000 simultaneous streams (150 MSUs at
20 streams each) would need to service only 50 requests per second."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.clients.fake_msu import FakeMsu
from repro.clients.workload import OpenLoopRequester
from repro.core.coordinator import Coordinator
from repro.core.database import ContentEntry
from repro.hardware.params import ETHERNET_10
from repro.net.network import ControlChannel, Network
from repro.sim import Simulator
from repro.units import ms

__all__ = ["ScalabilityResult", "run_scalability", "format_scalability"]

PAPER_CPU_UTIL = 0.14
PAPER_NET_UTIL = 0.06
PAPER_REQUEST_RATE = 60.0


@dataclass(frozen=True)
class ScalabilityResult:
    """Measured shared-resource load under the fake-MSU request storm."""

    requests: int
    elapsed: float
    request_rate: float
    cpu_utilization: float
    network_utilization: float

    def extrapolate(self, rate: float) -> "tuple":
        """Linear load projection to another aggregate request rate."""
        scale = rate / self.request_rate
        return (self.cpu_utilization * scale, self.network_utilization * scale)


def run_scalability(
    total_requests: int = 10_000,
    request_rate: float = 60.0,
    n_clients: int = 2,
    n_fake_msus: int = 2,
    seed: int = 9,
) -> ScalabilityResult:
    """Drive the real Coordinator with fake MSUs and open-loop clients."""
    sim = Simulator()
    intra = Network(sim, "intra", latency=ms(1.0))
    coordinator = Coordinator(sim)
    coordinator.db.add_customer("user")
    for i in range(n_fake_msus):
        fake = FakeMsu(sim, f"fake{i}")
        channel = ControlChannel(
            sim, coordinator.name, fake.name, latency=ms(1.0), network=intra
        )
        coordinator.attach_msu(channel)
        fake.attach_coordinator(channel)
    sim.run(until=0.01)  # let the hellos land
    # Content lives (notionally) on the fake MSUs' disks.
    contents = []
    for i in range(n_fake_msus):
        for d in range(2):
            name = f"clip-{i}-{d}"
            coordinator.db.add_content(
                ContentEntry(name, "mpeg1", f"fake{i}", f"fake{i}.sd{d}", blocks=10)
            )
            contents.append(name)
    requesters: List[OpenLoopRequester] = []
    per_client = total_requests // n_clients
    for c in range(n_clients):
        channel = ControlChannel(
            sim, f"loadgen{c}", coordinator.name, latency=ms(1.0), network=intra
        )
        coordinator.connect_client(channel, f"loadgen{c}")
        requester = OpenLoopRequester(
            sim, channel, f"loadgen{c}", contents,
            rate_per_second=request_rate / n_clients,
            total_requests=per_client, seed=seed + c,
        )
        requester.start()
        requesters.append(requester)
    start = sim.now
    cpu_busy_start = coordinator.machine.cpu.busy_time
    net_bytes_start = intra.bytes_carried
    for requester in requesters:
        sim.run_until_event(requester.done)
    sim.run(until=sim.now + 1.0)  # drain in-flight terminations
    elapsed = sim.now - start - 1.0
    cpu_busy = coordinator.machine.cpu.busy_time - cpu_busy_start
    net_bytes = intra.bytes_carried - net_bytes_start
    sent = sum(r.sent for r in requesters)
    return ScalabilityResult(
        requests=sent,
        elapsed=elapsed,
        request_rate=sent / elapsed,
        cpu_utilization=cpu_busy / elapsed,
        network_utilization=(net_bytes / elapsed) / ETHERNET_10.line_rate,
    )


def format_scalability(result: ScalabilityResult) -> str:
    """Render the §3.3 measurement plus the paper's extrapolation."""
    lines = [
        "Coordinator scalability (fake MSUs, open-loop request storm)",
        f"  requests:           {result.requests}",
        f"  request rate:       {result.request_rate:6.1f}/s  (paper: ~60/s)",
        f"  Coordinator CPU:    {result.cpu_utilization * 100.0:6.1f}%  (paper: 14%)",
        f"  intra-network load: {result.network_utilization * 100.0:6.1f}%  (paper: 6%)",
        "",
        "Extrapolation (3000 streams = 150 MSUs x 20 streams, 1-min sessions):",
    ]
    cpu50, net50 = result.extrapolate(50.0)
    lines.append(
        f"  at 50 req/s: CPU {cpu50 * 100.0:5.1f}%, network {net50 * 100.0:5.1f}%"
        "  -> shared resources are not the limit"
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_scalability(run_scalability(total_requests=3000)))
