"""Experiment E17 (extension) — MSU failover: detection, migration, recovery.

The paper's failure story ends at detection: a broken MSU control
connection takes the machine out of scheduling and its streams die
(§2.2).  This experiment measures the recovery half added by
:mod:`repro.failover`, in the failure mode TCP cannot report — a silent
hang (:meth:`CalliopeCluster.hang_msu`).

Two scenarios on the same loaded cluster:

* **replicated** — every title on the victim MSU has a replica on a
  survivor (made by the ReplicationManager, as PR 1's demand-driven
  policy would).  After the hang, the heartbeat monitor declares the MSU
  dead and the migrator resumes its streams on the survivors.  Measured:
  fraction of victim streams resumed, each viewer's delivery blackout
  (the *resume gap*, from the port's packet arrivals), and the time
  until every victim stream is flowing again.  The acceptance bar is
  ≥ 80% resumed within the detection budget (heartbeat timeout plus one
  duty cycle's worth of refill).

* **single-copy** — the victim holds the only copy of every title.
  Nothing can migrate: every ticket parks on the admission queue at
  resume priority and *zero* streams flow during the outage.  When the
  MSU recovers (``cluster.recover``), its hello triggers the queue
  retry and every parked stream resumes where it left off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Tuple

from repro.clients.client import Client, GroupView
from repro.clients.playback import resume_gap
from repro.core.cluster import CalliopeCluster, ClusterConfig
from repro.core.replication import ReplicationManager
from repro.failover import FailoverConfig, HeartbeatConfig
from repro.media.mpeg import MpegEncoder, packetize_cbr
from repro.metrics.report import format_failover_summary
from repro.sim import Simulator
from repro.storage.ibtree import IBTreeConfig
from repro.units import MPEG1_RATE

__all__ = ["FailoverPoint", "run_failover", "format_failover"]

_CONFIG = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)

#: Fast detection so the experiment stays short; the budget property
#: scales with whatever is configured here.
_HEARTBEAT = HeartbeatConfig(
    period=0.2, miss_threshold=3, suspect_backoff=0.2,
    backoff_factor=2.0, suspect_probes=2,
)

#: One duty cycle's worth of slack for the new MSU to refill buffers and
#: for the resumed schedule to reach the client.
_DUTY_CYCLE_ALLOWANCE = 1.0

#: Packets already on the delivery network when the MSU hangs drain
#: within milliseconds; gaps are measured past this margin so a last
#: in-flight packet does not masquerade as a resumed stream.
_INFLIGHT_DRAIN = 0.05


@dataclass(frozen=True)
class FailoverPoint:
    """One scenario's outcome."""

    replicated: bool
    viewers: int
    victim_streams: int
    resumed: int
    resumed_within_budget: int
    mean_resume_gap_s: float
    max_resume_gap_s: float
    #: Heartbeat detection latency + one duty cycle of refill slack.
    detection_budget_s: float
    #: Resume tickets parked on the admission queue during the outage.
    queued_resumes: int
    #: Streams that came back *before* the MSU recovered (must be zero
    #: in the single-copy scenario).
    resumed_before_recovery: int
    #: Streams resumed by the queue retry after cluster.recover().
    served_after_recovery: int
    #: Seconds from the failure until every victim stream flowed again.
    time_to_full_capacity_s: float


def _viewer(
    client: Client, title: str, port_name: str, views: Dict[str, GroupView]
) -> Generator:
    yield from client.register_port(port_name, "mpeg1")
    view = yield from client.play(title, port_name)
    views[port_name] = view
    yield from client.wait_ready(view)


def _run_scenario(
    replicated: bool,
    n_msus: int,
    n_titles: int,
    n_viewers: int,
    kill_at: float,
    recover_after: float,
    seed: int,
) -> FailoverPoint:
    sim = Simulator()
    cluster = CalliopeCluster(
        sim,
        ClusterConfig(
            n_msus=n_msus,
            ibtree_config=_CONFIG,
            failover=FailoverConfig(heartbeat=_HEARTBEAT),
            seed=seed,
        ),
    )
    coord = cluster.coordinator
    coord.db.add_customer("user")
    budget = _HEARTBEAT.detection_latency + _DUTY_CYCLE_ALLOWANCE
    observe = budget + 2.0  # watch past the budget before measuring
    length = kill_at + observe + recover_after + 20.0
    packets = packetize_cbr(MpegEncoder(seed=seed).bitstream(length), MPEG1_RATE, 1024)
    titles = []
    for t in range(n_titles):
        name = f"title{t}"
        cluster.load_content(name, "mpeg1", packets, msu_index=0, disk_index=t % 2)
        titles.append(name)
    sim.run(until=0.05)  # let the MsuHello round-trip register every MSU
    if replicated:
        manager = ReplicationManager(cluster)
        for t, name in enumerate(titles):
            survivor = 1 + t % (n_msus - 1)
            disk_id = cluster.msus[survivor].disk_ids()[t % 2]
            manager.replicate(name, f"msu{survivor}", disk_id)
        manager.watch(coord)

    client = Client(
        sim, cluster, "audience", reconnect_retries=8, reconnect_backoff=0.25
    )
    views: Dict[str, GroupView] = {}
    sim.process(client.open_session("user"), name="e17.session")
    sim.run(until=0.2)
    for v in range(n_viewers):
        sim.process(
            _viewer(client, titles[v % n_titles], f"v{v}", views), name=f"e17.v{v}"
        )
    sim.run(until=kill_at)

    victim_ports = [
        port for port, view in views.items()
        if coord.groups.get(view.group_id) is not None
        and coord.groups[view.group_id].msu_name == "msu0"
    ]
    cluster.hang_msu(0)
    fail_time = sim.now
    sim.run(until=fail_time + observe)

    migrator = coord.migrator
    queued_resumes = sum(
        1 for req in coord.admission.queue if getattr(req, "kind", "") == "resume"
    )
    recover_time = None
    if not replicated:
        cluster.recover(0)
        recover_time = sim.now
        sim.run(until=recover_time + observe)

    gaps: List[float] = []
    resumed = 0
    resumed_within_budget = 0
    for port in victim_ports:
        gap, came_back = resume_gap(
            client.ports[port].stats.arrivals, fail_time + _INFLIGHT_DRAIN
        )
        if not came_back:
            continue
        gaps.append(gap)
        resumed += 1
        if gap <= budget:
            resumed_within_budget += 1
    records = migrator.records if migrator is not None else []
    resumed_before_recovery = sum(
        1 for r in records
        if recover_time is not None and r.at < recover_time
    )
    served_after_recovery = sum(
        r.streams for r in records
        if recover_time is not None and r.at >= recover_time
    )
    time_to_full = max((r.at for r in records), default=fail_time) - fail_time
    finite = [g for g in gaps if g != float("inf")]
    return FailoverPoint(
        replicated=replicated,
        viewers=n_viewers,
        victim_streams=len(victim_ports),
        resumed=resumed,
        resumed_within_budget=resumed_within_budget,
        mean_resume_gap_s=sum(finite) / len(finite) if finite else float("inf"),
        max_resume_gap_s=max(finite) if finite else float("inf"),
        detection_budget_s=budget,
        queued_resumes=queued_resumes,
        resumed_before_recovery=resumed_before_recovery,
        served_after_recovery=served_after_recovery,
        time_to_full_capacity_s=time_to_full,
    )


def run_failover(
    n_msus: int = 3,
    n_titles: int = 4,
    n_viewers: int = 12,
    kill_at: float = 6.0,
    recover_after: float = 4.0,
    seed: int = 11,
) -> List[FailoverPoint]:
    """Both scenarios: replicas present, then single-copy titles."""
    with_replicas = _run_scenario(
        True, n_msus, n_titles, n_viewers, kill_at, recover_after, seed
    )
    single_copy = _run_scenario(
        False, n_msus, n_titles, n_viewers, kill_at, recover_after, seed
    )
    return [with_replicas, single_copy]


def format_failover(points: List[FailoverPoint]) -> str:
    """Render both scenarios the way the failover story reads."""
    lines = [
        "MSU failover under a silent hang (heartbeat detection, "
        "mid-stream migration)",
        f"{'scenario':>12} | {'viewers':>7} | {'victims':>7} | {'resumed':>7} | "
        f"{'in budget':>9} | {'mean gap':>8} | {'max gap':>8} | {'recovered':>9}",
    ]
    for p in points:
        label = "replicated" if p.replicated else "single-copy"
        mean_gap = f"{p.mean_resume_gap_s:8.2f}" if p.resumed else "     inf"
        max_gap = f"{p.max_resume_gap_s:8.2f}" if p.resumed else "     inf"
        lines.append(
            f"{label:>12} | {p.viewers:>7} | {p.victim_streams:>7} | "
            f"{p.resumed:>7} | {p.resumed_within_budget:>9} | {mean_gap} | "
            f"{max_gap} | {p.served_after_recovery:>9}"
        )
    for p in points:
        label = "replicated" if p.replicated else "single-copy"
        lines.append(f"-- {label} --")
        for name, value in format_failover_summary(p):
            rendered = f"{value:>10.2f}" if value != float("inf") else "       inf"
            lines.append(f"  {name:<28} {rendered}")
    lines.append(
        "(with replicas, a dead MSU's streams resume on survivors within"
        " the heartbeat timeout + one duty cycle; without, they park at"
        " resume priority and restart the moment the machine rejoins)"
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_failover(run_failover()))
