"""Experiments E3/E4 — Graph 2: variable-rate packet-delivery distribution.

The paper replays three NV-encoded files (average rates 650, 635 and
877 kbit/s; 50 ms-window peaks 2.0–5.4 Mbit/s) across 15, 16 and 17
streams, all started simultaneously.  Performance is substantially worse
than the constant-rate case for three reasons reproduced here: ~1 KiB
packets cost 4x the per-packet overhead of the 4 KiB CBR test, frames go
out as bursts of back-to-back packets, and the synchronized starts of the
automated test make one third of the streams transmit each burst at the
same moment.

E4 is the aside in §3.2.2: replaying only a *single* file with
synchronized starts, the MSU manages just 11 streams instead of 15.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments._support import StreamingRig, run_streaming_workload
from repro.media.nv import NvEncoder
from repro.metrics.lateness import LatenessCdf
from repro.metrics.report import format_cdf_table
from repro.net.rtp import RtpHeader
from repro.units import kbit_per_s

__all__ = ["nv_file_packets", "run_graph2", "format_graph2", "NV_FILE_RATES_KBIT"]

#: The paper's three NV files' average rates (§3.2.2).
NV_FILE_RATES_KBIT = (650.0, 635.0, 877.0)


def nv_file_packets(avg_rate_kbit: float, duration: float, seed: int):
    """One recorded NV session: RTP-wrapped bursty packets with schedule."""
    encoder = NvEncoder(avg_rate=kbit_per_s(avg_rate_kbit), seed=seed)
    packets = []
    for i, packet in enumerate(encoder.packets(duration)):
        header = RtpHeader(
            payload_type=28,  # NV payload type
            sequence=i & 0xFFFF,
            timestamp=int(packet.delivery_us * 90 // 1000) & 0xFFFFFFFF,
            ssrc=seed,
        )
        packets.append((packet.delivery_us, header.pack() + packet.payload))
    return packets


def run_graph2(
    stream_counts: Sequence[int] = (15, 16, 17),
    duration: float = 60.0,
    single_file: bool = False,
    seed: int = 2,
) -> Dict[int, LatenessCdf]:
    """Run the Graph 2 sweep; returns stream count -> lateness CDF.

    ``single_file=True`` reproduces E4's degenerate test where every
    stream replays the same file in synchrony.
    """
    curves: Dict[int, LatenessCdf] = {}
    for n in stream_counts:
        rig = StreamingRig()
        rig.uncap_admission()
        ndisks = len(rig.msu.disk_ids())
        nfiles = 1 if single_file else len(NV_FILE_RATES_KBIT)
        for f in range(nfiles):
            packets = nv_file_packets(
                NV_FILE_RATES_KBIT[f], duration + 30.0, seed=seed + f
            )
            rig.cluster.load_content(
                f"nv-{f}", "rtp-video", packets, disk_index=f % ndisks
            )
        plan = [(f"nv-{i % nfiles}", "rtp-video") for i in range(n)]
        # The paper's automated test started every stream simultaneously
        # (stagger 0); §3.2.2 calls this out as unrealistically harsh.
        curves[n] = run_streaming_workload(rig, plan, duration, stagger_span=0.0)
    return curves


def format_graph2(curves: Dict[int, LatenessCdf], single_file: bool = False) -> str:
    """Render the sweep the way Graph 2 reads."""
    kind = "single file" if single_file else "3 NV files"
    named = {f"{n} variable-rate streams": c for n, c in curves.items()}
    return (
        f"Graph 2: Cumulative Packet Delivery Distribution "
        f"(variable bit rate, {kind}, synchronized starts)\n"
        + format_cdf_table(named)
    )


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_graph2(run_graph2()))
    print()
    print(format_graph2(run_graph2(stream_counts=(11, 15), single_file=True), True))
