"""Experiment E14 (extension) — what the viewer actually sees.

§2.2.1 argues the server may be sloppy because clients buffer: "A 200
KByte buffer will hold more than one second of 1.5 Mbit/sec video.
Calliope will not add more than 150 milliseconds of jitter in the worst
case and any network that introduces more than 850 milliseconds of jitter
is probably not usable."

This experiment closes the loop: it replays the Graph 1 workload, feeds
every stream's *client-side arrival trace* through the paper's 200 KB /
one-second playout buffer, and reports underflows (still frames).  At 22
streams nobody underflows; past the MSU's capacity cliff the buffer can
no longer hide the server's lateness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.clients.playback import PlayoutBuffer
from repro.experiments._support import StreamingRig, run_streaming_workload
from repro.media.mpeg import MpegEncoder, packetize_cbr
from repro.units import CBR_PACKET_SIZE, MPEG1_RATE

__all__ = ["PlayoutPoint", "run_playout", "format_playout"]


@dataclass(frozen=True)
class PlayoutPoint:
    """Client-experience summary for one stream count."""

    streams: int
    underflowing_streams: int
    total_underflows: int
    total_stall_seconds: float
    server_within_50ms: float


def run_playout(
    stream_counts: Sequence[int] = (22, 24),
    duration: float = 45.0,
    buffer_bytes: int = 200_000,
    startup_delay: float = 1.0,
    seed: int = 1,
) -> List[PlayoutPoint]:
    """Graph 1's workload, judged by the client playout buffer."""
    points = []
    for n in stream_counts:
        rig = StreamingRig()
        rig.uncap_admission()
        encoder = MpegEncoder(rate=MPEG1_RATE, seed=seed)
        packets = packetize_cbr(
            encoder.bitstream(duration + 30.0), MPEG1_RATE, CBR_PACKET_SIZE
        )
        ndisks = len(rig.msu.disk_ids())
        for d in range(ndisks):
            rig.cluster.load_content(f"movie-d{d}", "mpeg1", packets, disk_index=d)
        plan = [(f"movie-d{i % ndisks}", "mpeg1") for i in range(n)]
        cdf = run_streaming_workload(rig, plan, duration, stagger_span=2.0, seed=seed)
        playout = PlayoutBuffer(
            capacity_bytes=buffer_bytes, rate=MPEG1_RATE, startup_delay=startup_delay
        )
        underflowing = 0
        underflows = 0
        stall = 0.0
        for i in range(n):
            stats = rig.client.ports[f"port{i}"].stats
            report = playout.evaluate(stats.arrivals)
            if report.underflows:
                underflowing += 1
                underflows += report.underflows
                stall += report.stall_seconds
        points.append(
            PlayoutPoint(
                streams=n,
                underflowing_streams=underflowing,
                total_underflows=underflows,
                total_stall_seconds=stall,
                server_within_50ms=cdf.fraction_within(50),
            )
        )
    return points


def format_playout(points: List[PlayoutPoint]) -> str:
    """Render the viewer-experience table."""
    lines = [
        "Client playout quality (200 KB buffer, 1 s startup delay, §2.2.1)",
        f"{'streams':>8} | {'server <=50ms':>13} | {'stalling clients':>16} | "
        f"{'stalls':>6} | {'stall seconds':>13}",
    ]
    for p in points:
        lines.append(
            f"{p.streams:>8} | {p.server_within_50ms * 100.0:>12.1f}% | "
            f"{p.underflowing_streams:>16} | {p.total_underflows:>6} | "
            f"{p.total_stall_seconds:>12.2f}s"
        )
    lines.append(
        "(inside capacity the buffer hides everything; past the Graph 1"
        " cliff the lateness becomes visible still-frames)"
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_playout(run_playout()))
