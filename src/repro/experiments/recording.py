"""Experiment E15 (extension) — simultaneous recording capacity.

The paper's evaluation only measures playback; the recording path (§2.3:
"when data is recorded, the network process fills buffers and the disk
process writes full ones to disk") shares the same duty cycle and host
path, so it has a capacity of its own.  The experiment records N
simultaneous 1.5 Mbit/s streams, then checks three things per load level:

* every packet sent was durably stored (the IB-tree holds them all),
* how far disk writes lagged the sources (the write backlog drain time),
* aggregate stored bandwidth.

Like playback, recording is comfortable through ~20 streams on the
two-disk MSU and the backlog grows past it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Sequence

from repro.clients.client import Client
from repro.core.cluster import CalliopeCluster, ClusterConfig
from repro.sim import Simulator
from repro.units import CBR_PACKET_SIZE, MPEG1_RATE, to_mbyte_per_s

__all__ = ["RecordingPoint", "run_recording", "format_recording"]


@dataclass(frozen=True)
class RecordingPoint:
    """One load level's recording behaviour."""

    streams: int
    packets_sent: int
    packets_stored: int
    aggregate_mb_s: float
    #: Seconds between the last source packet and the last disk write.
    drain_seconds: float

    @property
    def complete(self) -> bool:
        return self.packets_stored == self.packets_sent


def _cbr_source(duration: float) -> List:
    """A paced 1.5 Mbit/s source of 4 KiB packets (opaque payload)."""
    interval_us = int(CBR_PACKET_SIZE / MPEG1_RATE * 1e6)
    n = int(duration * MPEG1_RATE / CBR_PACKET_SIZE)
    return [(i * interval_us, bytes([i % 256]) * CBR_PACKET_SIZE) for i in range(n)]


def _run_one(streams: int, duration: float, seed: int) -> RecordingPoint:
    sim = Simulator()
    cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1))
    cluster.coordinator.db.add_customer("user")
    sim.run(until=0.01)
    for state in cluster.coordinator.db.msus.values():
        state.delivery_capacity = 1e12
        for disk in state.disks.values():
            disk.bandwidth_capacity = 1e12
    client = Client(sim, cluster, "studio")
    source = _cbr_source(duration)
    views = []

    def scenario() -> Generator:
        yield from client.open_session("user")
        feeds = []
        for i in range(streams):
            yield from client.register_port(f"cam{i}", "mpeg1")
            view = yield from client.record(f"take{i}", "mpeg1", f"cam{i}",
                                            duration + 30.0)
            yield from client.wait_ready(view)
            views.append(view)
        for i, view in enumerate(views):
            address = view.record_addresses()[f"take{i}"]
            feeds.append(
                sim.process(client.send_stream(f"cam{i}", address, source))
            )
        for feed in feeds:
            yield feed
        sources_done = sim.now
        yield sim.timeout(0.5)  # let the tail packets cross the wire
        for view in views:
            client.quit(view.group_id)
        for view in views:
            yield from client.wait_done(view)
        return sources_done, sim.now

    proc = sim.process(scenario(), name="studio")
    sim.run(until=duration + 240.0)
    if not proc.triggered or not proc.ok:
        raise RuntimeError("recording scenario did not finish")
    sources_done, completed = proc.value
    drain = completed  # streams complete only after their last disk write
    msu = cluster.msus[0]
    stored = 0
    from repro.storage.ibtree import IBTreeReader

    for i in range(streams):
        entry = cluster.coordinator.db.content(f"take{i}")
        fs = msu.filesystems[entry.disk_id]
        handle = fs.open(f"take{i}")
        for b in range(handle.nblocks):
            stored += len(IBTreeReader.parse_page(fs.read_block_sync(handle, b)))
    total_sent = streams * len(source)
    return RecordingPoint(
        streams=streams,
        packets_sent=total_sent,
        packets_stored=stored,
        aggregate_mb_s=to_mbyte_per_s(total_sent * CBR_PACKET_SIZE / duration),
        drain_seconds=max(0.0, drain - sources_done - 0.5),
    )


def run_recording(
    stream_counts: Sequence[int] = (8, 16, 22),
    duration: float = 20.0,
    seed: int = 4,
) -> List[RecordingPoint]:
    """Sweep simultaneous recordings."""
    return [_run_one(n, duration, seed) for n in stream_counts]


def format_recording(points: List[RecordingPoint]) -> str:
    """Render the recording-capacity sweep."""
    lines = [
        "Simultaneous recording capacity (1.5 Mbit/s sources, two disks)",
        f"{'streams':>8} | {'sent':>7} | {'stored':>7} | {'complete':>8} | "
        f"{'offered MB/s':>12} | {'drain':>7}",
    ]
    for p in points:
        lines.append(
            f"{p.streams:>8} | {p.packets_sent:>7} | {p.packets_stored:>7} | "
            f"{'yes' if p.complete else 'NO':>8} | {p.aggregate_mb_s:>11.2f}  | "
            f"{p.drain_seconds:>6.2f}s"
        )
    lines.append(
        "(every packet is durably stored; the write backlog drain grows as"
        " the duty cycle fills — recording shares playback's capacity)"
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_recording(run_recording()))
