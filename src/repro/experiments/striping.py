"""Experiment E10 — §2.3.3: the striping trade-off Calliope declined.

The paper's MSU stores each file on a single disk and argues both sides:

* striping would "utilize the disks well even if workload is
  unpredictable" — with per-disk files, a popularity skew overloads one
  disk while others idle;
* but a striped client "must delay every time it issues a VCR command
  while a disk slot becomes available", and the duty cycle covers all
  disks, multiplying the worst-case start-up wait.

The experiment serves a skewed workload (80 % of streams on one hot file)
from two disks under both layouts and reports aggregate throughput,
per-disk balance and the block-fetch latency distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

import numpy as np

from repro.hardware import Machine, MachineParams
from repro.sim import Simulator
from repro.units import BLOCK_SIZE, to_mbyte_per_s

__all__ = ["StripingResult", "run_striping", "format_striping"]


@dataclass(frozen=True)
class StripingResult:
    """One layout's behaviour under a skewed popularity workload."""

    layout: str
    aggregate_mb_s: float
    per_disk_mb_s: List[float]
    mean_fetch_ms: float
    p95_fetch_ms: float


def _stream_reader(
    sim, disks, period: float, fetches: List[float],
    rng: np.random.Generator, phase: float,
) -> Generator:
    """A paced stream: one block per period from its disk sequence.

    ``disks`` is the per-block disk cycle: a one-element list for a
    per-disk file, or the round-robin pair for a striped file.  Offsets
    are random across the platter — a two-hour movie spans most of a 2 GB
    disk, so a stream's blocks land anywhere.
    """
    index = 0
    if phase > 0:
        yield sim.timeout(phase)
    while True:
        start = sim.now
        disk = disks[index % len(disks)]
        nblocks = disk.params.capacity_bytes // BLOCK_SIZE
        offset = int(rng.integers(0, nblocks)) * BLOCK_SIZE
        yield from disk.transfer(offset, BLOCK_SIZE)
        fetches.append(sim.now - start)
        index += 1
        elapsed = sim.now - start
        if elapsed < period:
            yield sim.timeout(period - elapsed)


def _run_layout(striped: bool, streams: int, hot_fraction: float,
                duration: float, seed: int) -> StripingResult:
    sim = Simulator()
    machine = Machine(sim, MachineParams(disks_per_hba=(2,)), seed=seed)
    rng = np.random.default_rng(seed)
    fetches: List[float] = []
    # A paced request stream: 1.5 Mbit/s per stream -> one block / 1.43 s.
    period = BLOCK_SIZE / 187_500.0
    n_hot = int(round(streams * hot_fraction))
    for i in range(streams):
        if striped:
            disks = list(machine.disks)  # blocks alternate across disks
        else:
            disks = [machine.disks[0] if i < n_hot else machine.disks[1]]
        phase = float(rng.uniform(0.0, period))  # clients arrive unsynchronized
        child = np.random.default_rng(rng.integers(0, 2**63))
        sim.process(
            _stream_reader(sim, disks, period, fetches, child, phase),
            name=f"s{i}",
        )
    sim.run(until=duration)
    per_disk = [to_mbyte_per_s(d.throughput(duration)) for d in machine.disks]
    arr = np.array(fetches) * 1000.0
    return StripingResult(
        layout="striped" if striped else "per-disk",
        aggregate_mb_s=sum(per_disk),
        per_disk_mb_s=per_disk,
        mean_fetch_ms=float(arr.mean()) if len(arr) else 0.0,
        p95_fetch_ms=float(np.percentile(arr, 95)) if len(arr) else 0.0,
    )


def run_striping(
    streams: int = 24,
    hot_fraction: float = 0.8,
    duration: float = 60.0,
    seed: int = 6,
) -> List[StripingResult]:
    """Both layouts under the same skewed workload."""
    return [
        _run_layout(False, streams, hot_fraction, duration, seed),
        _run_layout(True, streams, hot_fraction, duration, seed),
    ]


def format_striping(results: List[StripingResult]) -> str:
    """Render the trade-off table."""
    lines = [
        "Striping ablation: 24 paced 1.5 Mbit/s streams, 80% on one hot file",
        f"{'layout':>10} | {'aggregate':>9} | {'per-disk MB/s':>16} | "
        f"{'fetch mean':>10} | {'fetch p95':>9}",
    ]
    for r in results:
        disks = " ".join(f"{d:.2f}" for d in r.per_disk_mb_s)
        lines.append(
            f"{r.layout:>10} | {r.aggregate_mb_s:8.2f}  | {disks:>16} | "
            f"{r.mean_fetch_ms:8.1f}ms | {r.p95_fetch_ms:7.1f}ms"
        )
    lines.append(
        "(striping balances the skew; per-disk files overload the hot disk"
        " — §2.3.3's argument for, weighed against its VCR-latency cost)"
    )
    return "\n".join(lines)


# -- VCR startup latency through the full MSU (§2.3.3's other half) ---------


def _measure_startup(striped: bool, background: int, probes: int, seed: int):
    """Seek-to-first-packet delays on a loaded MSU, one layout."""
    from repro.clients.client import Client
    from repro.core.cluster import CalliopeCluster, ClusterConfig
    from repro.media.mpeg import MpegEncoder, packetize_cbr
    from repro.net import messages as m
    from repro.sim import Simulator
    from repro.storage.ibtree import IBTreeConfig

    config = IBTreeConfig(data_page_size=64 * 1024, internal_page_size=4096,
                          max_keys=128)
    sim = Simulator()
    cluster = CalliopeCluster(
        sim, ClusterConfig(n_msus=1, ibtree_config=config, striped_msus=striped)
    )
    cluster.coordinator.db.add_customer("user")
    for state in cluster.coordinator.db.msus.values():
        state.delivery_capacity = 1e12
        for disk in state.disks.values():
            disk.bandwidth_capacity = 1e12
    sim.run(until=0.01)
    for state in cluster.coordinator.db.msus.values():
        state.delivery_capacity = 1e12
        for disk in state.disks.values():
            disk.bandwidth_capacity = 1e12
    packets = packetize_cbr(MpegEncoder(seed=seed).bitstream(90.0), 187_500, 4096)
    ndisks = len(cluster.msus[0].disk_ids())
    for d in range(ndisks):
        cluster.load_content(f"bg-{d}", "mpeg1", packets, disk_index=d)
    cluster.load_content("probe", "mpeg1", packets, disk_index=0)
    client = Client(sim, cluster, "c0")
    delays = []

    def scenario():
        import numpy as np

        rng = np.random.default_rng(seed)
        yield from client.open_session("user")
        for i in range(background):
            yield from client.register_port(f"bg{i}", "mpeg1")
            yield from client.play(f"bg-{i % ndisks}", f"bg{i}")
        yield from client.register_port("probe-tv", "mpeg1")
        view = yield from client.play("probe", "probe-tv")
        yield from client.wait_ready(view)
        yield sim.timeout(3.0)
        stats = client.ports["probe-tv"].stats
        for _ in range(probes):
            target = float(rng.uniform(10.0, 70.0))
            issued = sim.now
            client.vcr(view.group_id, m.VCR_SEEK, target)
            # First arrival comfortably after the flush is the restart.
            while (
                stats.last_arrival is None or stats.last_arrival < issued + 0.05
            ):
                yield sim.timeout(0.01)
            delays.append(stats.last_arrival - issued)
            yield sim.timeout(2.0)
        client.quit(view.group_id)

    proc = sim.process(scenario(), name="probe")
    sim.run(until=600.0)
    if not proc.triggered or not proc.ok:
        raise RuntimeError("startup probe did not finish")
    return delays


def run_startup_latency(
    background: int = 12, probes: int = 8, seed: int = 8
) -> dict:
    """Seek restart delays under load: per-disk vs striped MSU.

    §2.3.3: a striped client "must delay every time it issues a VCR
    command while a disk slot becomes available", and the striped duty
    cycle covers all disks — so restart latency grows with the stripe.
    """
    return {
        "per-disk": _measure_startup(False, background, probes, seed),
        "striped": _measure_startup(True, background, probes, seed),
    }


def format_startup_latency(results: dict) -> str:
    """Render the VCR-latency half of the trade-off."""
    import numpy as np

    lines = ["VCR seek restart latency under load (full MSU)"]
    for label, delays in results.items():
        arr = np.array(delays) * 1000.0
        lines.append(
            f"  {label:>9}: mean {arr.mean():7.1f} ms   "
            f"p95 {np.percentile(arr, 95):7.1f} ms   n={len(arr)}"
        )
    lines.append(
        "(the paper feared striped VCR delay would be unacceptable, then"
        ' conceded "In retrospect, we were probably wrong" — measured,'
        " the striped restart is comparable)"
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    for line in format_striping(run_striping()).splitlines():
        print(line)
    print()
    print(format_startup_latency(run_startup_latency()))
