"""Experiment E1 — Table 1 baseline measurements.

Reproduces the paper's baseline test programs: a ttcp-style sender pushing
4 KiB UDP packets out the FDDI interface from memory, and one simple reader
per disk issuing random 256 KiB raw-device reads — alone and simultaneously,
across the paper's five SCSI topologies.

The paper's combined runs execute the programs *independently* (the sender
sends from memory; it does not forward disk data), which is why its FDDI
column can exceed the disk columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

import numpy as np

from repro.hardware import Machine, MachineParams
from repro.hardware.params import FDDI
from repro.sim import Simulator
from repro.units import BLOCK_SIZE, CBR_PACKET_SIZE, to_mbyte_per_s

__all__ = ["Table1Row", "run_config", "run_table1", "format_table1", "PAPER_TABLE1"]

#: The paper's Table 1, in MB/s: config -> (fddi_only, disks_only, combined).
PAPER_TABLE1 = {
    "0 disk": (8.5, (), (None, ())),
    "1 disk (one HBA)": (None, (3.6,), (5.9, (3.4,))),
    "2 disk (one HBA)": (None, (2.8, 2.8), (4.7, (2.4, 2.4))),
    "2 disk (two HBA)": (None, (2.9, 2.9), (2.3, (2.7, 2.7))),
    "3 disk (two HBA)": (None, (2.2, 2.2, 2.7), (1.4, (1.9, 1.9, 2.5))),
}


@dataclass
class Table1Row:
    """Measured throughputs for one topology, in the paper's MB/s units."""

    label: str
    fddi_only: Optional[float] = None
    disks_only: Tuple[float, ...] = ()
    combined_fddi: Optional[float] = None
    combined_disks: Tuple[float, ...] = ()


def _disk_reader(sim: Simulator, disk, rng: np.random.Generator) -> Generator:
    """The paper's baseline disk program: random 256 KiB raw reads forever."""
    nblocks = disk.params.capacity_bytes // BLOCK_SIZE
    while True:
        offset = int(rng.integers(0, nblocks)) * BLOCK_SIZE
        yield from disk.transfer(offset, BLOCK_SIZE)


def _ttcp_sender(sim: Simulator, nic) -> Generator:
    """ttcp -t -u -l 4096: blast 4 KiB UDP packets from memory."""
    while True:
        yield from nic.udp_send(CBR_PACKET_SIZE)


def run_config(
    disks_per_hba: Tuple[int, ...],
    with_disks: bool,
    with_fddi: bool,
    duration: float = 20.0,
    seed: int = 1,
) -> Tuple[Optional[float], Tuple[float, ...]]:
    """Run one Table 1 cell; returns (fddi MB/s or None, per-disk MB/s)."""
    sim = Simulator()
    machine = Machine(sim, MachineParams(disks_per_hba=disks_per_hba), seed=seed)
    nic = machine.add_nic(FDDI)
    rng = np.random.default_rng(seed)
    if with_disks:
        for disk in machine.disks:
            child = np.random.default_rng(rng.integers(0, 2**63))
            sim.process(_disk_reader(sim, disk, child), name=f"read:{disk.name}")
    if with_fddi:
        sim.process(_ttcp_sender(sim, nic), name="ttcp")
    sim.run(until=duration)
    fddi = to_mbyte_per_s(nic.throughput(duration)) if with_fddi else None
    disks = tuple(
        to_mbyte_per_s(d.throughput(duration)) for d in machine.disks
    ) if with_disks else ()
    return fddi, disks


def run_table1(duration: float = 20.0, seed: int = 1) -> List[Table1Row]:
    """Run all Table 1 rows; see :data:`PAPER_TABLE1` for the targets."""
    topologies = [
        ("0 disk", ()),
        ("1 disk (one HBA)", (1,)),
        ("2 disk (one HBA)", (2,)),
        ("2 disk (two HBA)", (1, 1)),
        ("3 disk (two HBA)", (2, 1)),
    ]
    rows = []
    for label, topo in topologies:
        row = Table1Row(label)
        if not topo:
            row.fddi_only, _ = run_config((1,), False, True, duration, seed)
        else:
            _, row.disks_only = run_config(topo, True, False, duration, seed)
            row.combined_fddi, row.combined_disks = run_config(
                topo, True, True, duration, seed
            )
        rows.append(row)
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    """Render the rows the way the paper's Table 1 lays them out."""
    out = ["Baseline Performance Measurements (MByte/sec)"]
    header = (
        f"{'config':<20} {'FDDI only':>9} | {'disks only':>17} | "
        f"{'FDDI':>5} {'disks (combined)':>17}"
    )
    out.append(header)
    out.append("-" * len(header))
    for row in rows:
        fddi_only = f"{row.fddi_only:.1f}" if row.fddi_only is not None else ""
        disks_only = " ".join(f"{d:.1f}" for d in row.disks_only)
        comb_fddi = f"{row.combined_fddi:.1f}" if row.combined_fddi is not None else ""
        comb_disks = " ".join(f"{d:.1f}" for d in row.combined_disks)
        out.append(
            f"{row.label:<20} {fddi_only:>9} | {disks_only:>17} | "
            f"{comb_fddi:>5} {comb_disks:>17}"
        )
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_table1(run_table1()))
