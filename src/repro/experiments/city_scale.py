"""Experiment E23 — engine speed and city-scale installations (ROADMAP).

The paper's abstract claims Calliope "can be scaled from a single PC
producing about 22 MPEG-1 video streams to hundreds of PCs producing
thousands of streams"; §3.3 argues the shared-resource side of that claim
with an instrumented *fake* MSU so that only the load under measurement
exists.  This experiment does the simulator-side equivalent for the
engine overhaul (DESIGN.md §13):

* :func:`run_engine_bench` measures the speedup the overhaul delivers on
  a paced-delivery workload: the reference configuration (binary-heap
  scheduler, one wakeup per packet) against the fast configuration
  (timer-wheel scheduler, coarsened pacing).  Both run identical stream
  populations for identical simulated time; the figure of merit is the
  wall-time ratio and the events/second each engine sustains.

* :func:`run_city_scale` is the E13 scaling sweep taken to city scale:
  installations of up to 1000 MSUs serving 100,000 concurrent viewers.
  Following §3.3's fake-MSU methodology, the control plane is real — one
  Coordinator, one TCP control channel per MSU, real hello traffic — and
  the data plane is lightweight: each viewer is a paced CBR stream that
  exercises the scheduler exactly as a real stream's send loop does
  (same wakeup cadence, same coarsening contract) without the per-packet
  storage stack no single Python process could simulate 100k of.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Generator, List, Sequence

from repro.clients.fake_msu import FakeMsu
from repro.net.network import ControlChannel, Network
from repro.sim import Simulator
from repro.units import CBR_PACKET_SIZE, MPEG1_RATE, ms, to_mbyte_per_s

__all__ = [
    "EngineBenchResult",
    "CityScalePoint",
    "run_engine_bench",
    "run_city_scale",
    "format_engine_bench",
    "format_city_scale",
]

#: Seconds between CBR packets of one 1.5 Mbit/s stream (§3.2: 4 KiB FDDI
#: packets at 187.5 KB/s — about 46 packets per second per stream).
PACKET_SPACING = CBR_PACKET_SIZE / MPEG1_RATE


class _PacedStream:
    """One viewer's delivery loop: the scheduler load of a real stream.

    Mirrors the IOP send cadence: per packet-period wakeups when pacing
    is exact, one wakeup per ``effective_batch()`` periods when the
    simulation has opted into coarsening.  Packet and byte counters feed
    the aggregate-bandwidth check, exactly as MSU counters do in E13.
    """

    __slots__ = ("packets",)

    def __init__(self, sim: Simulator, stagger: float):
        self.packets = 0
        sim.process(self._run(sim, stagger), name="pace")

    def _run(self, sim: Simulator, stagger: float) -> Generator:
        if stagger > 0:
            yield sim.sleep(stagger)
        while True:
            batch = sim.effective_batch()
            if batch > 1:
                yield sim.sleep(batch * PACKET_SPACING)
                self.packets += batch
            else:
                yield sim.sleep(PACKET_SPACING)
                self.packets += 1


@dataclass(frozen=True)
class EngineBenchResult:
    """One configuration's run of the paced workload."""

    engine: str
    pacing_batch: int
    streams: int
    sim_seconds: float
    wall_seconds: float
    events: int

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0


def _bench_one(
    engine: str, pacing_batch: int, streams: int, duration: float
) -> EngineBenchResult:
    sim = Simulator(engine=engine)
    sim.pacing_batch = pacing_batch
    # Stagger starts across one packet period so the heap/wheel carries a
    # realistic spread of deadlines rather than one synchronized pulse.
    pacers = [
        _PacedStream(sim, stagger=(i / streams) * PACKET_SPACING)
        for i in range(streams)
    ]
    start = time.perf_counter()
    sim.run(until=duration)
    wall = time.perf_counter() - start
    assert sum(p.packets for p in pacers) > 0
    return EngineBenchResult(
        engine=engine,
        pacing_batch=pacing_batch,
        streams=streams,
        sim_seconds=duration,
        wall_seconds=wall,
        events=sim.events_executed,
    )


def run_engine_bench(
    streams: int = 500,
    duration: float = 20.0,
    fast_batch: int = 16,
) -> List[EngineBenchResult]:
    """Reference configuration vs fast configuration, identical workload.

    Returns ``[reference, fast]``: the heap engine pacing every packet
    (the pre-overhaul behaviour) and the wheel engine with coarsened
    pacing (what the city-scale runs use).
    """
    reference = _bench_one("heap", 1, streams, duration)
    fast = _bench_one("wheel", fast_batch, streams, duration)
    return [reference, fast]


def engine_speedup(results: Sequence[EngineBenchResult]) -> float:
    """Wall-time ratio of the reference run to the fast run."""
    reference, fast = results[0], results[-1]
    return (
        reference.wall_seconds / fast.wall_seconds
        if fast.wall_seconds > 0
        else float("inf")
    )


def format_engine_bench(results: Sequence[EngineBenchResult]) -> str:
    """Render the engine comparison table."""
    lines = [
        "Engine overhaul speedup (identical paced workload)",
        f"{'config':>22} | {'streams':>7} | {'events':>9} | "
        f"{'wall s':>7} | {'events/s':>10}",
    ]
    for r in results:
        config = f"{r.engine}, batch={r.pacing_batch}"
        lines.append(
            f"{config:>22} | {r.streams:>7} | {r.events:>9} | "
            f"{r.wall_seconds:>7.2f} | {r.events_per_sec:>10.0f}"
        )
    lines.append(f"(speedup: {engine_speedup(results):.1f}x wall time)")
    return "\n".join(lines)


@dataclass(frozen=True)
class CityScalePoint:
    """One installation size's behaviour and cost."""

    n_msus: int
    viewers: int
    sim_seconds: float
    wall_seconds: float
    events: int
    aggregate_mb_s: float
    coordinator_cpu: float

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0


def _city_one(
    n_msus: int, viewers: int, duration: float, pacing_batch: int
) -> CityScalePoint:
    from repro.core.coordinator import Coordinator

    sim = Simulator(engine="wheel")
    sim.pacing_batch = pacing_batch
    intra = Network(sim, "intra", latency=ms(1.0))
    coordinator = Coordinator(sim)
    coordinator.db.add_customer("user")
    for i in range(n_msus):
        fake = FakeMsu(sim, f"msu{i}")
        channel = ControlChannel(
            sim, coordinator.name, fake.name, latency=ms(1.0), network=intra
        )
        coordinator.attach_msu(channel)
        fake.attach_coordinator(channel)
    sim.run(until=0.05)  # let the hellos land
    pacers = [
        _PacedStream(sim, stagger=(i / viewers) * PACKET_SPACING)
        for i in range(viewers)
    ]
    start_sim = sim.now
    cpu_before = coordinator.machine.cpu.busy_time
    events_before = sim.events_executed
    start = time.perf_counter()
    sim.run(until=start_sim + duration)
    wall = time.perf_counter() - start
    total_bytes = sum(p.packets for p in pacers) * CBR_PACKET_SIZE
    cpu = (coordinator.machine.cpu.busy_time - cpu_before) / duration
    return CityScalePoint(
        n_msus=n_msus,
        viewers=viewers,
        sim_seconds=duration,
        wall_seconds=wall,
        events=sim.events_executed - events_before,
        aggregate_mb_s=to_mbyte_per_s(total_bytes / duration),
        coordinator_cpu=cpu,
    )


def run_city_scale(
    points: Sequence[tuple] = ((10, 1_000), (100, 10_000), (1000, 100_000)),
    duration: float = 5.0,
    pacing_batch: int = 64,
) -> List[CityScalePoint]:
    """Sweep installation size up to 1000 MSUs / 100k concurrent viewers."""
    return [_city_one(n, v, duration, pacing_batch) for n, v in points]


def format_city_scale(points: List[CityScalePoint]) -> str:
    """Render the city-scale sweep."""
    lines = [
        "City-scale installations (wheel engine, coarsened pacing)",
        f"{'MSUs':>5} | {'viewers':>8} | {'aggregate MB/s':>14} | "
        f"{'wall s':>7} | {'events/s':>9} | {'coord CPU':>9}",
    ]
    for p in points:
        lines.append(
            f"{p.n_msus:>5} | {p.viewers:>8} | {p.aggregate_mb_s:>13.1f}  | "
            f"{p.wall_seconds:>7.2f} | {p.events_per_sec:>9.0f} | "
            f"{p.coordinator_cpu * 100.0:>8.2f}%"
        )
    base, last = points[0], points[-1]
    ratio = last.aggregate_mb_s / base.aggregate_mb_s if base.aggregate_mb_s else 0.0
    lines.append(
        f"(aggregate scaled {ratio:.0f}x across {last.n_msus // base.n_msus}x"
        f" the MSUs in {last.wall_seconds:.1f}s of wall time)"
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_engine_bench(run_engine_bench()))
    print()
    print(format_city_scale(run_city_scale()))
