"""Experiment E11 (extension) — §2.3.3's replication alternative.

The paper rejects striping and notes the non-striped remedy for skewed
popularity: "we can make copies of popular content on several disks, but
we must anticipate usage trends ... We must also use additional disk
space to get additional disk bandwidth."

The experiment offers a skewed stream population (80 % of requests for
one hot movie) to a two-disk MSU, with and without the
:class:`~repro.core.replication.ReplicationManager` having copied the hot
item to the second disk, and reports how many of the offered streams the
Coordinator can admit plus the disk-load balance — quantifying both
halves of the paper's sentence (the bandwidth gained, and the disk space
spent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from repro.clients.client import Client
from repro.core.cluster import CalliopeCluster, ClusterConfig
from repro.core.replication import ReplicationManager
from repro.media.mpeg import MpegEncoder, packetize_cbr
from repro.sim import Simulator
from repro.storage.ibtree import IBTreeConfig
from repro.units import MPEG1_RATE

__all__ = ["ReplicationResult", "run_replication", "format_replication"]

_CONFIG = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)


@dataclass(frozen=True)
class ReplicationResult:
    """Admission outcome for one configuration."""

    label: str
    offered: int
    admitted: int
    queued: int
    disk_loads: List[float]  # bandwidth_used / capacity per disk
    extra_blocks: int  # disk space spent on copies


def _run(replicate: bool, offered: int, hot_fraction: float, seed: int
         ) -> ReplicationResult:
    sim = Simulator()
    cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1, ibtree_config=_CONFIG))
    cluster.coordinator.db.add_customer("user")
    packets = packetize_cbr(MpegEncoder(seed=seed).bitstream(4.0), MPEG1_RATE, 1024)
    cluster.load_content("hot", "mpeg1", packets, disk_index=0)
    cluster.load_content("cold", "mpeg1", packets, disk_index=1)
    sim.run(until=0.01)
    extra_blocks = 0
    if replicate:
        manager = ReplicationManager(cluster)
        target = cluster.msus[0].disk_ids()[1]
        manager.replicate("hot", "msu0", target)
        extra_blocks = cluster.msus[0].filesystems[target].open("hot").nblocks
    client = Client(sim, cluster, "audience")
    n_hot = int(round(offered * hot_fraction))

    def request_all() -> Generator:
        yield from client.open_session("user")
        for i in range(offered):
            yield from client.register_port(f"p{i}", "mpeg1")
        for i in range(offered):
            name = "hot" if i < n_hot else "cold"
            client.play_nowait(name, f"p{i}")  # open loop: queued is fine

    sim.process(request_all(), name="requests")
    sim.run(until=2.0)  # requests land; queued ones stay parked
    db = cluster.coordinator.db
    state = db.msus["msu0"]
    loads = [
        disk.bandwidth_used / disk.bandwidth_capacity
        for _, disk in sorted(state.disks.items())
    ]
    admission = cluster.coordinator.admission
    return ReplicationResult(
        "replicated" if replicate else "single-copy",
        offered=offered,
        admitted=admission.admitted,
        queued=len(admission.queue),
        disk_loads=loads,
        extra_blocks=extra_blocks,
    )


def run_replication(
    offered: int = 24, hot_fraction: float = 0.8, seed: int = 12
) -> List[ReplicationResult]:
    """Skewed admission with and without the hot item replicated."""
    return [
        _run(False, offered, hot_fraction, seed),
        _run(True, offered, hot_fraction, seed),
    ]


def format_replication(results: List[ReplicationResult]) -> str:
    """Render the admission comparison."""
    lines = [
        "Replication ablation: 24 offered 1.5 Mbit/s streams, 80% on one hot item",
        f"{'config':>12} | {'admitted':>8} | {'queued':>6} | "
        f"{'disk loads':>14} | {'copy cost':>9}",
    ]
    for r in results:
        loads = " ".join(f"{load * 100.0:.0f}%" for load in r.disk_loads)
        lines.append(
            f"{r.label:>12} | {r.admitted:>8} | {r.queued:>6} | "
            f"{loads:>14} | {r.extra_blocks:>4} blks"
        )
    lines.append(
        "(a second copy turns the idle disk's bandwidth into admitted hot"
        " streams, at the §2.3.3 price: disk space for disk bandwidth)"
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_replication(run_replication()))
