"""Experiment E2 — Graph 1: constant-rate packet-delivery distribution.

The paper: an MSU with two disks on one HBA delivers 22, 23 and 24
constant-rate 1.5 Mbit/s streams of 4 KiB packets for six minutes.  At 22
streams service is very good (only 0.4 % of packets more than 50 ms late,
none beyond 150 ms); 23 degrades gradually; at 24 only 38 % of packets
make the 50 ms mark — the MSU runs at ~90 % of the baseline's 4.7 MB/s.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments._support import StreamingRig, run_streaming_workload
from repro.media.mpeg import MpegEncoder, packetize_cbr
from repro.metrics.lateness import LatenessCdf
from repro.metrics.report import format_cdf_table
from repro.units import CBR_PACKET_SIZE, MPEG1_RATE

__all__ = ["run_graph1", "format_graph1", "PAPER_GRAPH1"]

#: Paper checkpoints quoted in §3.2.1 text.
PAPER_GRAPH1 = {
    22: {"within_50ms": 99.6, "max_ms": 150.0},
    24: {"within_50ms": 38.0},
}


def run_graph1(
    stream_counts=(22, 23, 24),
    duration: float = 60.0,
    seed: int = 1,
) -> Dict[int, LatenessCdf]:
    """Run the Graph 1 sweep; returns stream count -> lateness CDF.

    ``duration`` is the measured window (the paper ran six minutes; the
    distribution is stationary well before that, so benchmarks default to
    one minute — pass 360 for the full-length run).
    """
    curves: Dict[int, LatenessCdf] = {}
    for n in stream_counts:
        rig = StreamingRig()
        rig.uncap_admission()
        # One movie file per disk; streams alternate disks, as a balanced
        # installation would place them.
        encoder = MpegEncoder(rate=MPEG1_RATE, seed=seed)
        bitstream = encoder.bitstream(duration + 30.0)
        packets = packetize_cbr(bitstream, MPEG1_RATE, CBR_PACKET_SIZE)
        ndisks = len(rig.msu.disk_ids())
        for d in range(ndisks):
            rig.cluster.load_content(f"movie-d{d}", "mpeg1", packets, disk_index=d)
        plan = [(f"movie-d{i % ndisks}", "mpeg1") for i in range(n)]
        # Constant-rate clients arrive independently: spread schedules over
        # one packet period so sends do not burst in lockstep.
        curves[n] = run_streaming_workload(
            rig, plan, duration, stagger_span=2.0, seed=seed
        )
    return curves


def format_graph1(curves: Dict[int, LatenessCdf]) -> str:
    """Render the sweep the way Graph 1 reads."""
    named = {f"{n} x 1.5 Mbit/s streams": c for n, c in curves.items()}
    return (
        "Graph 1: Cumulative Packet Delivery Distribution "
        "(constant bit rate)\n" + format_cdf_table(named)
    )


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_graph1(run_graph1()))
