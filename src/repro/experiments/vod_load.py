"""Experiment E12 (extension) — admission behaviour under offered load.

The paper sizes the large installation by arithmetic ("150 MSUs at 20
streams each ... sessions as short as one minute", §3.3).  This extension
exercises that sizing on a real (single-MSU) installation: a Poisson
viewer population with Zipf content popularity offers increasing Erlang
loads; the Coordinator's admission control serves what fits and queues or
loses the rest.

Blocking follows the classic Erlang-B shape: negligible below the ~22
stream capacity, climbing steeply past it.  The experiment prints the
measured blocking next to the Erlang-B formula at the MSU's stream
capacity, connecting the paper's back-of-envelope to queueing theory.
Measured blocking sits somewhat above Erlang-B at mid loads: Zipf
popularity concentrates demand on the hot titles' disks, so per-disk
bandwidth caps bind before the aggregate does — the placement problem
§2.3.3 discusses (and replication, experiment E11, relieves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.clients.client import Client
from repro.clients.population import ViewerPopulation
from repro.core.cluster import CalliopeCluster, ClusterConfig
from repro.media.mpeg import MpegEncoder, packetize_cbr
from repro.sim import Simulator
from repro.storage.ibtree import IBTreeConfig
from repro.units import MPEG1_RATE

__all__ = ["VodLoadPoint", "erlang_b", "run_vod_load", "format_vod_load"]

_CONFIG = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)


@dataclass(frozen=True)
class VodLoadPoint:
    """One offered-load level's outcome."""

    offered_erlangs: float
    arrivals: int
    admitted: int
    blocked_or_abandoned: int
    blocking_probability: float
    concurrent_peak: int
    erlang_b_reference: float


def erlang_b(offered: float, servers: int) -> float:
    """The Erlang-B blocking probability for ``servers`` circuits."""
    if offered <= 0:
        return 0.0
    inv_b = 1.0
    for k in range(1, servers + 1):
        inv_b = 1.0 + inv_b * k / offered
    return 1.0 / inv_b


def _capacity_streams(cluster: CalliopeCluster) -> int:
    state = next(iter(cluster.coordinator.db.msus.values()))
    per_disk = [
        int(d.bandwidth_capacity // MPEG1_RATE) for d in state.disks.values()
    ]
    return min(sum(per_disk), int(state.delivery_capacity // MPEG1_RATE))


def run_vod_load(
    offered_erlangs: List[float] = (10.0, 18.0, 24.0, 32.0),
    mean_watch_seconds: float = 8.0,
    duration: float = 200.0,
    n_titles: int = 8,
    seed: int = 14,
) -> List[VodLoadPoint]:
    """Sweep offered load; returns one point per level."""
    points = []
    for offered in offered_erlangs:
        sim = Simulator()
        cluster = CalliopeCluster(sim, ClusterConfig(n_msus=1, ibtree_config=_CONFIG))
        cluster.coordinator.db.add_customer("user")
        # Titles must outlast the watch times or streams end (and free
        # their resources) before the viewer leaves.
        length = mean_watch_seconds * 6.0
        packets = packetize_cbr(
            MpegEncoder(seed=seed).bitstream(length), MPEG1_RATE, 1024
        )
        titles = []
        for t in range(n_titles):
            name = f"title{t}"
            cluster.load_content(name, "mpeg1", packets, disk_index=t % 2)
            titles.append(name)
        sim.run(until=0.01)
        capacity = _capacity_streams(cluster)
        client = Client(sim, cluster, "audience")
        population = ViewerPopulation(
            sim, client, titles,
            arrival_rate=offered / mean_watch_seconds,
            mean_watch_seconds=mean_watch_seconds,
            queue_patience=2.0,
            seed=seed,
        )
        population.start()
        sim.run(until=duration)
        population.stop()
        sim.run(until=duration + 30.0)  # drain in-flight viewers
        stats = population.stats
        points.append(
            VodLoadPoint(
                offered_erlangs=offered,
                arrivals=stats.arrivals,
                admitted=stats.admitted,
                blocked_or_abandoned=stats.blocked + stats.abandoned,
                blocking_probability=stats.blocking_probability,
                concurrent_peak=stats.concurrent_peak,
                erlang_b_reference=erlang_b(offered, capacity),
            )
        )
    return points


def format_vod_load(points: List[VodLoadPoint]) -> str:
    """Render the offered-load sweep."""
    lines = [
        "VoD admission under offered load (one MSU, Zipf popularity)",
        f"{'Erlangs':>8} | {'arrivals':>8} | {'admitted':>8} | "
        f"{'denied':>6} | {'P(block)':>8} | {'Erlang-B':>8} | {'peak':>4}",
    ]
    for p in points:
        lines.append(
            f"{p.offered_erlangs:>8.1f} | {p.arrivals:>8} | {p.admitted:>8} | "
            f"{p.blocked_or_abandoned:>6} | {p.blocking_probability:>8.3f} | "
            f"{p.erlang_b_reference:>8.3f} | {p.concurrent_peak:>4}"
        )
    lines.append(
        "(blocking stays near zero below the ~22-stream capacity and climbs"
        " on the Erlang-B curve past it — the §3.3 sizing arithmetic)"
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_vod_load(run_vod_load()))
