"""Experiment E24 (extension) — Coordinator scale-out: takeover + sharding.

The paper's Coordinator is both a single point of failure and a serial
admission bottleneck.  PR 9 adds the scale-out tier
(:mod:`repro.scaleout`): a warm standby that tails the journal and takes
over on leader loss, and N admission shards over escrowed per-disk
bandwidth books.  This experiment measures both promises:

**Part A — warm takeover.**  Admit ``n`` viewers, crash the leader
mid-playback with a synced standby armed, and let the heartbeat detector
drive the promotion.  Measured: detection and takeover latency from the
instant of leader loss (the headline bound: takeover completes within
one ``report_grace``, the window a *cold* restart only begins its
ReportState collection in), WAL records the standby had tailed, and the
number of admitted streams dropped across the switch (must be zero — the
MSUs never stop serving and the warm reconcile adopts every stream the
next heartbeats confirm).

**Part B — sharded admission throughput.**  With a non-zero per-decision
service time, admit a burst of viewers (one client each, titles spread
across shards) and measure admissions/sec for increasing shard counts.
Same-shard requests queue at one serial server; different shards admit
in parallel, so throughput should scale toward the shard count while the
escrowed books keep every disk slot single-spent (the
``scaleout-escrow`` invariant runs over the same machinery in the chaos
suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Sequence

from repro.clients.client import Client, GroupView
from repro.core.cluster import CalliopeCluster, ClusterConfig
from repro.media.mpeg import MpegEncoder, packetize_cbr
from repro.recovery import RecoveryConfig
from repro.scaleout import ScaleOutConfig
from repro.sim import Simulator
from repro.storage.ibtree import IBTreeConfig
from repro.units import MPEG1_RATE

__all__ = [
    "TakeoverPoint",
    "ShardPoint",
    "run_takeover",
    "run_sharding",
    "format_scaleout",
]

_CONFIG = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)

#: Reconciliation grace (the cold-restart budget a takeover must beat).
_GRACE = 1.0

#: Simulated seconds one shard spends deciding one admission (part B).
_SERVICE = 0.02


@dataclass(frozen=True)
class TakeoverPoint:
    """One leader kill with a warm standby armed, at one load level."""

    viewers: int
    #: Streams the books charged the instant before the kill.
    active_before: int
    detection_s: float
    takeover_s: float
    #: WAL records the standby had applied while shadowing.
    records_tailed: int
    #: Admitted streams the warm reconcile dropped (0 = kept them all).
    streams_dropped: int
    #: Streams on the books after the takeover settled.
    active_after: int
    report_grace_s: float = _GRACE

    @property
    def within_grace(self) -> bool:
        return self.takeover_s <= self.report_grace_s + 1e-9


@dataclass(frozen=True)
class ShardPoint:
    """One admission burst at one shard count."""

    shards: int
    viewers: int
    admitted: int
    #: Seconds from the burst start to the last admission going ready.
    burst_s: float
    admissions_per_s: float
    #: Escrow protocol traffic while admitting.
    grants: int
    steals: int


def _viewer(
    client: Client, title: str, port_name: str, views: Dict[str, GroupView],
    ready_at: Dict[str, float], sim: Simulator,
) -> Generator:
    yield from client.register_port(port_name, "mpeg1")
    view = yield from client.play(title, port_name)
    views[port_name] = view
    yield from client.wait_ready(view)
    ready_at[port_name] = sim.now


def _load_titles(
    cluster: CalliopeCluster, n_titles: int, n_msus: int, length: float,
    seed: int,
) -> List[str]:
    packets = packetize_cbr(
        MpegEncoder(seed=seed).bitstream(length), MPEG1_RATE, 1024
    )
    titles = []
    for t in range(n_titles):
        name = f"title{t}"
        cluster.load_content(
            name, "mpeg1", packets, msu_index=t % n_msus, disk_index=t % 2
        )
        titles.append(name)
    return titles


# -- part A: warm takeover ----------------------------------------------------

def _run_takeover_point(
    n_viewers: int, n_msus: int, n_titles: int, kill_at: float, seed: int
) -> TakeoverPoint:
    sim = Simulator()
    cluster = CalliopeCluster(
        sim,
        ClusterConfig(
            n_msus=n_msus,
            ibtree_config=_CONFIG,
            recovery=RecoveryConfig(snapshot_every=256, report_grace=_GRACE),
            scaleout=ScaleOutConfig(standby=True),
            seed=seed,
        ),
    )
    coord = cluster.coordinator
    coord.db.add_customer("user")
    titles = _load_titles(
        cluster, n_titles, n_msus, kill_at + 25.0, seed
    )
    sim.run(until=0.05)

    client = Client(sim, cluster, "audience")
    views: Dict[str, GroupView] = {}
    ready: Dict[str, float] = {}
    sim.process(client.open_session("user"), name="e24.session")
    sim.run(until=0.2)
    for v in range(n_viewers):
        sim.process(
            _viewer(client, titles[v % n_titles], f"v{v}", views, ready, sim),
            name=f"e24.v{v}",
        )
    sim.run(until=kill_at)

    active_before = sum(
        len(group.allocations) for group in coord.groups.values()
    )
    cluster.crash_coordinator()
    # Detection (~0.3s) + promotion are event-driven; run past the grace
    # window plus a few MSU heartbeats so the warm reconcile settles.
    sim.run(until=kill_at + _GRACE + 1.0)
    if not cluster.takeovers:  # pragma: no cover - takeover must happen
        raise RuntimeError("standby never took over")
    outcome = cluster.takeovers[-1]
    coord = cluster.coordinator
    active_after = sum(
        len(group.allocations) for group in coord.groups.values()
    )
    return TakeoverPoint(
        viewers=n_viewers,
        active_before=active_before,
        detection_s=outcome.detection_latency,
        takeover_s=outcome.takeover_latency,
        records_tailed=outcome.records_tailed,
        streams_dropped=coord.takeover_drops,
        active_after=active_after,
    )


def run_takeover(
    scales: Sequence[int] = (4, 8, 16),
    n_msus: int = 3,
    n_titles: int = 4,
    kill_at: float = 5.0,
    seed: int = 13,
) -> List[TakeoverPoint]:
    """One leader kill + warm takeover per load level in ``scales``."""
    return [
        _run_takeover_point(n, n_msus, n_titles, kill_at, seed + i)
        for i, n in enumerate(scales)
    ]


# -- part B: sharded admission throughput -------------------------------------

def _run_shard_point(
    n_shards: int, n_viewers: int, n_msus: int, n_titles: int, seed: int
) -> ShardPoint:
    sim = Simulator()
    cluster = CalliopeCluster(
        sim,
        ClusterConfig(
            n_msus=n_msus,
            ibtree_config=_CONFIG,
            recovery=RecoveryConfig(snapshot_every=1024, report_grace=_GRACE),
            scaleout=ScaleOutConfig(
                shards=n_shards, admit_service_time=_SERVICE
            ),
            seed=seed,
        ),
    )
    coord = cluster.coordinator
    coord.db.add_customer("user")
    titles = _load_titles(cluster, n_titles, n_msus, 30.0, seed)
    sim.run(until=0.05)

    # One client per viewer: each gets its own session channel, so the
    # admissions arrive concurrently and only the shard servers gate
    # them (a shared client would serialize in its control loop).
    views: Dict[str, GroupView] = {}
    ready: Dict[str, float] = {}
    clients = []
    for v in range(n_viewers):
        client = Client(sim, cluster, f"aud{v}")
        clients.append(client)
        sim.process(client.open_session("user"), name=f"e24.s{v}")
    sim.run(until=0.2)
    start = sim.now
    for v, client in enumerate(clients):
        sim.process(
            _viewer(client, titles[v % n_titles], f"v{v}", views, ready, sim),
            name=f"e24.b{v}",
        )
    sim.run(until=start + 30.0)

    admitted = len(ready)
    burst = (max(ready.values()) - start) if ready else float("inf")
    shards = coord.shards
    return ShardPoint(
        shards=n_shards,
        viewers=n_viewers,
        admitted=admitted,
        burst_s=burst,
        admissions_per_s=admitted / burst if burst > 0 else 0.0,
        grants=shards.grants if shards is not None else 0,
        steals=shards.steals if shards is not None else 0,
    )


def run_sharding(
    shard_counts: Sequence[int] = (1, 2, 4),
    n_viewers: int = 32,
    n_msus: int = 4,
    n_titles: int = 24,
    seed: int = 29,
) -> List[ShardPoint]:
    """One admission burst per shard count (same seed: same workload)."""
    return [
        _run_shard_point(s, n_viewers, n_msus, n_titles, seed)
        for s in shard_counts
    ]


def format_scaleout(
    takeovers: List[TakeoverPoint], shardings: List[ShardPoint]
) -> str:
    """Render both halves the way the scale-out story reads."""
    lines = [
        "Coordinator scale-out: warm-standby takeover + sharded admission",
        f"-- part A: leader kill with a synced standby "
        f"(report_grace {_GRACE:.1f}s) --",
        f"{'viewers':>7} | {'active':>6} | {'detect s':>8} | "
        f"{'takeover s':>10} | {'tailed':>6} | {'dropped':>7} | {'verdict':>8}",
    ]
    for p in takeovers:
        verdict = "in-grace" if p.within_grace else "LATE"
        lines.append(
            f"{p.viewers:>7} | {p.active_before:>6} | {p.detection_s:>8.3f} | "
            f"{p.takeover_s:>10.3f} | {p.records_tailed:>6} | "
            f"{p.streams_dropped:>7} | {verdict:>8}"
        )
    base = shardings[0].admissions_per_s if shardings else 0.0
    lines.append(
        f"-- part B: {shardings[0].viewers if shardings else 0} concurrent "
        f"admissions, {_SERVICE * 1e3:.0f}ms per decision --"
    )
    lines.append(
        f"{'shards':>6} | {'admitted':>8} | {'burst s':>8} | "
        f"{'adm/s':>8} | {'speedup':>7} | {'grants':>6} | {'steals':>6}"
    )
    for p in shardings:
        speedup = p.admissions_per_s / base if base > 0 else 0.0
        lines.append(
            f"{p.shards:>6} | {p.admitted:>8} | {p.burst_s:>8.3f} | "
            f"{p.admissions_per_s:>8.1f} | {speedup:>6.2f}x | "
            f"{p.grants:>6} | {p.steals:>6}"
        )
    lines.append(
        "(the standby tails the WAL and promotes on heartbeat silence —"
        " no ReportState storm, no dropped streams; shards admit in"
        " parallel against escrowed slices of each disk's bandwidth book)"
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_scaleout(run_takeover(), run_sharding()))
