"""Shared plumbing for the streaming experiments (Graphs 1 and 2)."""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.clients.client import Client
from repro.core.cluster import CalliopeCluster, ClusterConfig
from repro.metrics.lateness import LatenessCdf
from repro.sim import Simulator

__all__ = ["StreamingRig", "run_streaming_workload"]


class StreamingRig:
    """One MSU driven to a fixed stream count, admission uncapped.

    The paper's Graph 1/2 measurements intentionally push the MSU past its
    comfortable operating point (22 -> 24 streams), so the Coordinator's
    admission limits are raised out of the way and the experiment controls
    the stream count directly.
    """

    def __init__(self, config: Optional[ClusterConfig] = None):
        self.sim = Simulator()
        self.cluster = CalliopeCluster(self.sim, config or ClusterConfig())
        self.cluster.coordinator.db.add_customer("user")
        self.client = Client(self.sim, self.cluster, "client0")
        self.msu = self.cluster.msus[0]

    def uncap_admission(self) -> None:
        """Let the experiment, not the Coordinator, set the load."""
        # Run a few control-channel round trips so the MSUs' hello
        # messages have registered their disks before we raise the caps.
        self.sim.run(until=self.sim.now + 0.01)
        for state in self.cluster.coordinator.db.msus.values():
            state.delivery_capacity = 1e12
            for disk in state.disks.values():
                disk.bandwidth_capacity = 1e12

    def load_files(self, names_types_packets) -> None:
        """Pre-load (name, type, packets, disk_index) tuples."""
        for name, type_name, packets, disk_index in names_types_packets:
            self.cluster.load_content(name, type_name, packets, disk_index=disk_index)


def run_streaming_workload(
    rig: StreamingRig,
    plan: Sequence[tuple],
    duration: float,
    settle: float = 30.0,
    stagger_span: float = 0.0,
    seed: int = 97,
) -> LatenessCdf:
    """Start streams per ``plan`` [(content, port_type)], measure a window.

    All streams are held LOADING until every buffer is resident, then
    released together; ``stagger_span`` > 0 spreads the schedules
    uniformly over that many seconds (clients in practice never start in
    synchrony, §3.2.2), while 0 reproduces the paper's synchronized-start
    test.  The lateness collector is reset at release so the CDF covers
    exactly the loaded steady state.
    """
    import numpy as np

    sim, client, msu = rig.sim, rig.client, rig.msu
    msu.iop.hold_starts = True

    def setup() -> Generator:
        yield from client.open_session("user")
        views = []
        for i, (content, port_type) in enumerate(plan):
            port = f"port{i}"
            yield from client.register_port(port, port_type)
            view = yield from client.play(content, port)
            views.append(view)
        return views

    proc = sim.process(setup(), name="setup")
    sim.run_until_event(proc, limit=settle)
    # Wait for every stream's opening buffers, then release in unison.
    guard = sim.now + settle
    while not (
        len(msu.iop.play_streams) == len(plan) and msu.iop.all_loaded()
    ):
        if sim.peek() > guard:
            raise RuntimeError("streams failed to buffer within the settle window")
        sim.step()
    msu.iop.collector.reset()
    stagger = None
    if stagger_span > 0:
        rng = np.random.default_rng(seed)
        streams = msu.iop.play_streams
        offsets = rng.uniform(0.0, stagger_span, len(streams))
        stagger = {s.stream_id: float(o) for s, o in zip(streams, offsets)}
    msu.iop.release_starts(stagger)
    sim.run(until=sim.now + duration)
    return msu.iop.collector.cdf()
