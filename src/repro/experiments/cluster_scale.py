"""Experiment E13 (extension) — scaling by adding MSUs (abstract, §3.3).

"Preliminary performance measurements indicate that Calliope can be
scaled from a single PC producing about 22 MPEG-1 video streams to
hundreds of PCs producing thousands of streams. ... Larger Calliope
installations still have a single coordinator, but add more MSUs as
storage requirements or user bandwidth requirements increase."

§3.3 argues this with a fake MSU; this experiment demonstrates it with
*real* ones: installations of 1, 2 and 4 MSUs each serve a comfortable
per-MSU load (18 streams) simultaneously, and we verify that

* aggregate delivered bandwidth scales linearly with MSU count,
* per-stream delivery quality does not degrade as MSUs are added
  (MSUs share nothing but the Coordinator and control network), and
* the Coordinator's CPU stays negligible throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Sequence

from repro.clients.client import Client
from repro.core.cluster import CalliopeCluster, ClusterConfig
from repro.media.mpeg import MpegEncoder, packetize_cbr
from repro.sim import Simulator
from repro.units import CBR_PACKET_SIZE, MPEG1_RATE, to_mbyte_per_s

__all__ = ["ScalePoint", "run_cluster_scale", "format_cluster_scale"]


@dataclass(frozen=True)
class ScalePoint:
    """One installation size's behaviour."""

    n_msus: int
    streams: int
    aggregate_mb_s: float
    #: Worst per-MSU "fraction within 50 ms" across the installation.
    worst_within_50ms: float
    coordinator_cpu: float


def _run_one(n_msus: int, per_msu: int, duration: float, seed: int) -> ScalePoint:
    sim = Simulator()
    cluster = CalliopeCluster(sim, ClusterConfig(n_msus=n_msus))
    cluster.coordinator.db.add_customer("user")
    encoder = MpegEncoder(seed=seed)
    packets = packetize_cbr(
        encoder.bitstream(duration + 30.0), MPEG1_RATE, CBR_PACKET_SIZE
    )
    for msu_index in range(n_msus):
        ndisks = len(cluster.msus[msu_index].disk_ids())
        for d in range(ndisks):
            cluster.load_content(
                f"movie-m{msu_index}-d{d}", "mpeg1", packets,
                msu_index=msu_index, disk_index=d,
            )
    client = Client(sim, cluster, "audience")

    def start_all() -> Generator:
        yield from client.open_session("user")
        port_no = 0
        for msu_index in range(n_msus):
            ndisks = len(cluster.msus[msu_index].disk_ids())
            for s in range(per_msu):
                name = f"p{port_no}"
                port_no += 1
                yield from client.register_port(name, "mpeg1")
                yield from client.play(f"movie-m{msu_index}-d{s % ndisks}", name)

    proc = sim.process(start_all(), name="start")
    sim.run_until_event(proc, limit=60.0)
    start = sim.now
    sent_before = [msu.iop.packets_sent for msu in cluster.msus]
    for msu in cluster.msus:
        msu.iop.collector.reset()
    cpu_before = cluster.coordinator.machine.cpu.busy_time
    sim.run(until=start + duration)
    total_bytes = sum(
        (msu.iop.packets_sent - before) * CBR_PACKET_SIZE
        for msu, before in zip(cluster.msus, sent_before)
    )
    worst = min(
        msu.iop.collector.percent_within(50) / 100.0 for msu in cluster.msus
    )
    cpu = (cluster.coordinator.machine.cpu.busy_time - cpu_before) / duration
    return ScalePoint(
        n_msus=n_msus,
        streams=per_msu * n_msus,
        aggregate_mb_s=to_mbyte_per_s(total_bytes / duration),
        worst_within_50ms=worst,
        coordinator_cpu=cpu,
    )


def run_cluster_scale(
    msu_counts: Sequence[int] = (1, 2, 4),
    per_msu: int = 18,
    duration: float = 20.0,
    seed: int = 10,
) -> List[ScalePoint]:
    """Sweep the installation size at a fixed per-MSU load."""
    return [_run_one(n, per_msu, duration, seed) for n in msu_counts]


def format_cluster_scale(points: List[ScalePoint]) -> str:
    """Render the scaling table."""
    lines = [
        "Scaling by adding MSUs (18 x 1.5 Mbit/s streams per MSU)",
        f"{'MSUs':>5} | {'streams':>7} | {'aggregate MB/s':>14} | "
        f"{'worst within 50ms':>17} | {'coordinator CPU':>15}",
    ]
    for p in points:
        lines.append(
            f"{p.n_msus:>5} | {p.streams:>7} | {p.aggregate_mb_s:>13.2f}  | "
            f"{p.worst_within_50ms * 100.0:>16.1f}% | {p.coordinator_cpu * 100.0:>14.2f}%"
        )
    base = points[0]
    last = points[-1]
    ratio = last.aggregate_mb_s / base.aggregate_mb_s
    lines.append(
        f"(aggregate scaled {ratio:.2f}x across {last.n_msus}x the MSUs;"
        " per-stream quality held — MSUs share only the Coordinator)"
    )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - manual calibration aid
    print(format_cluster_scale(run_cluster_scale()))
