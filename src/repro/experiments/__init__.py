"""One runner per paper table/figure.

Each module exposes a ``run_*`` function returning plain-data results and a
``format_*`` function rendering them the way the paper reports them.  The
benchmark harness under ``benchmarks/`` and EXPERIMENTS.md both consume
these runners, so the numbers in the docs are regenerable by definition.

* :mod:`repro.experiments.table1`       — Table 1 baseline measurements
* :mod:`repro.experiments.graph1`       — Graph 1 constant-rate lateness CDF
* :mod:`repro.experiments.graph2`       — Graph 2 variable-rate lateness CDF
* :mod:`repro.experiments.memorypath`   — §3.2.3 memory-path bottleneck
* :mod:`repro.experiments.scalability`  — §3.3 Coordinator/network load
* :mod:`repro.experiments.elevator`     — §2.3.3 elevator-scheduling gain
* :mod:`repro.experiments.ibtree_ablation` — §2.2.1 IB-tree integration
* :mod:`repro.experiments.timer_jitter` — §2.2.1 timer-granularity jitter
* :mod:`repro.experiments.striping`     — §2.3.3 striping trade-off
"""
