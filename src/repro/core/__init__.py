"""Calliope proper: the Coordinator and the Multimedia Storage Unit.

Typical assembly goes through :class:`repro.core.cluster.CalliopeCluster`,
which wires a Coordinator machine, one or more MSUs, the intra-server
Ethernet and the FDDI delivery network, exactly as Figure 1 lays them out.
"""

from repro.core.cluster import CalliopeCluster, ClusterConfig
from repro.core.coordinator import Coordinator
from repro.core.msu.msu import Msu

__all__ = ["CalliopeCluster", "ClusterConfig", "Coordinator", "Msu"]
