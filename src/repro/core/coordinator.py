"""The Coordinator: Calliope's global resource manager (§2.2).

The Coordinator authenticates clients, serves the table of contents,
admits play/record requests against per-disk bandwidth and per-MSU
delivery budgets, queues requests that cannot be placed, builds stream
groups for composite types, and detects MSU failures through broken
control connections.  The paper left it a single point of failure
("Calliope does not recover from Coordinator failures"); the
:mod:`repro.recovery` extension closes that gap — every control-plane
mutation is journaled to a write-ahead log, and a restarted Coordinator
replays snapshot + WAL and then reconciles against MSU StateReports,
so already-admitted streams survive the outage.

Per-request CPU costs are charged on the Coordinator machine's simulated
processor; the scalability experiment (§3.3) measures exactly this
utilization plus the intra-server network load.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.edge import EdgeConfig, PlacementManager
    from repro.multicast import ChannelManager, MulticastConfig

from repro.core.admission import AdmissionControl, Allocation
from repro.core.database import AdminDatabase, ContentEntry
from repro.core.sessions import DisplayPort, Session, SessionTable
from repro.errors import TypeMismatchError
from repro.failover import (
    PRIORITY_NORMAL,
    PRIORITY_RESUME,
    FailoverConfig,
    HeartbeatMonitor,
    StreamMeta,
    StreamMigrator,
    play_priority,
)
from repro.hardware.machine import Machine
from repro.hardware.params import ETHERNET_10, MachineParams
from repro.media.content import DEFAULT_TYPES, ContentType, ContentTypeRegistry
from repro.net import messages as m
from repro.net.network import ControlChannel
from repro.recovery.snapshot import (
    group_state,
    port_state,
    snapshot_state,
    ticket_state,
)
from repro.sim import Simulator
from repro.units import BLOCK_SIZE, ms

__all__ = ["Coordinator", "GroupRecord"]


@dataclass
class GroupRecord:
    """Coordinator-side bookkeeping for one scheduled stream group."""

    group_id: int
    session_id: int
    msu_name: str
    #: stream_id -> granted allocation.
    allocations: Dict[int, Allocation] = field(default_factory=dict)
    #: stream_id -> (content name, type name) for recordings in progress.
    recordings: Dict[int, Tuple[str, str]] = field(default_factory=dict)
    #: stream_id -> playback identity, kept so the failover migrator can
    #: re-place the group on a replica after an MSU failure.
    streams: Dict[int, StreamMeta] = field(default_factory=dict)
    live = True


@dataclass
class _QueuedRequest:
    """A request parked until resources free up (§2.2)."""

    kind: str  # "play", "record" or "resume"
    session_id: int
    message: object
    channel: Optional[ControlChannel]
    #: Degraded-mode band (repro.failover.degraded); lower drains first.
    priority: int = PRIORITY_NORMAL
    #: Durable identity in the recovery journal (0 = never journaled).
    ticket_id: int = 0


class Coordinator:
    """The non-real-time half of Calliope."""

    #: CPU to parse/authenticate/place one client request.
    REQUEST_CPU = ms(1.6)
    #: CPU to emit one schedule message to an MSU.
    SCHEDULE_CPU = ms(0.3)
    #: CPU to process one stream-termination notification.
    TERMINATION_CPU = ms(0.5)
    #: Requests after which a title counts as hot enough to pin its
    #: prefix in the home MSU's page cache (popularity-aware admission).
    PREFIX_HOT_REQUESTS = 3
    #: Opening pages to pin per hot title.
    PREFIX_PIN_PAGES = 16

    def __init__(
        self,
        sim: Simulator,
        types: Optional[List[ContentType]] = None,
        machine_params: Optional[MachineParams] = None,
        block_size: int = BLOCK_SIZE,
        name: str = "coordinator",
        failover: Optional[FailoverConfig] = None,
        multicast: Optional[MulticastConfig] = None,
        edge: Optional[EdgeConfig] = None,
        live=None,
        standby: bool = False,
    ):
        self.sim = sim
        self.name = name
        #: True while this instance is a warm-standby *shadow*: it applies
        #: journal records but owns no cluster — background managers
        #: (EPG, edge placement) stay passive until :meth:`activate`.
        self.standby = standby
        params = machine_params or MachineParams(name=name, disks_per_hba=())
        self.machine = Machine(sim, params)
        self.nic = self.machine.add_nic(ETHERNET_10)
        self.types = ContentTypeRegistry(types if types is not None else DEFAULT_TYPES)
        self.db = AdminDatabase()
        self.admission = AdmissionControl(self.db, block_size)
        self.sessions = SessionTable()
        self.groups: Dict[int, GroupRecord] = {}
        self._msu_channels: Dict[str, ControlChannel] = {}
        self._session_channels: Dict[int, ControlChannel] = {}
        self.failover = failover
        #: Heartbeat failure detector; None falls back to the paper's
        #: broken-connection signal only.
        self.monitor: Optional[HeartbeatMonitor] = None
        #: Stream migrator; None means failed streams just queue.
        self.migrator: Optional[StreamMigrator] = None
        if failover is not None:
            self.monitor = HeartbeatMonitor(
                sim, failover.heartbeat, on_dead=self._heartbeat_dead
            )
            if failover.migrate:
                self.migrator = StreamMigrator(self)
        #: Multicast channel manager (batching + patching); None keeps
        #: the paper's one-unicast-stream-per-viewer delivery.
        self.channel_manager: Optional[ChannelManager] = None
        if multicast is not None:
            # Imported here: repro.multicast pulls admission types back in,
            # so a module-level import would be circular.
            from repro.multicast import ChannelManager

            self.channel_manager = ChannelManager(self, multicast)
        #: Edge-tier placement manager (prefix caches near the clients);
        #: None keeps every byte flowing from the MSUs.
        self.placement: Optional[PlacementManager] = None
        if edge is not None:
            # Imported here for the same cycle reason as ChannelManager.
            from repro.edge.placement import PlacementManager

            self.placement = PlacementManager(self, edge)
            self.admission.edge_books = self.placement
        #: Live-TV manager (EPG, channel ingest + fan-out, rewind-live);
        #: None keeps the server pure video-on-demand.
        self.live_manager = None
        if live is not None:
            # Imported here for the same cycle reason as ChannelManager.
            from repro.live.manager import LiveManager

            self.live_manager = LiveManager(self, live)
        #: Hook fired as ``callback(msu_name, lost_titles)`` after a
        #: failure; the ReplicationManager's watch() uses it to restore
        #: replica counts for titles that just lost a copy.
        self.on_capacity_lost = None
        self._next_group = 1
        self._next_stream = 1
        self._next_ticket = 1
        #: Write-ahead log (repro.recovery); None disables journaling.
        self.journal = None
        #: True once halt() ran — this instance is a dead process image.
        self.dead = False
        #: True between begin_recovery() and reconciliation completing.
        self.recovering = False
        self._recovery_expected: set = set()
        self._recovery_reports: Dict[str, m.StateReport] = {}
        self._recovery_backlog: List[object] = []
        self._recovery_started = 0.0
        #: WAL records replayed at restart (cluster sets it; metrics).
        self.replayed_records = 0
        #: The most recent restart's RecoveryOutcome, if any.
        self.last_recovery = None
        self.db.on_journal = self._journal
        self.admission.on_journal = self._journal
        self.requests_handled = 0
        self.terminations_handled = 0
        self.prefix_hot_requests = self.PREFIX_HOT_REQUESTS
        self.prefix_pin_pages = self.PREFIX_PIN_PAGES
        #: Optional structured event log (repro.metrics.tracing.Tracer).
        self.tracer = None
        #: Sharded admission escrow (repro.scaleout); None keeps the
        #: single-process books.  Installed via :meth:`enable_shards`.
        self.shards = None
        #: MSUs whose first post-takeover heartbeat still needs the warm
        #: reconciliation diff (repro.scaleout.standby).
        self._warm_pending: set = set()
        #: Streams the warm reconciliation dropped (E24 / tests read it;
        #: zero when no admitted stream died with the old leader).
        self.takeover_drops = 0

    # -- scale-out (repro.scaleout) -----------------------------------------------

    def enable_shards(
        self,
        n_shards: int,
        refill_fraction: float = 0.25,
        service_time: float = 0.0,
    ):
        """Split the per-disk bandwidth books into N escrowed shards."""
        from repro.scaleout.escrow import ShardSet

        self.shards = ShardSet(
            self.db, n_shards,
            refill_fraction=refill_fraction, service_time=service_time,
        )
        self.shards.journal = self._journal
        self.admission.observer = self.shards
        return self.shards

    def activate(self) -> None:
        """Promote a standby shadow into the acting leader.

        Flips the passive flag and starts the background loops the
        shadow suppressed — the edge placement loop and the EPG slots
        that have not fired yet (each slot re-checks ``fired`` and the
        current time, so late spawning is safe).
        """
        if not self.standby:
            return
        self.standby = False
        if self.placement is not None:
            self.placement.activate()
        if self.live_manager is not None:
            self.live_manager.activate()
        if self.shards is not None:
            self.shards.replaying = False

    def arm_heartbeat_reconcile(self, msu_names) -> None:
        """Schedule a warm reconciliation against each MSU's next beat.

        The takeover path's replacement for the restart-time ReportState
        storm: instead of probing every MSU and holding admissions for a
        grace window, the new leader diffs its replayed stream tables
        against the positions already riding each MSU's next heartbeat.
        """
        self._warm_pending = set(msu_names)

    def _warm_reconcile(self, msu_name: str, positions) -> int:
        """Drop replayed playback streams absent from a fresh heartbeat.

        MSU-wins, like the cold-restart reconcile, but scoped to what a
        heartbeat can prove: positions carry playback streams and channel
        subscribers, never recordings or live ingests, so only plain
        playback allocations are eligible.  Channel-owner, subscriber,
        live and edge-serve groups are left to their own control
        messages (PatchDrained, ChannelDowngrade, EdgeServeDone...).
        """
        reported = {(gid, sid) for gid, sid, _page, _us in positions}
        protected: set = set()
        if self.channel_manager is not None:
            protected |= set(self.channel_manager._channel_groups)
            protected |= set(self.channel_manager._subscriber_groups)
        if self.live_manager is not None:
            protected |= set(self.live_manager._channel_groups)
            protected |= set(self.live_manager._ingest_groups)
            protected |= set(self.live_manager._subscriber_groups)
        if self.placement is not None:
            protected |= {gid for (gid, _sid) in self.placement.serves}
        dropped = 0
        for group in list(self.groups.values()):
            if group.msu_name != msu_name or group.group_id in protected:
                continue
            if group.recordings:
                continue  # record streams never ride the heartbeat
            for stream_id in sorted(
                set(group.allocations) & set(group.streams)
            ):
                if (group.group_id, stream_id) in reported:
                    continue
                # The termination this MSU reported into the dead
                # leader's closed channel, replayed from heartbeat truth.
                self._stream_terminated(
                    m.StreamTerminated(
                        group.group_id, stream_id, reason="takeover-sync"
                    )
                )
                dropped += 1
        if dropped:
            self.takeover_drops += dropped
            self._trace("takeover-sync", msu_name, f"dropped={dropped}")
            self._retry_queue()
        return dropped

    def _trace(self, category: str, subject, detail: str = "") -> None:
        if self.tracer is not None:
            self.tracer.record(self.name, category, subject, detail)

    def allocate_group_id(self) -> int:
        """Hand out the next stream-group identifier."""
        group_id = self._next_group
        self._next_group += 1
        return group_id

    def allocate_stream_id(self) -> int:
        """Hand out the next stream identifier."""
        stream_id = self._next_stream
        self._next_stream += 1
        return stream_id

    # -- crash recovery (repro.recovery) -----------------------------------------

    def _journal(self, kind: str, payload: dict) -> None:
        """Append one mutation to the write-ahead log, snapshotting as due.

        A single hook serves the database, the admission books and the
        Coordinator's own structural mutations; records and their matching
        control-channel sends happen in one synchronous block, so the log
        never tears mid-operation.
        """
        if self.journal is None or self.dead:
            return
        self.journal.append(kind, payload)
        if not self.recovering and self.journal.snapshot_due():
            self.journal.install_snapshot(snapshot_state(self))

    def attach_journal(self, store) -> None:
        """Start journaling to ``store`` (a JournalStore), seeding it with
        a snapshot of the current state if it has none yet."""
        self.journal = store
        if store.snapshot is None:
            store.install_snapshot(snapshot_state(self))

    def halt(self) -> None:
        """Simulate the Coordinator process dying.

        The in-memory state freezes (this instance is discarded), the
        journal detaches — it belongs to stable storage, i.e. the cluster
        — and the heartbeat watchers stop so the corpse cannot declare
        MSUs dead.  The caller closes the control channels.
        """
        self.dead = True
        self.recovering = False
        self.journal = None
        if self.monitor is not None:
            self.monitor.stop_all()

    def begin_recovery(self, expected, grace: float) -> None:
        """Enter the reconciliation window after replaying the journal.

        ``expected`` names the MSUs the replayed database believes are up;
        each is probed with :class:`~repro.net.messages.ReportState` as it
        reattaches.  Reconciliation runs when every expected MSU has
        reported or ``grace`` seconds elapse — whichever comes first; the
        silent ones are then declared failed.
        """
        self.recovering = True
        self._recovery_expected = set(expected)
        self._recovery_reports = {}
        self._recovery_backlog = []
        self._recovery_started = self.sim.now
        if not self._recovery_expected:
            self._complete_recovery()
            return

        def _grace_timer() -> Generator:
            yield self.sim.timeout(grace)
            if self.recovering:
                self._complete_recovery()

        self.sim.process(_grace_timer(), name="coord.recovery-grace")

    def _state_reported(self, msg: m.StateReport) -> None:
        if not self.recovering:
            return
        self._recovery_reports[msg.msu_name] = msg
        if self._recovery_expected <= set(self._recovery_reports):
            self._complete_recovery()

    def _complete_recovery(self) -> None:
        """Reconcile against the collected StateReports and resume service."""
        if not self.recovering:
            return
        from repro.recovery.reconcile import reconcile

        self.recovering = False
        reports = [
            self._recovery_reports[name]
            for name in sorted(self._recovery_reports)
        ]
        missing = sorted(self._recovery_expected - set(self._recovery_reports))
        outcome = reconcile(self, reports, missing)
        outcome.time_to_recover = self.sim.now - self._recovery_started
        outcome.wal_records = self.replayed_records
        if self.journal is not None:
            outcome.snapshot_seq = self.journal.snapshot_seq
        # Terminations and drains that raced the reconciliation window.
        backlog, self._recovery_backlog = self._recovery_backlog, []
        for msg in backlog:
            if isinstance(msg, m.StreamTerminated):
                self.terminations_handled += 1
                self._stream_terminated(msg)
            elif isinstance(msg, m.PatchDrained):
                if (
                    self.live_manager is not None
                    and self.live_manager.owns_channel(msg.channel_id)
                ):
                    self.live_manager.patch_drained(msg)
                elif self.channel_manager is not None:
                    self.channel_manager.patch_drained(msg)
            elif isinstance(msg, m.LiveRewound):
                if self.live_manager is not None:
                    self.live_manager.rewound(msg)
            elif isinstance(msg, m.ChannelDowngrade):
                if self.channel_manager is not None:
                    self.channel_manager.downgrade(msg)
        # A fresh snapshot folds the recovery-window churn out of the WAL.
        if self.journal is not None:
            self.journal.install_snapshot(snapshot_state(self))
        self.last_recovery = outcome
        self._trace(
            "recovered",
            f"msus={outcome.msus_reported}",
            f"dropped={outcome.streams_dropped} adopted={outcome.streams_adopted} "
            f"tickets={outcome.tickets_recovered}",
        )
        self._retry_queue()

    def register_group(self, group: GroupRecord, session: Session) -> None:
        """Install a scheduled group and journal its full image."""
        self.groups[group.group_id] = group
        if group.group_id not in session.active_groups:
            session.active_groups.append(group.group_id)
        self._journal("group-open", {"group": group_state(group)})

    def _enqueue(self, req: _QueuedRequest) -> None:
        """Park a request on the scheduling queue as a durable ticket."""
        req.ticket_id = self._next_ticket
        self._next_ticket += 1
        self.admission.enqueue(req)
        self._journal("ticket-add", ticket_state(req))

    # -- wiring ------------------------------------------------------------------

    def attach_msu(self, channel: ControlChannel) -> None:
        """Accept an MSU control connection; it will say hello."""
        self.sim.process(self._msu_loop(channel), name="coord.msu")

    def connect_client(self, channel: ControlChannel, client_host: str) -> None:
        """Accept a client control connection."""
        self.sim.process(self._client_loop(channel, client_host), name="coord.client")

    def attach_edge(self, channel: ControlChannel) -> None:
        """Accept an edge proxy control connection; it will say hello."""
        self.sim.process(self._edge_loop(channel), name="coord.edge")

    # -- edge side ---------------------------------------------------------------

    def _edge_loop(self, channel: ControlChannel) -> Generator:
        edge_name = None
        while True:
            msg = yield channel.recv(self.name)
            if msg is None:
                # Like MSUs: only a break on the edge's *current* channel
                # means it is gone; a halted Coordinator's own closing
                # channels are not edge failures.
                if (
                    not self.dead
                    and edge_name is not None
                    and self.placement is not None
                ):
                    view = self.placement.edges.get(edge_name)
                    if view is not None and view.channel is channel:
                        self.placement.edge_down(edge_name)
                return
            if self.placement is None:
                continue
            if isinstance(msg, m.EdgeHello):
                edge_name = msg.edge_name
                self.placement.edge_hello(msg, channel)
                self._trace("edge-up", edge_name,
                            f"budget={msg.memory_budget} "
                            f"pinned={len(msg.pinned)}")
            elif isinstance(msg, m.EdgeReport):
                self.placement.edge_report(msg)
            elif isinstance(msg, m.EdgeServeDone):
                self.placement.serve_done(msg)

    # -- MSU side -------------------------------------------------------------------

    def _msu_loop(self, channel: ControlChannel) -> Generator:
        msu_name = None
        while True:
            msg = yield channel.recv(self.name)
            if msg is None:
                # Only a break on the MSU's *current* channel is a
                # failure; a stale channel closed during rejoin (or after
                # the heartbeat monitor already declared death) is not —
                # and a halted Coordinator's closing channels are not
                # MSU failures at all.
                if (
                    not self.dead
                    and msu_name is not None
                    and self._msu_channels.get(msu_name) is channel
                ):
                    self._msu_failed(msu_name)
                return
            if isinstance(msg, m.MsuHello):
                msu_name = msg.msu_name
                self._msu_channels[msu_name] = channel
                self.db.register_msu(msu_name, list(msg.disks), msg.cache_bps)
                self._trace("msu-up", msu_name, f"disks={len(msg.disks)}")
                if self.recovering:
                    # Restart protocol: ask what it is actually serving.
                    channel.send(self.name, m.ReportState(), nbytes=m.WIRE_BYTES)
                else:
                    self._retry_queue()
            elif isinstance(msg, m.StateReport):
                self._state_reported(msg)
            elif isinstance(msg, m.Heartbeat):
                if self.monitor is not None:
                    self.monitor.beat(msg)
                if msg.msu_name in self._warm_pending:
                    self._warm_pending.discard(msg.msu_name)
                    self._warm_reconcile(msg.msu_name, msg.positions)
            elif isinstance(msg, m.CacheReport):
                self._cache_report(msg)
            elif isinstance(msg, m.PatchDrained):
                if self.recovering:
                    # Buffered: applying it before reconciliation would
                    # fight the StateReports already collected.
                    self._recovery_backlog.append(msg)
                elif (
                    self.live_manager is not None
                    and self.live_manager.owns_channel(msg.channel_id)
                ):
                    self.live_manager.patch_drained(msg)
                    self._retry_queue()  # the rewound viewer's extra
                    # unicast stream is refunded on re-merge
                elif self.channel_manager is not None:
                    self.channel_manager.patch_drained(msg)
                    self._retry_queue()  # a refunded patch frees bandwidth
            elif isinstance(msg, m.LiveRewound):
                if self.recovering:
                    self._recovery_backlog.append(msg)
                elif self.live_manager is not None:
                    self.live_manager.rewound(msg)
            elif isinstance(msg, m.ChannelDowngrade):
                if self.recovering:
                    self._recovery_backlog.append(msg)
                elif self.channel_manager is not None:
                    self.channel_manager.downgrade(msg)
            elif isinstance(msg, m.StreamTerminated):
                if self.recovering:
                    self._recovery_backlog.append(msg)
                    continue
                yield from self.machine.cpu.execute(self.TERMINATION_CPU)
                self.terminations_handled += 1
                self._trace("terminated", f"group={msg.group_id}",
                            f"stream={msg.stream_id} reason={msg.reason}")
                self._stream_terminated(msg)
                self._retry_queue()

    def _cache_report(self, msg: m.CacheReport) -> None:
        """Fold an MSU's cache statistics into its resource record."""
        state = self.db.msus.get(msg.msu_name)
        if state is None:
            return
        state.cache_hits = msg.hits
        state.cache_misses = msg.misses
        state.cache_bytes_served = msg.bytes_served
        state.cache_slots_saved = msg.slots_saved
        state.cache_pool_used = msg.pool_used
        state.cache_pool_capacity = msg.pool_capacity

    def _heartbeat_dead(self, msu_name: str) -> None:
        """The heartbeat monitor gave up on an MSU before the TCP break."""
        if self.dead:
            return
        self._msu_failed(msu_name, reason="heartbeat")

    def _msu_failed(self, msu_name: str, reason: str = "connection-lost") -> None:
        """An MSU died: take it out of scheduling, recover its streams.

        Reached from either failure detector — the broken control
        connection (§2.2) or the heartbeat monitor — and idempotent,
        since both can fire for a single failure.  Beyond the paper's
        bookkeeping it releases every per-stream allocation, detaches the
        dead groups from their sessions, hands playback groups to the
        stream migrator, and nudges replication for titles that just
        lost a copy.
        """
        self._msu_channels.pop(msu_name, None)
        state = self.db.msus.get(msu_name)
        if state is None or not state.available:
            return
        self._trace("msu-down", msu_name, reason)
        self.db.mark_msu_down(msu_name)
        if self.monitor is not None:
            self.monitor.forget_msu(msu_name)
        affected: List[GroupRecord] = []
        for group in list(self.groups.values()):
            if group.msu_name != msu_name:
                continue
            affected.append(group)
            del self.groups[group.group_id]
            session = self.sessions.lookup(group.session_id)
            if session is not None:
                session.drop_group(group.group_id)
            for alloc in group.allocations.values():
                self.admission.release(alloc)
            group.allocations.clear()
            dropped_contents = []
            for content_name, _type_name in group.recordings.values():
                # A half-made recording died with its MSU's buffers.
                self.db.contents.pop(content_name, None)
                dropped_contents.append(content_name)
            self._journal(
                "group-drop",
                {
                    "group_id": group.group_id,
                    "dropped_contents": dropped_contents,
                },
            )
        self.admission.release_msu(msu_name)
        if self.channel_manager is not None:
            # Books already zeroed wholesale; the manager force-closes
            # its channel records so the ledger stays balanced, and the
            # subscriber groups in ``affected`` resume as plain unicast
            # via the migrator below (one place_read charge each).
            self.channel_manager.msu_failed(msu_name)
        if self.live_manager is not None:
            # Same deal: every live channel on the dead MSU went dark.
            self.live_manager.msu_failed(msu_name)
        lost_titles = [
            entry.name
            for entry in self.db.contents.values()
            if not entry.components
            and any(loc[0] == msu_name for loc in entry.locations())
        ]
        if self.migrator is not None:
            self.migrator.msu_failed(msu_name, affected)
        if self.on_capacity_lost is not None and lost_titles:
            self.on_capacity_lost(msu_name, lost_titles)
        if self.recovering:
            # An expected MSU that died mid-recovery will never report.
            self._recovery_expected.discard(msu_name)
            if self._recovery_expected <= set(self._recovery_reports):
                self._complete_recovery()

    def _stream_terminated(self, msg: m.StreamTerminated) -> None:
        if self.live_manager is not None:
            if self.live_manager.handle_terminated(msg):
                return  # a live channel's own termination: fully handled
        if self.channel_manager is not None:
            if self.channel_manager.handle_terminated(msg):
                return  # a channel stream's own termination: fully handled
        group = self.groups.get(msg.group_id)
        if group is None:
            return
        self._journal(
            "stream-end",
            {
                "group_id": msg.group_id,
                "stream_id": msg.stream_id,
                "reason": msg.reason,
                "recorded_blocks": msg.recorded_blocks,
            },
        )
        alloc = group.allocations.pop(msg.stream_id, None)
        if alloc is not None:
            self.admission.release(alloc, blocks_used=msg.recorded_blocks)
        recording = group.recordings.pop(msg.stream_id, None)
        if recording is not None and msg.reason == "record-complete":
            content_name, _type_name = recording
            entry = self.db.contents.get(content_name)
            if entry is not None:  # adopted orphans may lack an entry
                entry.blocks = msg.recorded_blocks
        if not group.allocations and not group.recordings:
            self.groups.pop(msg.group_id, None)
            session = self.sessions.lookup(group.session_id)
            if session is not None:
                session.drop_group(msg.group_id)

    # -- client side -------------------------------------------------------------------

    def _client_loop(self, channel: ControlChannel, client_host: str) -> Generator:
        while True:
            msg = yield channel.recv(self.name)
            if msg is None:
                return
            yield from self.machine.cpu.execute(self.REQUEST_CPU)
            self.requests_handled += 1
            request_id = getattr(msg, "request_id", 0)
            reply = None
            try:
                if isinstance(msg, m.OpenSession):
                    reply = self._open_session(msg, client_host, channel)
                elif isinstance(msg, m.ListContents):
                    reply = m.ContentListing(tuple(self.db.listing()))
                elif isinstance(msg, m.RegisterPort):
                    reply = self._register_port(msg)
                elif isinstance(msg, m.RegisterCompositePort):
                    reply = self._register_composite(msg)
                elif isinstance(msg, m.PlayRequest):
                    reply = yield from self._play(msg, channel)
                elif isinstance(msg, m.RecordRequest):
                    reply = yield from self._record(msg, channel)
                elif isinstance(msg, m.DeleteContent):
                    reply = self._delete(msg)
                elif isinstance(msg, m.CloseSession):
                    if self.sessions.lookup(msg.session_id) is not None:
                        self._journal(
                            "session-close", {"session_id": msg.session_id}
                        )
                    self.sessions.close(msg.session_id)
                    self._session_channels.pop(msg.session_id, None)
            except Exception as err:  # admission/type errors become replies
                reply = m.RequestFailed(str(err))
            if reply is not None:
                reply = dataclasses.replace(reply, request_id=request_id)
                channel.send(self.name, reply, nbytes=m.WIRE_BYTES)

    def _open_session(
        self,
        msg: m.OpenSession,
        client_host: str,
        channel: Optional[ControlChannel] = None,
    ):
        customer = self.db.authenticate(msg.customer)
        if customer is None:
            return m.RequestFailed(f"unknown customer {msg.customer!r}")
        session = self.sessions.open(customer, client_host)
        self._journal(
            "session-open",
            {
                "session_id": session.session_id,
                "customer": customer.name,
                "client_host": client_host,
            },
        )
        if channel is not None:
            # Kept for unsolicited notices (StreamMigrated on failover).
            self._session_channels[session.session_id] = channel
        return m.SessionOpened(session.session_id)

    def notify_session(self, session_id: int, message) -> None:
        """Push an unsolicited notice down a session's control channel."""
        channel = self._session_channels.get(session_id)
        if channel is not None and channel.open:
            channel.send(self.name, message, nbytes=m.WIRE_BYTES)

    def _register_port(self, msg: m.RegisterPort):
        session = self.sessions.get(msg.session_id)
        ctype = self.types.get(msg.type_name)
        if ctype.is_composite:
            raise TypeMismatchError(
                f"type {msg.type_name!r} is composite; register components first"
            )
        port = DisplayPort(msg.port_name, msg.type_name, address=tuple(msg.address))
        session.register_port(port)
        self._journal(
            "port-add",
            {"session_id": msg.session_id, "port": port_state(port)},
        )
        return m.PortRegistered(msg.port_name)

    def _register_composite(self, msg: m.RegisterCompositePort):
        session = self.sessions.get(msg.session_id)
        ctype = self.types.get(msg.type_name)
        if not ctype.is_composite:
            raise TypeMismatchError(f"type {msg.type_name!r} is not composite")
        component_types = sorted(c.name for c in self.types.atomic_components(msg.type_name))
        port_types = sorted(
            session.port(p).type_name for p in msg.component_ports
        )
        if component_types != port_types:
            raise TypeMismatchError(
                f"composite {msg.type_name!r} needs ports of types "
                f"{component_types}, got {port_types}"
            )
        port = DisplayPort(
            msg.port_name, msg.type_name,
            component_ports=tuple(msg.component_ports),
        )
        session.register_port(port)
        self._journal(
            "port-add",
            {"session_id": msg.session_id, "port": port_state(port)},
        )
        return m.PortRegistered(msg.port_name)

    # -- play ----------------------------------------------------------------------------

    def _members_for_play(
        self, session: Session, entry: ContentEntry, port: DisplayPort
    ) -> List[Tuple[ContentEntry, DisplayPort]]:
        """Pair component contents with component ports, by type (§2.2)."""
        if not entry.components:
            return [(entry, port)]
        if not port.is_composite:
            raise TypeMismatchError(
                f"content {entry.name!r} is composite; port {port.name!r} is not"
            )
        pairs = []
        available = [session.port(p) for p in port.component_ports]
        for comp_name in entry.components:
            comp_entry = self.db.content(comp_name)
            match = next(
                (p for p in available if p.type_name == comp_entry.type_name), None
            )
            if match is None:
                raise TypeMismatchError(
                    f"no component port of type {comp_entry.type_name!r}"
                )
            available.remove(match)
            pairs.append((comp_entry, match))
        return pairs

    def _maybe_pin_prefix(self, entry: ContentEntry) -> None:
        """Ask a hot title's home MSU to pin its prefix (extension).

        Fired once per title, the first time its demand crosses the hot
        threshold; a no-op for MSUs that advertised no cache bandwidth.
        """
        if entry.prefix_pinned or not entry.msu_name:
            return
        if entry.demand < self.prefix_hot_requests:
            return
        state = self.db.msus.get(entry.msu_name)
        if state is None or state.cache_capacity <= 0:
            return
        msu_channel = self._msu_channels.get(entry.msu_name)
        if msu_channel is None:
            return
        entry.prefix_pinned = True
        self._journal("prefix-pin", {"name": entry.name})
        msu_channel.send(
            self.name,
            m.PinPrefix(entry.name, entry.disk_id, self.prefix_pin_pages),
            nbytes=m.WIRE_BYTES,
        )
        self._trace("prefix-pin", entry.name,
                    f"msu={entry.msu_name} pages={self.prefix_pin_pages}")

    def _play(
        self, msg: m.PlayRequest, channel: ControlChannel, fresh: bool = True
    ) -> Generator:
        if self.recovering:
            # The books are mid-reconciliation; park until they settle.
            self._enqueue(_QueuedRequest("play", msg.session_id, msg, channel))
            return None
        if self.shards is not None:
            shard = self.shards.shard_for(msg.content_name)
            if self.shards.is_partitioned(shard):
                # The owning shard is unreachable; nobody else may spend
                # its escrow, so the request parks until the heal.
                self._enqueue(
                    _QueuedRequest("play", msg.session_id, msg, channel)
                )
                self._trace(
                    "queued", msg.content_name, f"shard {shard} partitioned"
                )
                return None
            delay = self.shards.admission_delay(shard, self.sim.now)
            if delay > 0.0:
                yield self.sim.timeout(delay)
        session = self.sessions.get(msg.session_id)
        if fresh:  # retries of a queued request are not new demand
            entry = self.db.note_request(msg.content_name)
            if self.placement is not None:
                self.placement.note_request(msg.content_name)
        else:
            entry = self.db.content(msg.content_name)
        self._maybe_pin_prefix(entry)
        port = session.port(msg.port_name)
        if port.type_name != entry.type_name:
            raise TypeMismatchError(
                f"content is {entry.type_name!r} but port is {port.type_name!r}"
            )
        members = self._members_for_play(session, entry, port)
        if self.live_manager is not None and not entry.components:
            live_rec = self.live_manager.channel_for(entry.name)
            if live_rec is not None:
                # Tuning into a live channel: subscribe to its fan-out
                # (no disk slot — the broadcast is already on the air).
                reply = yield from self.live_manager.tune(
                    msg, channel, session, entry, port, live_rec
                )
                return reply
        if self.channel_manager is not None and self.channel_manager.handles(entry):
            # Multicast delivery: batch onto a new channel or patch onto
            # an in-flight one.  Replies flow exactly like the unicast
            # path's — immediately for patch joins, later (through the
            # manager) for batched requests.
            reply = yield from self.channel_manager.request_play(
                msg, channel, session, entry, port
            )
            return reply
        # Try to admit every member; roll back on partial success.  Members
        # of one group pin to one MSU so VCR commands stay in sync (§2.2).
        allocations: List[Tuple[ContentEntry, DisplayPort, Allocation]] = []
        msu_pin: Optional[str] = None
        for comp_entry, comp_port in members:
            ctype = self.types.get(comp_entry.type_name)
            alloc = self.admission.place_read(comp_entry, ctype, msu_pin=msu_pin)
            if alloc is None:
                for _, _, granted in allocations:
                    self.admission.release(granted)
                self._enqueue(
                    _QueuedRequest(
                        "play", msg.session_id, msg, channel,
                        priority=play_priority(self.db, entry),
                    )
                )
                self._trace("queued", msg.content_name, "no resources")
                return None  # queued: the client hears nothing until placed
            msu_pin = alloc.msu_name
            allocations.append((comp_entry, comp_port, alloc))
        # Edge leg (zero-disk-cost lane): a single-member play whose
        # client's assigned edge pins this title's prefix (or holds a
        # fresh interval window) starts from the edge while the MSU tail
        # stream begins at the splice page.  The tail keeps its full slot
        # — the win is client-side (instant start) and, for multicast
        # patches, MSU-side; here the splice mostly proves the lane.
        edge_plan: Optional[Tuple[str, int, str, Allocation]] = None
        if (
            self.placement is not None
            and len(members) == 1
            and not entry.components
        ):
            ctype = self.types.get(entry.type_name)
            plan = self.placement.plan_prefix(entry, ctype, session.client_host)
            if plan is not None:
                edge_alloc = self.admission.place_edge(entry, ctype, plan[0])
                if edge_alloc is not None:
                    edge_plan = plan + (edge_alloc,)
        self.db.note_played(entry.name)
        group = GroupRecord(self._next_group, msg.session_id, allocations[0][2].msu_name)
        self._next_group += 1
        msu_channel = self._msu_channels[group.msu_name]
        size = len(allocations)
        for comp_entry, comp_port, alloc in allocations:
            stream_id = self._next_stream
            self._next_stream += 1
            group.allocations[stream_id] = alloc
            group.streams[stream_id] = StreamMeta(
                comp_entry.name, comp_entry.type_name, tuple(comp_port.address)
            )
            ctype = self.types.get(comp_entry.type_name)
            yield from self.machine.cpu.execute(self.SCHEDULE_CPU)
            msu_channel.send(
                self.name,
                m.ScheduleRead(
                    group.group_id, stream_id, comp_entry.name, alloc.disk_id,
                    ctype.protocol, ctype.bandwidth_rate, ctype.variable,
                    tuple(comp_port.address), session.client_host, group_size=size,
                    cached=alloc.cache_covered,
                    start_page=edge_plan[1] if edge_plan is not None else 0,
                ),
                nbytes=m.WIRE_BYTES,
            )
        self.register_group(group, session)
        if edge_plan is not None:
            # The edge serves pages [0, splice) under the tail stream's
            # ids; the serve is registered outside group.allocations so
            # group teardown and the books conservation audit never see
            # an MSU-shaped charge for it.
            edge_name, splice, kind, edge_alloc = edge_plan
            ctype = self.types.get(entry.type_name)
            self.placement.begin_serve(
                edge_name, group.group_id, stream_id, entry,
                0, splice, ctype.bandwidth_rate, kind,
                tuple(allocations[0][1].address), edge_alloc,
            )
        self._trace("scheduled", msg.content_name,
                    f"group={group.group_id} msu={group.msu_name}")
        return m.StreamScheduled(group.group_id, group.msu_name)

    # -- record --------------------------------------------------------------------------

    def _record(self, msg: m.RecordRequest, channel: ControlChannel) -> Generator:
        if self.recovering:
            self._enqueue(_QueuedRequest("record", msg.session_id, msg, channel))
            return None
        if self.shards is not None:
            shard = self.shards.shard_for(msg.content_name)
            if self.shards.is_partitioned(shard):
                self._enqueue(
                    _QueuedRequest("record", msg.session_id, msg, channel)
                )
                return None
            delay = self.shards.admission_delay(shard, self.sim.now)
            if delay > 0.0:
                yield self.sim.timeout(delay)
        session = self.sessions.get(msg.session_id)
        ctype = self.types.get(msg.type_name)
        port = session.port(msg.port_name)
        if port.type_name != msg.type_name:
            raise TypeMismatchError(
                f"recording type {msg.type_name!r} but port is {port.type_name!r}"
            )
        if msg.content_name in self.db.contents:
            raise TypeMismatchError(f"content {msg.content_name!r} already exists")
        if ctype.is_composite:
            comp_types = self.types.atomic_components(msg.type_name)
            ports = session.atomic_ports_for(msg.port_name, self.types)
            members = []
            for comp in comp_types:
                match = next((p for p in ports if p.type_name == comp.name), None)
                if match is None:
                    raise TypeMismatchError(f"no component port of type {comp.name!r}")
                ports.remove(match)
                members.append((f"{msg.content_name}.{comp.name}", comp, match))
        else:
            members = [(msg.content_name, ctype, port)]
        # Place all members on one MSU (stream groups stay together, §2.2).
        placed: List[Tuple[str, ContentType, DisplayPort, Allocation]] = []
        msu_pin: Optional[str] = None
        for content_name, comp_type, comp_port in members:
            alloc = self.admission.place_record(
                comp_type, msg.estimate_seconds, msu_name=msu_pin
            )
            if alloc is None:
                for _, _, _, granted in placed:
                    self.admission.release(granted)
                self._enqueue(
                    _QueuedRequest("record", msg.session_id, msg, channel)
                )
                return None
            msu_pin = alloc.msu_name
            placed.append((content_name, comp_type, comp_port, alloc))
        group = GroupRecord(self._next_group, msg.session_id, msu_pin)
        self._next_group += 1
        msu_channel = self._msu_channels[group.msu_name]
        size = len(placed)
        component_names = []
        for content_name, comp_type, comp_port, alloc in placed:
            stream_id = self._next_stream
            self._next_stream += 1
            group.allocations[stream_id] = alloc
            group.recordings[stream_id] = (content_name, comp_type.name)
            component_names.append(content_name)
            self.db.add_content(
                ContentEntry(
                    content_name, comp_type.name, group.msu_name, alloc.disk_id
                )
            )
            yield from self.machine.cpu.execute(self.SCHEDULE_CPU)
            msu_channel.send(
                self.name,
                m.ScheduleRecord(
                    group.group_id, stream_id, content_name, alloc.disk_id,
                    comp_type.protocol, comp_type.bandwidth_rate, comp_type.variable,
                    tuple(comp_port.address) if comp_port.address else ("", 0),
                    alloc.reserved_blocks, session.client_host, group_size=size,
                ),
                nbytes=m.WIRE_BYTES,
            )
        if ctype.is_composite:
            self.db.add_content(
                ContentEntry(
                    msg.content_name, msg.type_name, group.msu_name,
                    components=tuple(component_names),
                )
            )
        self.register_group(group, session)
        return m.StreamScheduled(group.group_id, group.msu_name)

    # -- delete ---------------------------------------------------------------------------

    def _delete(self, msg: m.DeleteContent):
        session = self.sessions.get(msg.session_id)
        if not session.customer.admin:
            return m.RequestFailed("delete requires administrative permission")
        entry = self.db.remove_content(msg.content_name)
        for comp_name in entry.components:
            comp = self.db.remove_content(comp_name)
            self._delete_on_msu(comp)
        if entry.msu_name:
            self._delete_on_msu(entry)
        return m.Deleted(msg.content_name)

    def _delete_on_msu(self, entry: ContentEntry) -> None:
        channel = self._msu_channels.get(entry.msu_name)
        if channel is not None:
            channel.send(
                self.name, m.DeleteFile(entry.name, entry.disk_id), nbytes=m.WIRE_BYTES
            )
            self.db.adjust_free_blocks(entry.msu_name, entry.disk_id, entry.blocks)

    # -- queued-request retry --------------------------------------------------------------

    def queue_resume(self, ticket) -> None:
        """Park an unplaceable resume ticket at the head of the queue."""
        self._enqueue(
            _QueuedRequest(
                "resume", ticket.session_id, ticket, None,
                priority=PRIORITY_RESUME,
            )
        )

    def _retry_queue(self) -> None:
        """Resources changed: re-attempt parked requests in queue order.

        The queue is kept priority-sorted by enqueue(); FIFO within a
        band, resume tickets first.  Suppressed while recovering — the
        books are not trustworthy until reconciliation finishes.
        """
        if self.dead or self.recovering:
            return
        if not self.admission.queue:
            return
        pending = list(self.admission.queue)
        self.admission.queue.clear()
        for req in pending:
            self.sim.process(self._retry_one(req), name="coord.retry")

    def _retry_one(self, req: _QueuedRequest) -> Generator:
        if self.dead:
            return
        if req.ticket_id:
            # At-most-once: the durable ticket is consumed up front; a
            # failed placement re-enqueues under a fresh ticket id.
            self._journal("ticket-remove", {"ticket_id": req.ticket_id})
        if req.kind == "resume":
            if self.migrator is not None:
                yield from self.migrator.migrate(req.message)
            return
        try:
            if req.kind == "play":
                reply = yield from self._play(req.message, req.channel, fresh=False)
            else:
                reply = yield from self._record(req.message, req.channel)
        except Exception as err:
            reply = m.RequestFailed(str(err))
        if reply is not None and req.channel is not None:
            request_id = getattr(req.message, "request_id", 0)
            reply = dataclasses.replace(reply, request_id=request_id)
            req.channel.send(self.name, reply, nbytes=m.WIRE_BYTES)

    # -- administrative registration (content pre-loaded on MSUs) ---------------------------

    def admin_add_content(
        self,
        name: str,
        type_name: str,
        msu_name: str,
        disk_id: str,
        blocks: int = 0,
        duration_us: int = 0,
        components: Tuple[str, ...] = (),
    ) -> ContentEntry:
        """Register pre-loaded content in the table of contents."""
        entry = ContentEntry(
            name, type_name, msu_name, disk_id, blocks, duration_us, components
        )
        self.db.add_content(entry)
        return entry
