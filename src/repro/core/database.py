"""The Coordinator's administrative database (§2.2).

"The database contains information about customers, content stored on
Calliope, and resources owned by the system.  The Coordinator uses the
database to tell what MSUs are available, how many disks each one has,
and how much disk space remains unused."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import UnknownContentError

__all__ = ["Customer", "ContentEntry", "DiskState", "MsuState", "AdminDatabase"]


@dataclass
class Customer:
    """One authenticated user; ``admin`` gates destructive operations."""

    name: str
    admin: bool = False


@dataclass
class ContentEntry:
    """One item in the table of contents."""

    name: str
    type_name: str
    msu_name: str = ""
    disk_id: str = ""
    blocks: int = 0
    duration_us: int = 0
    #: Component content names for composite items (empty for atomic).
    components: Tuple[str, ...] = ()
    #: Additional (msu, disk) copies of this item (§2.3.3: "we can make
    #: copies of popular content on several disks").
    replicas: Tuple[Tuple[str, str], ...] = ()
    #: Cumulative play requests (drives replication decisions).
    play_count: int = 0

    def locations(self) -> List[Tuple[str, str]]:
        """Every (msu, disk) holding a copy, primary first."""
        primary = [(self.msu_name, self.disk_id)] if self.msu_name else []
        return primary + [loc for loc in self.replicas if loc not in primary]

    def add_replica(self, msu_name: str, disk_id: str) -> None:
        """Record a new copy's location."""
        location = (msu_name, disk_id)
        if location not in self.locations():
            self.replicas = self.replicas + (location,)


@dataclass
class DiskState:
    """Coordinator-side accounting for one MSU disk."""

    msu_name: str
    disk_id: str
    free_blocks: int
    #: Deliverable bytes/sec this disk can sustain under load; default from
    #: Table 1's combined two-disk figure (2.4 MB/s) with headroom shaved.
    bandwidth_capacity: float = 2.3e6
    bandwidth_used: float = 0.0

    def bandwidth_free(self) -> float:
        return self.bandwidth_capacity - self.bandwidth_used


@dataclass
class MsuState:
    """Coordinator-side accounting for one MSU."""

    name: str
    available: bool = True
    disks: Dict[str, DiskState] = field(default_factory=dict)
    #: Aggregate delivery-path capacity (FDDI/host path), bytes/sec; the
    #: MSU measured 4.7 MB/s combined in Table 1, ~90 % usable (§3.2.1).
    delivery_capacity: float = 4.2e6
    delivery_used: float = 0.0
    active_streams: int = 0

    def delivery_free(self) -> float:
        return self.delivery_capacity - self.delivery_used


class AdminDatabase:
    """Customers, contents and resources."""

    def __init__(self):
        self.customers: Dict[str, Customer] = {}
        self.contents: Dict[str, ContentEntry] = {}
        self.msus: Dict[str, MsuState] = {}

    # -- customers -----------------------------------------------------------

    def add_customer(self, name: str, admin: bool = False) -> Customer:
        customer = Customer(name, admin)
        self.customers[name] = customer
        return customer

    def authenticate(self, name: str) -> Optional[Customer]:
        return self.customers.get(name)

    # -- contents ------------------------------------------------------------

    def add_content(self, entry: ContentEntry) -> None:
        self.contents[entry.name] = entry

    def content(self, name: str) -> ContentEntry:
        try:
            return self.contents[name]
        except KeyError:
            raise UnknownContentError(f"no content named {name!r}") from None

    def remove_content(self, name: str) -> ContentEntry:
        entry = self.content(name)
        del self.contents[name]
        return entry

    def listing(self) -> List[Tuple[str, str]]:
        """(name, type) pairs for the table of contents, name-sorted."""
        return [(n, self.contents[n].type_name) for n in sorted(self.contents)]

    # -- resources ------------------------------------------------------------

    def register_msu(self, name: str, disks: List[Tuple[str, int]]) -> MsuState:
        """Add or re-activate an MSU (MsuHello handling, §2.2)."""
        state = self.msus.get(name)
        if state is None:
            state = MsuState(name)
            self.msus[name] = state
        state.available = True
        for disk_id, free_blocks in disks:
            disk = state.disks.get(disk_id)
            if disk is None:
                state.disks[disk_id] = DiskState(name, disk_id, free_blocks)
            else:
                disk.free_blocks = free_blocks
        return state

    def mark_msu_down(self, name: str) -> None:
        """Take a failed MSU out of the scheduling database (§2.2)."""
        if name in self.msus:
            self.msus[name].available = False

    def available_msus(self) -> List[MsuState]:
        return [s for s in self.msus.values() if s.available]

    def disk(self, msu_name: str, disk_id: str) -> DiskState:
        return self.msus[msu_name].disks[disk_id]
