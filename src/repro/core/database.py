"""The Coordinator's administrative database (§2.2).

"The database contains information about customers, content stored on
Calliope, and resources owned by the system.  The Coordinator uses the
database to tell what MSUs are available, how many disks each one has,
and how much disk space remains unused."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ContentInUseError, UnknownContentError

__all__ = [
    "Customer",
    "ContentEntry",
    "DiskState",
    "MsuState",
    "AdminDatabase",
    "entry_state",
    "entry_from_state",
]


@dataclass
class Customer:
    """One authenticated user; ``admin`` gates destructive operations."""

    name: str
    admin: bool = False


@dataclass
class ContentEntry:
    """One item in the table of contents."""

    name: str
    type_name: str
    msu_name: str = ""
    disk_id: str = ""
    blocks: int = 0
    duration_us: int = 0
    #: Component content names for composite items (empty for atomic).
    components: Tuple[str, ...] = ()
    #: Additional (msu, disk) copies of this item (§2.3.3: "we can make
    #: copies of popular content on several disks").
    replicas: Tuple[Tuple[str, str], ...] = ()
    #: Cumulative play requests (drives replication decisions).
    play_count: int = 0
    #: Cumulative play *demand* — every request, including ones that were
    #: queued or blocked.  Drives prefix pinning and replication: unmet
    #: demand is precisely what those policies should relieve.
    request_count: int = 0
    #: Whether the Coordinator already asked the home MSU to pin this
    #: title's prefix in its page cache.
    prefix_pinned: bool = False
    #: (msu, disk) -> currently playing stream count.  A location with an
    #: active stream has a *leader* whose pages the interval cache can
    #: retain for a trailing viewer (cache-covered admission).
    active: Dict[Tuple[str, str], int] = field(default_factory=dict)

    @property
    def demand(self) -> int:
        """Popularity signal: admitted plays or raw requests, whichever
        is larger (requests include demand that admission turned away)."""
        return max(self.play_count, self.request_count)

    def active_at(self, location: Tuple[str, str]) -> int:
        """Streams currently playing this title from ``location``."""
        return self.active.get(location, 0)

    def note_active(self, location: Tuple[str, str], delta: int) -> None:
        """Adjust the active-stream count at one location."""
        count = self.active.get(location, 0) + delta
        if count > 0:
            self.active[location] = count
        else:
            self.active.pop(location, None)

    def locations(self) -> List[Tuple[str, str]]:
        """Every (msu, disk) holding a copy, primary first."""
        primary = [(self.msu_name, self.disk_id)] if self.msu_name else []
        return primary + [loc for loc in self.replicas if loc not in primary]

    def add_replica(self, msu_name: str, disk_id: str) -> None:
        """Record a new copy's location."""
        location = (msu_name, disk_id)
        if location not in self.locations():
            self.replicas = self.replicas + (location,)

    def active_total(self) -> int:
        """Streams currently reading this title, across every location."""
        return sum(self.active.values())


def entry_state(entry: ContentEntry) -> dict:
    """JSON-safe image of one content entry (journal/snapshot format)."""
    return {
        "name": entry.name,
        "type_name": entry.type_name,
        "msu_name": entry.msu_name,
        "disk_id": entry.disk_id,
        "blocks": entry.blocks,
        "duration_us": entry.duration_us,
        "components": list(entry.components),
        "replicas": [list(loc) for loc in entry.replicas],
        "play_count": entry.play_count,
        "request_count": entry.request_count,
        "prefix_pinned": entry.prefix_pinned,
        "active": [[list(loc), count] for loc, count in sorted(entry.active.items())],
    }


def entry_from_state(state: dict) -> ContentEntry:
    """Rebuild a content entry from its :func:`entry_state` image."""
    return ContentEntry(
        name=state["name"],
        type_name=state["type_name"],
        msu_name=state.get("msu_name", ""),
        disk_id=state.get("disk_id", ""),
        blocks=state.get("blocks", 0),
        duration_us=state.get("duration_us", 0),
        components=tuple(state.get("components", ())),
        replicas=tuple(tuple(loc) for loc in state.get("replicas", ())),
        play_count=state.get("play_count", 0),
        request_count=state.get("request_count", 0),
        prefix_pinned=state.get("prefix_pinned", False),
        active={
            tuple(loc): count for loc, count in state.get("active", ())
        },
    )


@dataclass
class DiskState:
    """Coordinator-side accounting for one MSU disk."""

    msu_name: str
    disk_id: str
    free_blocks: int
    #: Deliverable bytes/sec this disk can sustain under load; default from
    #: Table 1's combined two-disk figure (2.4 MB/s) with headroom shaved.
    bandwidth_capacity: float = 2.3e6
    bandwidth_used: float = 0.0

    def bandwidth_free(self) -> float:
        return self.bandwidth_capacity - self.bandwidth_used


@dataclass
class MsuState:
    """Coordinator-side accounting for one MSU."""

    name: str
    available: bool = True
    disks: Dict[str, DiskState] = field(default_factory=dict)
    #: Aggregate delivery-path capacity (FDDI/host path), bytes/sec; the
    #: MSU measured 4.7 MB/s combined in Table 1, ~90 % usable (§3.2.1).
    delivery_capacity: float = 4.2e6
    delivery_used: float = 0.0
    active_streams: int = 0
    #: Bytes/sec the MSU's page cache can serve (0 = no cache installed);
    #: advertised in MsuHello, consumed by cache-covered admissions.
    cache_capacity: float = 0.0
    cache_used: float = 0.0
    #: Latest CacheReport figures (zeros until the first report lands).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bytes_served: int = 0
    cache_slots_saved: int = 0
    cache_pool_used: int = 0
    cache_pool_capacity: int = 0

    def delivery_free(self) -> float:
        return self.delivery_capacity - self.delivery_used

    def cache_free(self) -> float:
        return self.cache_capacity - self.cache_used


class AdminDatabase:
    """Customers, contents and resources."""

    def __init__(self):
        self.customers: Dict[str, Customer] = {}
        self.contents: Dict[str, ContentEntry] = {}
        self.msus: Dict[str, MsuState] = {}
        #: Recovery hook: ``callback(kind, payload)`` fired after every
        #: database mutation so the Coordinator's write-ahead log can
        #: replay them on restart (repro.recovery).  None disables it.
        self.on_journal: Optional[Callable[[str, dict], None]] = None

    def _journal(self, kind: str, payload: dict) -> None:
        if self.on_journal is not None:
            self.on_journal(kind, payload)

    # -- customers -----------------------------------------------------------

    def add_customer(self, name: str, admin: bool = False) -> Customer:
        customer = Customer(name, admin)
        self.customers[name] = customer
        self._journal("customer-add", {"name": name, "admin": admin})
        return customer

    def authenticate(self, name: str) -> Optional[Customer]:
        return self.customers.get(name)

    # -- contents ------------------------------------------------------------

    def add_content(self, entry: ContentEntry) -> None:
        self.contents[entry.name] = entry
        self._journal("content-add", {"entry": entry_state(entry)})

    def content(self, name: str) -> ContentEntry:
        try:
            return self.contents[name]
        except KeyError:
            raise UnknownContentError(f"no content named {name!r}") from None

    def remove_content(self, name: str) -> ContentEntry:
        entry = self.content(name)
        active = entry.active_total()
        if active:
            raise ContentInUseError(
                f"content {name!r} has {active} active reader(s)"
            )
        del self.contents[name]
        self._journal("content-remove", {"name": name})
        return entry

    def add_replica(self, name: str, msu_name: str, disk_id: str) -> ContentEntry:
        """Record a new copy of ``name`` at (msu, disk), journaled."""
        entry = self.content(name)
        entry.add_replica(msu_name, disk_id)
        self._journal(
            "content-replica",
            {"name": name, "msu_name": msu_name, "disk_id": disk_id},
        )
        return entry

    def listing(self) -> List[Tuple[str, str]]:
        """(name, type) pairs for the table of contents, name-sorted."""
        return [(n, self.contents[n].type_name) for n in sorted(self.contents)]

    def note_request(self, name: str) -> ContentEntry:
        """Count one play request against a title (admitted or not)."""
        entry = self.content(name)
        entry.request_count += 1
        self._journal("note-request", {"name": name})
        return entry

    def note_played(self, name: str, count: int = 1) -> ContentEntry:
        """Count ``count`` admitted plays against a title, journaled."""
        entry = self.content(name)
        entry.play_count += count
        self._journal("content-played", {"name": name, "count": count})
        return entry

    def top_requested(self, n: int = 10) -> List[ContentEntry]:
        """The ``n`` most-demanded atomic titles, hottest first."""
        entries = [
            e for e in self.contents.values() if not e.components and e.msu_name
        ]
        entries.sort(key=lambda e: e.demand, reverse=True)
        return entries[:n]

    # -- resources ------------------------------------------------------------

    def register_msu(
        self, name: str, disks: List[Tuple[str, int]], cache_bps: float = 0.0
    ) -> MsuState:
        """Add or re-activate an MSU (MsuHello handling, §2.2)."""
        state = self.msus.get(name)
        if state is None:
            state = MsuState(name)
            self.msus[name] = state
        state.available = True
        state.cache_capacity = cache_bps
        state.cache_used = 0.0
        for disk_id, free_blocks in disks:
            disk = state.disks.get(disk_id)
            if disk is None:
                state.disks[disk_id] = DiskState(name, disk_id, free_blocks)
            else:
                disk.free_blocks = free_blocks
        self._journal(
            "msu-register",
            {
                "name": name,
                "disks": [[disk_id, free] for disk_id, free in disks],
                "cache_bps": cache_bps,
            },
        )
        return state

    def mark_msu_down(self, name: str) -> None:
        """Take a failed MSU out of the scheduling database (§2.2)."""
        if name in self.msus:
            self.msus[name].available = False
        self.clear_active(name)
        # Its page cache died with it: any prefix pinned there is gone and
        # must be re-requested once the title runs hot again.
        for entry in self.contents.values():
            if entry.prefix_pinned and entry.msu_name == name:
                entry.prefix_pinned = False
        self._journal("msu-down", {"name": name})

    def clear_active(self, msu_name: str) -> None:
        """Forget active-stream counts on one MSU (its streams died)."""
        for entry in self.contents.values():
            for location in list(entry.active):
                if location[0] == msu_name:
                    del entry.active[location]

    def available_msus(self) -> List[MsuState]:
        return [s for s in self.msus.values() if s.available]

    def disk(self, msu_name: str, disk_id: str) -> DiskState:
        return self.msus[msu_name].disks[disk_id]

    def adjust_free_blocks(self, msu_name: str, disk_id: str, delta: int) -> None:
        """Credit/debit a disk's free-block count, journaled.

        Used outside the admission charge path: replication copies consume
        space, content deletion returns it.
        """
        state = self.msus.get(msu_name)
        disk = state.disks.get(disk_id) if state is not None else None
        if disk is not None:
            disk.free_blocks = max(0, disk.free_blocks + delta)
        self._journal(
            "disk-adjust",
            {"msu_name": msu_name, "disk_id": disk_id, "delta": delta},
        )
