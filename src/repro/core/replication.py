"""Popularity-driven content replication (extension of §2.3.3).

The paper keeps each file on a single disk and notes the consequence:
"If each of the N items were on separate disks, only 1/N of the system's
customers can access any one item of content.  In the non-striped case,
we can make copies of popular content on several disks, but we must
anticipate usage trends in order to choose the content to copy.  We must
also use additional disk space to get additional disk bandwidth."

This module implements exactly that administrative mechanism: it watches
the Coordinator's per-content play counts, picks hot items whose home
disks run close to their bandwidth caps, and copies them to the disk with
the most free bandwidth.  Placement (``AdmissionControl.place_read``)
then load-balances across replicas automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.cluster import CalliopeCluster
from repro.core.database import ContentEntry, DiskState
from repro.errors import CalliopeError, OutOfSpaceError

__all__ = ["ReplicationManager", "ReplicationDecision"]


@dataclass(frozen=True)
class ReplicationDecision:
    """One copy the manager made (for logs and tests)."""

    content_name: str
    source: Tuple[str, str]
    target: Tuple[str, str]


class ReplicationManager:
    """The administrator's usage-trend watcher."""

    def __init__(
        self,
        cluster: CalliopeCluster,
        hot_play_count: int = 5,
        disk_load_threshold: float = 0.7,
        max_replicas: int = 2,
        restore_copies: int = 2,
    ):
        self.cluster = cluster
        self.hot_play_count = hot_play_count
        self.disk_load_threshold = disk_load_threshold
        self.max_replicas = max_replicas
        #: Live copies restore_replicas() re-establishes after a failure.
        self.restore_copies = restore_copies
        self.decisions: List[ReplicationDecision] = []

    # -- policy ----------------------------------------------------------

    def _live_locations(self, entry: ContentEntry) -> List[Tuple[str, str]]:
        """The entry's copies hosted on MSUs currently marked up."""
        db = self.cluster.coordinator.db
        live = []
        for msu_name, disk_id in entry.locations():
            state = db.msus.get(msu_name)
            if state is not None and state.available:
                live.append((msu_name, disk_id))
        return live

    def _hot_entries(self) -> List[ContentEntry]:
        # Demand counts every request, including queued/blocked ones: the
        # titles admission turned away are exactly the ones replication
        # (and prefix pinning) should relieve.  Only copies on live MSUs
        # count toward max_replicas — a dead copy serves nobody and must
        # not block re-replication.
        db = self.cluster.coordinator.db
        hot = [
            entry
            for entry in db.contents.values()
            if not entry.components
            and entry.msu_name
            and entry.demand >= self.hot_play_count
            and len(self._live_locations(entry)) <= self.max_replicas
        ]
        return sorted(hot, key=lambda e: e.demand, reverse=True)

    def _home_disk_loaded(self, entry: ContentEntry) -> bool:
        db = self.cluster.coordinator.db
        loads = []
        for msu_name, disk_id in entry.locations():
            state = db.msus.get(msu_name)
            if state is None:
                continue
            disk = state.disks.get(disk_id)
            if disk is not None:
                loads.append(disk.bandwidth_used / disk.bandwidth_capacity)
        return bool(loads) and min(loads) >= self.disk_load_threshold

    def _pick_target(self, entry: ContentEntry) -> Optional[DiskState]:
        """The disk with the most free bandwidth that lacks a copy.

        Machines without any copy rank ahead of a second disk on a
        machine that already has one: a replica on a fresh MSU adds
        failure independence as well as bandwidth.
        """
        db = self.cluster.coordinator.db
        taken = set(entry.locations())
        copy_msus = {msu_name for msu_name, _disk_id in taken}
        best: Optional[DiskState] = None
        best_key = None
        for state in db.available_msus():
            for disk in state.disks.values():
                if (state.name, disk.disk_id) in taken:
                    continue
                if disk.free_blocks < entry.blocks:
                    continue
                key = (state.name in copy_msus, -disk.bandwidth_free())
                if best is None or key < best_key:
                    best, best_key = disk, key
        return best

    # -- mechanism ----------------------------------------------------------

    def replicate(self, content_name: str, msu_name: str, disk_id: str
                  ) -> ReplicationDecision:
        """Copy one content item to a specific disk (admin path)."""
        db = self.cluster.coordinator.db
        entry = db.content(content_name)
        if (msu_name, disk_id) in entry.locations():
            raise CalliopeError(f"{content_name!r} already has a copy on {disk_id}")
        # Copy from a live location when one exists (the primary may be
        # the machine that just failed); fall back to the primary's disks,
        # which survive a crash intact.
        live = self._live_locations(entry)
        source_loc = live[0] if live else (entry.msu_name, entry.disk_id)
        source_msu = self.cluster.msu_named(source_loc[0])
        target_msu = self.cluster.msu_named(msu_name)
        source_fs = source_msu.filesystems[source_loc[1]]
        target_fs = target_msu.filesystems[disk_id]
        source = source_fs.open(content_name)
        copy = target_fs.create(content_name, source.content_type)
        for index in range(source.nblocks):
            target_fs.append_block_sync(copy, source_fs.read_block_sync(source, index))
        copy.root = source.root
        copy.duration_us = source.duration_us
        copy.fast_forward = source.fast_forward
        copy.fast_backward = source.fast_backward
        db.add_replica(content_name, msu_name, disk_id)
        db.adjust_free_blocks(msu_name, disk_id, -copy.nblocks)
        decision = ReplicationDecision(
            content_name, source_loc, (msu_name, disk_id)
        )
        self.decisions.append(decision)
        return decision

    def rebalance(self) -> List[ReplicationDecision]:
        """One policy pass: copy hot items off their loaded home disks."""
        made = []
        for entry in self._hot_entries():
            if not self._home_disk_loaded(entry):
                continue
            target = self._pick_target(entry)
            if target is None:
                continue
            try:
                made.append(
                    self.replicate(entry.name, target.msu_name, target.disk_id)
                )
            except (OutOfSpaceError, CalliopeError):
                continue
        return made

    # -- failure response (failover extension) ------------------------------

    def restore_replicas(self, content_names: List[str]) -> List[ReplicationDecision]:
        """Re-establish replica counts for titles that just lost a copy.

        Called (directly or through :meth:`watch`) after an MSU failure
        with the titles that had a copy on the dead machine; each one
        below ``restore_copies`` live copies is copied from a surviving
        location to the best disk without one.
        """
        db = self.cluster.coordinator.db
        made = []
        for name in content_names:
            entry = db.contents.get(name)
            if entry is None or entry.components:
                continue
            live = self._live_locations(entry)
            if not live or len(live) >= self.restore_copies:
                continue
            target = self._pick_target(entry)
            if target is None:
                continue
            try:
                made.append(
                    self.replicate(name, target.msu_name, target.disk_id)
                )
            except (OutOfSpaceError, CalliopeError):
                continue
        return made

    def watch(self, coordinator=None) -> None:
        """Arm the Coordinator's capacity-lost hook to restore replicas."""
        coord = coordinator if coordinator is not None else self.cluster.coordinator

        def _on_capacity_lost(_msu_name: str, lost_titles: List[str]) -> None:
            self.restore_replicas(lost_titles)

        coord.on_capacity_lost = _on_capacity_lost
