"""The Multimedia Storage Unit: hardware, file systems, processes (§2.3).

An MSU is one PC with disks, an interface to the intra-server network and
an interface to the high-speed delivery network.  It runs a disk process
per disk, a network process (IOP) for the delivery interface, and a
central control process handling RPCs from the Coordinator and VCR
commands from clients.

The MSU also exposes the *administrative interface* of §2.3.1 (the
``admin_*`` methods): pre-loading content and installing the offline
fast-forward / fast-backward companion files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Set

from repro.cache.manager import CacheConfig, MsuPageCache
from repro.core.msu.disk_process import DiskProcess
from repro.core.msu.network_process import NetworkProcess
from repro.core.msu.streams import (
    ChannelStream,
    PatchStream,
    PlayStream,
    RateVariant,
    RecordStream,
    StreamState,
)
from repro.core.msu.vcr import seek_stream, switch_variant
from repro.errors import StorageError
from repro.hardware.machine import Machine
from repro.hardware.params import FDDI, MachineParams
from repro.net import messages as m
from repro.net.network import ControlChannel, Host, Network
from repro.net.protocols import ProtocolRegistry, default_registry
from repro.sim import Simulator
from repro.storage.filesystem import FileHandle, MsuFileSystem
from repro.storage.ibtree import IBTreeConfig, IBTreeWriter, PacketRecord
from repro.storage.layout import SpanVolume, StripedVolume
from repro.storage.raw_disk import RawDisk

__all__ = ["Msu", "GroupState", "ChannelState"]


@dataclass
class GroupState:
    """One stream group: members sharing VCR control (§2.2)."""

    group_id: int
    client_host: str
    expected: int
    channel: Optional[ControlChannel] = None
    play_streams: List[PlayStream] = field(default_factory=list)
    record_streams: List[RecordStream] = field(default_factory=list)
    finished: Set[int] = field(default_factory=set)
    quitting: bool = False
    #: Multicast channel this group subscribes to, if any.
    channel_id: Optional[int] = None

    @property
    def members(self) -> int:
        return len(self.play_streams) + len(self.record_streams)

    @property
    def all_done(self) -> bool:
        return self.members > 0 and len(self.finished) >= self.members


@dataclass
class ChannelState:
    """MSU-side state of one multicast channel."""

    channel_id: int
    stream: ChannelStream
    group: GroupState      # the channel stream's own (server-internal) group
    disk_id: str
    content_name: str
    mcast_host: str
    #: viewer group_id -> (stream_id, unicast display address).
    subscribers: Dict[int, tuple] = field(default_factory=dict)


@dataclass
class LiveState:
    """MSU-side state of one live channel's ingest + time-shift ring."""

    channel_id: int
    record: RecordStream
    handle: FileHandle
    #: Ring window size in data pages; 0 keeps every page (a scheduled
    #: recording that becomes ordinary VoD when the channel signs off).
    ring_blocks: int
    #: viewer group_id -> live-edge page noted when they paused.
    paused: Dict[int, int] = field(default_factory=dict)
    rewinds: int = 0
    rewind_hits: int = 0
    trims: int = 0
    pages_trimmed: int = 0


class Msu:
    """One Multimedia Storage Unit."""

    DATA_PORT = 4000

    def __init__(
        self,
        sim: Simulator,
        name: str,
        delivery_net: Network,
        machine_params: Optional[MachineParams] = None,
        seed: int = 0,
        protocols: Optional[ProtocolRegistry] = None,
        ibtree_config: IBTreeConfig = IBTreeConfig(),
        client_channel_factory: Optional[Callable] = None,
        striped: bool = False,
        cache_config: Optional[CacheConfig] = None,
        heartbeat_period: float = 0.0,
    ):
        self.sim = sim
        self.name = name
        params = machine_params or MachineParams(name=name)
        if params.name != name:
            params = MachineParams(
                name=name, disk=params.disk, scsi=params.scsi, memory=params.memory,
                cpu=params.cpu, timer=params.timer,
                disks_per_hba=params.disks_per_hba, ram_bytes=params.ram_bytes,
            )
        self.machine = Machine(sim, params, seed=seed)
        self.nic = self.machine.add_nic(FDDI)
        self.host = Host(sim, delivery_net, name, machine=self.machine, nic=self.nic)
        self.protocols = protocols or default_registry()
        self.ibtree_config = ibtree_config
        #: cluster-supplied: (client_host, group_id) -> ControlChannel.
        self.client_channel_factory = client_channel_factory
        # Per-disk file systems (the paper's MSU does not stripe, §2.3.3);
        # ``striped=True`` builds the §2.3.3 alternative: one file system
        # whose consecutive blocks land on "adjacent" disks, served by a
        # single duty cycle covering all disks.
        self.striped = striped
        # Optional interval/prefix page cache (extension): one pool shared
        # by every disk process; None reproduces the paper's no-cache MSU.
        self.cache = MsuPageCache(cache_config) if cache_config is not None else None
        self.filesystems: Dict[str, MsuFileSystem] = {}
        self.disk_processes: Dict[str, DiskProcess] = {}
        if striped:
            raws = [RawDisk(drive) for drive in self.machine.disks]
            fs = MsuFileSystem(
                StripedVolume(raws, ibtree_config.data_page_size)
            )
            disk_id = f"{name}.striped"
            self.filesystems[disk_id] = fs
            self.disk_processes[disk_id] = DiskProcess(
                sim, fs, disk_id,
                on_page_loaded=self._on_page_loaded,
                on_record_drained=self._on_record_drained,
                on_page_written=self._on_page_written,
                cache=self.cache,
            )
        else:
            for drive in self.machine.disks:
                raw = RawDisk(drive)
                fs = MsuFileSystem(SpanVolume(raw, ibtree_config.data_page_size))
                self.filesystems[drive.name] = fs
                self.disk_processes[drive.name] = DiskProcess(
                    sim, fs, drive.name,
                    on_page_loaded=self._on_page_loaded,
                    on_record_drained=self._on_record_drained,
                    on_page_written=self._on_page_written,
                    cache=self.cache,
                )
        self.data_socket = self.host.bind(self.DATA_PORT)
        self.iop = NetworkProcess(
            sim, self.data_socket, self.machine.timer,
            on_stream_done=self._on_play_done,
        )
        self.iop.disk_kick = self._kick_disk_for
        self.groups: Dict[int, GroupState] = {}
        #: Active multicast channels, by channel id.
        self.channels: Dict[int, ChannelState] = {}
        #: Live channels layered on top of ``channels``, by channel id.
        self.live: Dict[int, LiveState] = {}
        #: ingest stream id -> live channel id (ring-trim dispatch).
        self._live_by_record: Dict[int, int] = {}
        self._stream_disk: Dict[int, DiskProcess] = {}
        self._stream_group: Dict[int, GroupState] = {}
        self.coordinator_channel: Optional[ControlChannel] = None
        self.up = True
        self.streams_served = 0
        #: Streams restarted mid-file by a failover ResumePlay.
        self.streams_resumed = 0
        #: Seconds between Heartbeat messages to the Coordinator
        #: (0 disables them: the paper's TCP-break detection only).
        self.heartbeat_period = heartbeat_period
        #: Optional structured event log (repro.metrics.tracing.Tracer).
        self.tracer = None
        self._cache_report_proc = None
        self._heartbeat_proc = None

    def _trace(self, category: str, subject, detail: str = "") -> None:
        if self.tracer is not None:
            self.tracer.record(self.name, category, subject, detail)

    # -- wiring callbacks -------------------------------------------------------

    def _on_page_loaded(self, stream: PlayStream) -> None:
        self.iop.wakeup.set()

    def _kick_disk_for(self, stream) -> None:
        proc = self._stream_disk.get(stream.stream_id)
        if proc is not None:
            proc.wakeup.set()

    # -- coordinator control channel ----------------------------------------------

    def attach_coordinator(self, channel: ControlChannel) -> None:
        """Connect to the Coordinator and announce disks (§2.2 MsuHello)."""
        stale = self.coordinator_channel
        if stale is not None and stale is not channel and stale.open:
            stale.close()  # a restarted Coordinator replaces the old link
        self.coordinator_channel = channel
        disks = tuple(
            (disk_id, fs.allocator.free_blocks)
            for disk_id, fs in sorted(self.filesystems.items())
        )
        cache_bps = self.cache.config.bandwidth if self.cache is not None else 0.0
        channel.send(
            self.name, m.MsuHello(self.name, disks, cache_bps=cache_bps),
            nbytes=m.WIRE_BYTES,
        )
        self.sim.process(self._control_loop(), name=f"{self.name}.ctl")
        if self.cache is not None:
            self._cache_report_proc = self.sim.process(
                self._cache_report_loop(channel), name=f"{self.name}.cachereport"
            )
        if self.heartbeat_period > 0:
            self._heartbeat_proc = self.sim.process(
                self._heartbeat_loop(channel), name=f"{self.name}.heartbeat"
            )

    def _control_loop(self) -> Generator:
        channel = self.coordinator_channel
        while True:
            msg = yield channel.recv(self.name)
            if msg is None:
                # A stale channel replaced during rejoin closes late; only
                # a break on the *current* channel is a Coordinator loss.
                # The MSU survives it: streams keep playing unsupervised
                # until a restarted Coordinator re-attaches and reconciles.
                if self.up and self.coordinator_channel is channel:
                    self.coordinator_channel = None
                return
            if not self.up or self.coordinator_channel is not channel:
                # A frozen machine processes nothing: a request that raced
                # with a hang is lost with the rest of the MSU's state, or
                # else the MSU would install streams (e.g. a failover
                # ResumePlay) while officially dead and still hold them
                # after rejoining — the same group alive on two MSUs.
                return
            if isinstance(msg, m.ReportState):
                channel.send(self.name, self.state_report(), nbytes=m.WIRE_BYTES)
            elif isinstance(msg, m.ScheduleRead):
                self._schedule_read(msg)
            elif isinstance(msg, m.ChannelCreate):
                self._create_channel(msg)
            elif isinstance(msg, m.ChannelSubscribe):
                self._channel_subscribe(msg)
            elif isinstance(msg, m.LiveOpen):
                self._open_live(msg)
            elif isinstance(msg, m.LiveStop):
                self._stop_live(msg)
            elif isinstance(msg, m.ResumePlay):
                self._resume_play(msg)
            elif isinstance(msg, m.ScheduleRecord):
                self._schedule_record(msg)
            elif isinstance(msg, m.PinPrefix):
                if self.cache is not None:
                    self.sim.process(
                        self._pin_prefix(msg), name=f"{self.name}.pin"
                    )
            elif isinstance(msg, m.DeleteFile):
                fs = self.filesystems.get(msg.disk_id)
                if fs is not None and fs.exists(msg.content_name):
                    fs.delete(msg.content_name)
                    if self.cache is not None:
                        self.cache.invalidate((msg.disk_id, msg.content_name))
                    # Deletes are durable: a remount must not resurrect
                    # a torn-down live ring as an orphan file.
                    self.sim.process(
                        fs.sync_metadata(), name=f"{self.name}.sync"
                    )

    def state_report(self) -> m.StateReport:
        """Answer a restarted Coordinator's ``ReportState`` probe.

        Everything the MSU is serving *right now*: active streams by
        group (channel-own groups excluded — they travel as channels),
        multicast channels with their subscriber sets, pinned prefixes,
        and allocator free-block truth.  Recovery treats this as
        authoritative (MSU-wins reconciliation).
        """
        disks = tuple(
            (disk_id, fs.allocator.free_blocks)
            for disk_id, fs in sorted(self.filesystems.items())
        )
        cache_bps = self.cache.config.bandwidth if self.cache is not None else 0.0
        channel_groups = {ch.group.group_id for ch in self.channels.values()}
        streams = []
        for group_id in sorted(self.groups):
            group = self.groups[group_id]
            if group_id in channel_groups:
                continue
            for stream in group.play_streams:
                if stream.stream_id in group.finished:
                    continue
                proc = self._stream_disk.get(stream.stream_id)
                streams.append((
                    group_id, stream.stream_id, stream.handle.name,
                    proc.disk_id if proc is not None else "",
                    "patch" if stream.is_patch else "play", stream.rate,
                ))
            for stream in group.record_streams:
                if stream.stream_id in group.finished:
                    continue
                proc = self._stream_disk.get(stream.stream_id)
                streams.append((
                    group_id, stream.stream_id, stream.handle.name,
                    proc.disk_id if proc is not None else "",
                    "record", 0.0,
                ))
        channels = []
        live_channels = []
        for channel_id in sorted(self.channels):
            ch = self.channels[channel_id]
            members = tuple(sorted(
                (gid, sid) for gid, (sid, _addr) in ch.subscribers.items()
            ))
            if channel_id in self.live:
                # Live channels travel in their own field: the multicast
                # reconciler must not adopt them as VoD channels.
                live_channels.append((
                    channel_id, ch.group.group_id, ch.stream.stream_id,
                    ch.content_name, ch.disk_id, ch.stream.rate, members,
                ))
                continue
            channels.append((
                channel_id, ch.group.group_id, ch.stream.stream_id,
                ch.content_name, ch.disk_id, members,
            ))
        pins = ()
        if self.cache is not None:
            pins = tuple(sorted(
                (disk_id, content, pages)
                for (disk_id, content), pages
                in self.cache.prefix.pinned_titles().items()
            ))
        return m.StateReport(
            self.name, disks=disks, cache_bps=cache_bps,
            streams=tuple(streams), channels=tuple(channels), pins=pins,
            live_channels=tuple(live_channels),
        )

    # -- page-cache plumbing (extension) ----------------------------------------------

    def _pin_prefix(self, msg: m.PinPrefix) -> Generator:
        """Read a hot title's opening pages into the prefix cache.

        The reads go through the file system like any other disk access,
        so pinning contends with (and is paced by) the duty cycle — a
        one-time cost paid when the Coordinator declares the title hot.
        """
        fs = self.filesystems.get(msg.disk_id)
        if fs is None or not fs.exists(msg.content_name):
            return
        handle = fs.open(msg.content_name)
        key = (msg.disk_id, msg.content_name)
        pinned = 0
        for index in range(min(msg.pages, handle.nblocks)):
            if self.cache.prefix.is_pinned(key, index):
                continue
            data = yield from fs.read_file_block(handle, index)
            if not self.cache.pin_prefix(key, index, data):
                break
            pinned += 1
        self._trace("prefix-pin", msg.content_name, f"pages={pinned}")

    def _cache_report_loop(self, channel: ControlChannel) -> Generator:
        """Periodically report cache-served bandwidth to the Coordinator."""
        period = self.cache.config.report_period
        while self.up and channel.open:
            yield self.sim.timeout(period)
            if not self.up or not channel.open:
                return
            snap = self.cache.snapshot()
            channel.send(
                self.name,
                m.CacheReport(
                    self.name, snap.hits, snap.misses, snap.bytes_served,
                    snap.slots_saved, snap.pool_used, snap.pool_capacity,
                ),
                nbytes=m.WIRE_BYTES,
            )

    def _heartbeat_loop(self, channel: ControlChannel) -> Generator:
        """Beat periodically, carrying every playback stream's position.

        The position (current buffered page and media time) is what lets
        the Coordinator's migrator resume the stream on a replica with a
        bounded gap instead of restarting it from the beginning.
        """
        seq = 0
        while self.up and channel.open:
            positions = tuple(
                (
                    stream.group_id,
                    stream.stream_id,
                    stream.buffers[0].page_index
                    if stream.buffers else max(0, stream.next_page - 1),
                    stream.position_us,
                )
                for stream in self.iop.play_streams
            )
            # Channel subscribers ride the shared stream: report each at
            # the channel's position (everything before it has been
            # delivered to them via patch + fan-out), *after* the raw
            # stream entries so a subscriber's channel position overrides
            # its patch stream's — a migration resumes from the channel
            # front, not from inside the already-delivered prefix.
            for ch in self.channels.values():
                page = (
                    ch.stream.buffers[0].page_index
                    if ch.stream.buffers else max(0, ch.stream.next_page - 1)
                )
                positions += tuple(
                    (group_id, stream_id, page, ch.stream.position_us)
                    for group_id, (stream_id, _addr) in sorted(
                        ch.subscribers.items()
                    )
                )
            seq += 1
            channel.send(
                self.name, m.Heartbeat(self.name, seq, positions),
                nbytes=m.WIRE_BYTES,
            )
            yield self.sim.timeout(self.heartbeat_period)

    # -- scheduling (RPCs from the Coordinator) --------------------------------------

    def _group_for(self, group_id: int, client_host: str, expected: int) -> GroupState:
        group = self.groups.get(group_id)
        if group is None:
            group = GroupState(group_id, client_host, expected)
            self.groups[group_id] = group
            if self.client_channel_factory is not None:
                group.channel = self.client_channel_factory(client_host, group_id)
                self.sim.process(
                    self._vcr_loop(group), name=f"{self.name}.vcr{group_id}"
                )
        return group

    def _schedule_read(self, msg: m.ScheduleRead) -> None:
        # start_page > 0: an edge proxy serves the opening pages, the
        # MSU tail stream picks up at the splice.
        self._install_play(msg, start_page=msg.start_page, label="play")

    def _resume_play(self, msg: m.ResumePlay) -> None:
        """Pick up a migrated stream from its last reported position."""
        self.streams_resumed += 1
        self._install_play(
            msg, start_page=msg.start_page, start_us=msg.start_us, label="resume"
        )

    def _install_play(
        self, msg, start_page: int = 0, start_us: int = 0, label: str = "play"
    ) -> None:
        fs = self.filesystems[msg.disk_id]
        handle = fs.open(msg.content_name)
        stream = PlayStream(
            msg.stream_id, msg.group_id, handle,
            self.protocols.get(msg.protocol), msg.rate, msg.display_address,
            self.ibtree_config,
        )
        if start_page:
            # Clamp into the file so a stream that died at its very last
            # page still loads something and terminates normally.
            stream.next_page = max(0, min(start_page, handle.nblocks - 1))
        if start_us:
            stream.position_us = start_us
        group = self._group_for(msg.group_id, msg.client_host, msg.group_size)
        group.play_streams.append(stream)
        self._stream_disk[msg.stream_id] = self.disk_processes[msg.disk_id]
        self._stream_group[msg.stream_id] = group
        self.disk_processes[msg.disk_id].add_play(stream)
        self.iop.add_play(stream)
        self.streams_served += 1
        self._trace(label, msg.content_name,
                    f"group={msg.group_id} stream={msg.stream_id} disk={msg.disk_id}")
        if group.channel is not None:
            group.channel.send(
                self.name,
                m.StreamReady(
                    msg.group_id, self.name, msg.stream_id, msg.content_name,
                    group_size=group.expected,
                ),
                nbytes=m.WIRE_BYTES,
            )

    def _schedule_record(self, msg: m.ScheduleRecord) -> None:
        fs = self.filesystems[msg.disk_id]
        handle = fs.create(msg.content_name, "", reserve_blocks=msg.reserve_blocks)
        stream = RecordStream(
            msg.stream_id, msg.group_id, handle,
            self.protocols.get(msg.protocol), self.ibtree_config,
        )
        socket = self.host.bind()  # a fresh port for this recording
        group = self._group_for(msg.group_id, msg.client_host, msg.group_size)
        group.record_streams.append(stream)
        self._stream_disk[msg.stream_id] = self.disk_processes[msg.disk_id]
        self._stream_group[msg.stream_id] = group
        self.disk_processes[msg.disk_id].add_record(stream)
        self.iop.add_record(stream, socket)
        self.streams_served += 1
        self._trace("record", msg.content_name,
                    f"group={msg.group_id} stream={msg.stream_id} disk={msg.disk_id}")
        if group.channel is not None:
            group.channel.send(
                self.name,
                m.StreamReady(
                    msg.group_id, self.name, msg.stream_id, msg.content_name,
                    group_size=group.expected, record_address=socket.address,
                ),
                nbytes=m.WIRE_BYTES,
            )

    # -- multicast channels (extension) -----------------------------------------------

    def _create_channel(self, msg: m.ChannelCreate) -> None:
        """Open one shared disk stream whose packets go to a group address."""
        fs = self.filesystems[msg.disk_id]
        handle = fs.open(msg.content_name)
        stream = ChannelStream(
            msg.stream_id, msg.group_id, handle,
            self.protocols.get(msg.protocol), msg.rate,
            tuple(msg.mcast_address), self.ibtree_config,
            channel_id=msg.channel_id,
        )
        # A server-internal group: no client host, no VCR connection.
        group = GroupState(msg.group_id, "", 1)
        self.groups[msg.group_id] = group
        group.play_streams.append(stream)
        self._stream_disk[msg.stream_id] = self.disk_processes[msg.disk_id]
        self._stream_group[msg.stream_id] = group
        self.channels[msg.channel_id] = ChannelState(
            msg.channel_id, stream, group, msg.disk_id,
            msg.content_name, msg.mcast_address[0],
        )
        self.disk_processes[msg.disk_id].add_play(stream)
        self.iop.add_play(stream)
        self.streams_served += 1
        self._trace("channel", msg.content_name,
                    f"channel={msg.channel_id} group={msg.group_id} "
                    f"disk={msg.disk_id}")

    def _channel_subscribe(self, msg: m.ChannelSubscribe) -> None:
        """Attach a viewer to a channel, with an optional patch stream."""
        ch = self.channels.get(msg.channel_id)
        group = self._group_for(msg.group_id, msg.client_host, 1)
        if ch is None:
            # The channel completed between scheduling and arrival; tell
            # everyone so neither side waits on a ghost subscription.
            if group.channel is not None:
                group.channel.send(
                    self.name,
                    m.StreamReady(msg.group_id, self.name, msg.stream_id),
                    nbytes=m.WIRE_BYTES,
                )
                group.channel.send(
                    self.name, m.EndOfStream(msg.group_id, msg.stream_id),
                    nbytes=m.WIRE_BYTES,
                )
            self._notify_terminated(group, msg.stream_id, "channel-gone")
            self._close_subscriber_group(group, msg.stream_id)
            return
        address = tuple(msg.display_address)
        group.channel_id = msg.channel_id
        ch.subscribers[msg.group_id] = (msg.stream_id, address)
        ch.stream.subscribe(msg.group_id, msg.stream_id, address)
        self.host.network.join_group(ch.mcast_host, address)
        self._stream_group[msg.stream_id] = group
        if msg.patch_end_page > 0:
            fs = self.filesystems[ch.disk_id]
            patch = PatchStream(
                msg.stream_id, msg.group_id, fs.open(ch.content_name),
                ch.stream.protocol, ch.stream.rate, address,
                self.ibtree_config,
                end_page=msg.patch_end_page, channel_id=msg.channel_id,
            )
            group.play_streams.append(patch)
            self._stream_disk[msg.stream_id] = self.disk_processes[ch.disk_id]
            self.disk_processes[ch.disk_id].add_play(patch)
            self.iop.add_play(patch)
        self.streams_served += 1
        self._trace("subscribe", ch.content_name,
                    f"channel={msg.channel_id} group={msg.group_id} "
                    f"patch={msg.patch_end_page}")
        if group.channel is not None:
            group.channel.send(
                self.name,
                m.StreamReady(
                    msg.group_id, self.name, msg.stream_id, ch.content_name,
                    group_size=group.expected,
                ),
                nbytes=m.WIRE_BYTES,
            )

    def _detach_subscriber(self, group: GroupState) -> Optional[int]:
        """Drop a group's channel membership; returns its stream id.

        Closes the channel early ("channel-idle") when the last
        subscriber leaves — nobody is listening to the fan-out anymore.
        """
        channel_id, group.channel_id = group.channel_id, None
        ch = self.channels.get(channel_id) if channel_id is not None else None
        if ch is None:
            return None
        entry = ch.subscribers.pop(group.group_id, None)
        if entry is None:
            return None
        stream_id, address = entry
        ch.stream.unsubscribe(group.group_id)
        self.host.network.leave_group(ch.mcast_host, address)
        if ch.channel_id in self.live:
            self.live[ch.channel_id].paused.pop(group.group_id, None)
        if ch.stream.idle and not ch.stream.live:
            # A live channel stays on the air with zero viewers — the
            # next surfer tunes straight in; only VoD channels close
            # when their audience is gone.
            self._close_channel(ch, "channel-idle")
        return stream_id

    def _close_channel(self, ch: ChannelState, reason: str) -> None:
        """Tear down a channel stream and report its termination."""
        self.channels.pop(ch.channel_id, None)
        self._forget_live(ch.channel_id)
        stream = ch.stream
        stream.state = StreamState.DONE
        self.iop.remove(stream)
        proc = self._stream_disk.pop(stream.stream_id, None)
        if proc is not None:
            proc.remove(stream)
        self.groups.pop(ch.group.group_id, None)
        self._stream_group.pop(stream.stream_id, None)
        self._notify_terminated(ch.group, stream.stream_id, reason)
        self._trace("channel-close", ch.content_name,
                    f"channel={ch.channel_id} reason={reason} "
                    f"fanout={stream.fanout_packets}")

    def _close_subscriber_group(
        self, group: GroupState, stream_id: Optional[int] = None
    ) -> None:
        """Forget a subscriber group (its streams are already gone)."""
        self.groups.pop(group.group_id, None)
        if stream_id is not None:
            self._stream_group.pop(stream_id, None)
        if group.channel is not None and group.channel.open:
            group.channel.close()

    def _forget_live(self, channel_id: Optional[int]) -> None:
        """Drop a closing channel's live-channel bookkeeping, if any."""
        live = self.live.pop(channel_id, None)
        if live is not None:
            self._live_by_record.pop(live.record.stream_id, None)

    def _channel_complete(self, stream: ChannelStream) -> None:
        """The channel played its file to the end: finish every viewer."""
        ch = self.channels.pop(stream.channel_id, None)
        self._forget_live(stream.channel_id)
        if ch is None:
            return
        self.groups.pop(ch.group.group_id, None)
        self._stream_group.pop(stream.stream_id, None)
        for sub_group_id in sorted(ch.subscribers):
            sub_stream_id, address = ch.subscribers[sub_group_id]
            self.host.network.leave_group(ch.mcast_host, address)
            sub_group = self.groups.get(sub_group_id)
            if sub_group is None:
                continue
            sub_group.channel_id = None
            # A patch still draining this late cannot outrun its channel
            # usefully; the server tears it down with the channel.
            for patch in list(sub_group.play_streams):
                patch.state = StreamState.DONE
                self.iop.remove(patch)
                proc = self._stream_disk.pop(patch.stream_id, None)
                if proc is not None:
                    proc.remove(patch)
                sub_group.play_streams.remove(patch)
            if sub_group.channel is not None:
                sub_group.channel.send(
                    self.name, m.EndOfStream(sub_group_id, sub_stream_id),
                    nbytes=m.WIRE_BYTES,
                )
            self._notify_terminated(sub_group, sub_stream_id, "end-of-stream")
            self._close_subscriber_group(sub_group, sub_stream_id)
        self._notify_terminated(ch.group, stream.stream_id, "channel-complete")
        self._trace("channel-complete", ch.content_name,
                    f"channel={ch.channel_id} viewers={len(ch.subscribers)} "
                    f"fanout={stream.fanout_packets}")

    def _downgrade_subscriber(self, group: GroupState) -> Optional[PlayStream]:
        """Swap a subscriber's channel membership for a private stream.

        Used when a VCR command (pause/seek/scan) needs a schedule of the
        viewer's own.  The unicast stream picks up at the channel's
        current position; the Coordinator is told so admission can move
        the viewer's charge from patch/channel to a full unicast slot.
        """
        ch = self.channels.get(group.channel_id)
        if ch is None or group.group_id not in ch.subscribers:
            group.channel_id = None
            return None
        stream_id, address = ch.subscribers[group.group_id]
        position_us = ch.stream.position_us
        front = ch.stream.front()
        resume_page = (
            front.page_index if front is not None
            else min(ch.stream.next_page, ch.stream.handle.nblocks - 1)
        )
        # Tear down any still-active patch; the private stream replaces it.
        for patch in list(group.play_streams):
            patch.state = StreamState.DONE
            self.iop.remove(patch)
            proc = self._stream_disk.pop(patch.stream_id, None)
            if proc is not None:
                proc.remove(patch)
            group.play_streams.remove(patch)
        self._detach_subscriber(group)
        fs = self.filesystems[ch.disk_id]
        stream = PlayStream(
            stream_id, group.group_id, fs.open(ch.content_name),
            ch.stream.protocol, ch.stream.rate, address,
            self.ibtree_config,
        )
        stream.next_page = max(0, resume_page)
        stream.position_us = position_us
        group.play_streams.append(stream)
        self._stream_disk[stream_id] = self.disk_processes[ch.disk_id]
        self._stream_group[stream_id] = group
        self.disk_processes[ch.disk_id].add_play(stream)
        self.iop.add_play(stream)
        if self.coordinator_channel is not None:
            self.coordinator_channel.send(
                self.name,
                m.ChannelDowngrade(
                    ch.channel_id, group.group_id, stream_id, position_us
                ),
                nbytes=m.WIRE_BYTES,
            )
        self._trace("downgrade", ch.content_name,
                    f"channel={ch.channel_id} group={group.group_id} "
                    f"page={stream.next_page}")
        return stream

    # -- live channels (extension) ------------------------------------------------

    def _open_live(self, msg: m.LiveOpen) -> None:
        """Start a live channel: one ingest stream, one fan-out stream.

        The broadcaster's packets append to a growing file while the
        channel stream follows the tail (``live`` keeps it from being
        reaped when it momentarily catches the writer); viewers attach
        through the ordinary :class:`~repro.net.messages.ChannelSubscribe`
        path.  ``ring_blocks`` > 0 turns the file into a time-shift ring:
        pages older than the window are reclaimed as new ones land.
        """
        fs = self.filesystems[msg.disk_id]
        handle = fs.create(msg.content_name, "", reserve_blocks=msg.reserve_blocks)
        record = RecordStream(
            msg.ingest_stream_id, msg.ingest_group_id, handle,
            self.protocols.get(msg.protocol), self.ibtree_config,
        )
        socket = self.host.bind()  # the broadcaster sends media here
        ingest_group = self._group_for(msg.ingest_group_id, msg.source_host, 1)
        ingest_group.record_streams.append(record)
        self._stream_disk[msg.ingest_stream_id] = self.disk_processes[msg.disk_id]
        self._stream_group[msg.ingest_stream_id] = ingest_group
        stream = ChannelStream(
            msg.stream_id, msg.group_id, handle,
            self.protocols.get(msg.protocol), msg.rate,
            tuple(msg.mcast_address), self.ibtree_config,
            channel_id=msg.channel_id,
        )
        stream.live = True
        group = GroupState(msg.group_id, "", 1)  # server-internal fan-out group
        self.groups[msg.group_id] = group
        group.play_streams.append(stream)
        self._stream_disk[msg.stream_id] = self.disk_processes[msg.disk_id]
        self._stream_group[msg.stream_id] = group
        self.channels[msg.channel_id] = ChannelState(
            msg.channel_id, stream, group, msg.disk_id,
            msg.content_name, msg.mcast_address[0],
        )
        self.live[msg.channel_id] = LiveState(
            msg.channel_id, record, handle, msg.ring_blocks
        )
        self._live_by_record[msg.ingest_stream_id] = msg.channel_id
        self.disk_processes[msg.disk_id].add_record(record)
        self.disk_processes[msg.disk_id].add_play(stream)
        self.iop.add_record(record, socket)
        self.iop.add_play(stream)
        self.streams_served += 2
        self._trace("live-open", msg.content_name,
                    f"channel={msg.channel_id} disk={msg.disk_id} "
                    f"ring={msg.ring_blocks}")
        if ingest_group.channel is not None:
            ingest_group.channel.send(
                self.name,
                m.StreamReady(
                    msg.ingest_group_id, self.name, msg.ingest_stream_id,
                    msg.content_name, record_address=socket.address,
                ),
                nbytes=m.WIRE_BYTES,
            )

    def _stop_live(self, msg: m.LiveStop) -> None:
        """Coordinator takes the channel off the air (EPG slot over)."""
        live = self.live.get(msg.channel_id)
        if live is None or live.record.finishing:
            return
        live.record.begin_finish()
        self._kick_record(live.record)

    def _on_page_written(self, stream: RecordStream) -> None:
        """A recorded page landed: reclaim ring pages past the window.

        Never trims under an active reader: the duty cycle bumps a
        reader's ``next_page`` before its read completes, so the floor
        stays two pages below the slowest tail-follower on this handle.
        """
        channel_id = self._live_by_record.get(stream.stream_id)
        if channel_id is None:
            return
        live = self.live.get(channel_id)
        if live is None or live.ring_blocks <= 0:
            return
        handle = live.handle
        if handle.live_span <= live.ring_blocks:
            return
        floor = handle.nblocks - live.ring_blocks
        proc = self._stream_disk.get(stream.stream_id)
        if proc is not None:
            for reader in proc.play_streams:
                if reader.handle is handle:
                    floor = min(floor, max(0, reader.next_page - 2))
        if floor <= handle.trimmed or proc is None:
            return
        freed = proc.fs.trim_file_front(handle, floor)
        if freed:
            live.trims += 1
            live.pages_trimmed += freed
            if self.cache is not None:
                self.cache.invalidate((proc.disk_id, handle.name))

    def _apply_live_vcr(self, group: GroupState, live: LiveState,
                        msg: m.VcrCommand) -> None:
        """Pause-live / rewind-live for one viewer of a live channel.

        The shared fan-out never pauses; the viewer's time shift rides a
        bounded unicast patch over the ring window (PR 3's patch/merge
        machinery), after which they live on the multicast again.
        """
        ch = self.channels.get(live.channel_id)
        if ch is None:
            return
        entry = ch.subscribers.get(group.group_id)
        if entry is None:
            return
        stream_id, address = entry
        handle = live.handle
        edge = handle.nblocks
        if msg.command == m.VCR_PAUSE:
            live.paused[group.group_id] = edge
            self._trace("live-pause", f"group={group.group_id}",
                        f"channel={live.channel_id} page={edge}")
            return
        if msg.command == m.VCR_PLAY:
            base = live.paused.pop(group.group_id, None)
            if base is None:
                return
            want = base
        elif msg.command == m.VCR_REWIND:
            base = live.paused.pop(group.group_id, edge)
            started = live.record.started
            elapsed = max(1e-9, self.sim.now - (started or self.sim.now))
            pages_per_sec = edge / elapsed
            want = base - max(1, int(msg.position_seconds * pages_per_sec))
        else:
            return  # seek/scan have no meaning against a growing tail
        if edge == 0:
            return
        hit = want >= handle.trimmed
        start = min(max(want, handle.trimmed), edge)
        if start >= edge:
            return  # nothing missed (paused for under a page's worth)
        live.rewinds += 1
        if hit:
            live.rewind_hits += 1
        # A newer time shift replaces any patch still draining.
        for patch in list(group.play_streams):
            patch.state = StreamState.DONE
            self.iop.remove(patch)
            proc = self._stream_disk.pop(patch.stream_id, None)
            if proc is not None:
                proc.remove(patch)
            group.play_streams.remove(patch)
        fs = self.filesystems[ch.disk_id]
        patch = PatchStream(
            stream_id, group.group_id, fs.open(ch.content_name),
            ch.stream.protocol, ch.stream.rate, address,
            self.ibtree_config,
            end_page=edge, channel_id=live.channel_id, start_page=start,
        )
        group.play_streams.append(patch)
        self._stream_disk[stream_id] = self.disk_processes[ch.disk_id]
        self.disk_processes[ch.disk_id].add_play(patch)
        self.iop.add_play(patch)
        self.streams_served += 1
        if self.coordinator_channel is not None:
            self.coordinator_channel.send(
                self.name,
                m.LiveRewound(
                    live.channel_id, group.group_id, stream_id,
                    start, edge, hit=hit,
                ),
                nbytes=m.WIRE_BYTES,
            )
        self._trace("live-rewind", f"group={group.group_id}",
                    f"channel={live.channel_id} pages=[{start},{edge}) "
                    f"hit={hit}")

    # -- VCR handling --------------------------------------------------------------

    def _vcr_loop(self, group: GroupState) -> Generator:
        while True:
            msg = yield group.channel.recv(self.name)
            if msg is None:
                return
            if not isinstance(msg, m.VcrCommand):
                continue
            if msg.command == m.VCR_QUIT:
                self._quit_group(group)
                return
            self.sim.process(self._apply_vcr(group, msg), name="vcr")

    def _apply_vcr(self, group: GroupState, msg: m.VcrCommand) -> Generator:
        now = self.sim.now
        self._trace("vcr", f"group={group.group_id}", msg.command)
        if group.channel_id is not None and group.channel_id in self.live:
            # Live viewers never downgrade: pause-live and rewind-live
            # ride the time-shift ring while the fan-out keeps flowing.
            self._apply_live_vcr(group, self.live[group.channel_id], msg)
            self.iop.wakeup.set()
            return
        if group.channel_id is not None:
            # A shared channel cannot pause/seek/scan for one viewer:
            # leave it for a private unicast stream, then apply the
            # command to that stream as usual.
            self._downgrade_subscriber(group)
        if msg.command == m.VCR_PAUSE:
            for stream in group.play_streams:
                stream.pause(now)
        elif msg.command == m.VCR_PLAY:
            for stream in group.play_streams:
                stream.resume(now)
        elif msg.command == m.VCR_SEEK:
            target_us = int(msg.position_seconds * 1e6)
            for stream in group.play_streams:
                yield from seek_stream(stream, target_us)
                self._kick_disk_for(stream)
        elif msg.command in (m.VCR_FAST_FORWARD, m.VCR_FAST_BACKWARD, m.VCR_NORMAL):
            variant = {
                m.VCR_FAST_FORWARD: RateVariant.FAST_FORWARD,
                m.VCR_FAST_BACKWARD: RateVariant.FAST_BACKWARD,
                m.VCR_NORMAL: RateVariant.NORMAL,
            }[msg.command]
            for stream in group.play_streams:
                fs = self._fs_of_stream(stream)
                yield from switch_variant(stream, fs, variant)
                self._kick_disk_for(stream)
        self.iop.wakeup.set()

    def _fs_of_stream(self, stream) -> MsuFileSystem:
        proc = self._stream_disk[stream.stream_id]
        return proc.fs

    def _quit_group(self, group: GroupState) -> None:
        self._trace("vcr", f"group={group.group_id}", "quit")
        group.quitting = True
        notified: Set[int] = set()
        for stream in list(group.play_streams):
            stream.state = StreamState.DONE
            self.iop.remove(stream)
            proc = self._stream_disk.pop(stream.stream_id, None)
            if proc is not None:
                proc.remove(stream)
            self._notify_terminated(group, stream.stream_id, "quit")
            notified.add(stream.stream_id)
            group.finished.add(stream.stream_id)
        for stream in list(group.record_streams):
            stream.begin_finish()
            self._kick_record(stream)
        if group.channel_id is not None:
            # A channel subscriber: detach from the fan-out (closing the
            # channel early if nobody is left listening) and report the
            # subscription's end unless its patch stream already did.
            stream_id = self._detach_subscriber(group)
            if stream_id is not None and stream_id not in notified:
                self._notify_terminated(group, stream_id, "quit")
            self._close_subscriber_group(group, stream_id)
            return
        self._maybe_close_group(group)

    def _kick_record(self, stream: RecordStream) -> None:
        proc = self._stream_disk.get(stream.stream_id)
        if proc is not None:
            proc.wakeup.set()

    # -- completion paths -------------------------------------------------------------

    def _notify_terminated(
        self, group: GroupState, stream_id: int, reason: str, blocks: int = 0
    ) -> None:
        if self.coordinator_channel is not None:
            self.coordinator_channel.send(
                self.name,
                m.StreamTerminated(group.group_id, stream_id, reason, blocks),
                nbytes=m.WIRE_BYTES,
            )

    def _on_play_done(self, stream: PlayStream) -> None:
        """IOP reached end of file for a playback stream."""
        if stream.is_channel:
            proc = self._stream_disk.pop(stream.stream_id, None)
            if proc is not None:
                proc.remove(stream)
            self._channel_complete(stream)
            return
        group = self._stream_group.get(stream.stream_id)
        proc = self._stream_disk.pop(stream.stream_id, None)
        if proc is not None:
            proc.remove(stream)
        if group is None:
            return
        if stream.is_patch:
            # The missed prefix has been delivered: the viewer now lives
            # entirely on its channel.  Tell the Coordinator so the patch
            # charge is refunded; the group itself stays alive.
            if stream in group.play_streams:
                group.play_streams.remove(stream)
            if self.coordinator_channel is not None:
                self.coordinator_channel.send(
                    self.name,
                    m.PatchDrained(
                        stream.channel_id, group.group_id, stream.stream_id
                    ),
                    nbytes=m.WIRE_BYTES,
                )
            self._trace("patch-drained", f"stream={stream.stream_id}",
                        f"channel={stream.channel_id} group={group.group_id}")
            return
        if group.channel is not None:
            group.channel.send(
                self.name, m.EndOfStream(group.group_id, stream.stream_id),
                nbytes=m.WIRE_BYTES,
            )
        self._notify_terminated(group, stream.stream_id, "end-of-stream")
        self._trace("end-of-stream", f"stream={stream.stream_id}",
                    f"group={group.group_id} packets={stream.packets_sent}")
        group.finished.add(stream.stream_id)
        self._maybe_close_group(group)

    def _on_record_drained(self, stream: RecordStream) -> None:
        """Disk process flushed a finishing recording's last page."""
        channel_id = self._live_by_record.pop(stream.stream_id, None)
        if channel_id is not None:
            # Live ingest signed off: the fan-out stream stops being a
            # tail-follower and drains to the (now final) end of file.
            ch = self.channels.get(channel_id)
            if ch is not None:
                ch.stream.live = False
                self._kick_disk_for(ch.stream)
                self.iop.wakeup.set()
        group = self._stream_group.get(stream.stream_id)
        handle = stream.handle
        handle.duration_us = stream.last_delivery_us
        fs = handle.fs
        returned = fs.finish_recording(handle)
        self.iop.remove(stream)
        self._stream_disk.pop(stream.stream_id, None)
        self.sim.process(fs.sync_metadata(), name=f"{self.name}.sync")
        if group is None:
            return
        if group.channel is not None:
            group.channel.send(
                self.name, m.EndOfStream(group.group_id, stream.stream_id),
                nbytes=m.WIRE_BYTES,
            )
        self._notify_terminated(
            group, stream.stream_id, "record-complete", blocks=len(handle.blocks)
        )
        self._trace("record-complete", handle.name,
                    f"blocks={len(handle.blocks)} returned={returned}")
        group.finished.add(stream.stream_id)
        self._maybe_close_group(group)

    def _maybe_close_group(self, group: GroupState) -> None:
        if group.all_done and group.group_id in self.groups:
            del self.groups[group.group_id]
            for stream in group.play_streams + group.record_streams:
                self._stream_group.pop(stream.stream_id, None)
            if group.channel is not None and group.channel.open:
                group.channel.close()

    def _drop_channels(self) -> None:
        """Forget every channel and its fan-out memberships (crash/hang)."""
        for ch in self.channels.values():
            for _group_id, (_stream_id, address) in ch.subscribers.items():
                self.host.network.leave_group(ch.mcast_host, address)
        self.channels.clear()
        self.live.clear()
        self._live_by_record.clear()

    # -- crash injection ------------------------------------------------------------------

    def crash(self) -> None:
        """Kill the MSU: all processes stop, every connection breaks.

        The Coordinator sees the control-channel break and marks the MSU
        down (§2.2); clients see their VCR connections close mid-stream.
        Disk contents survive — :meth:`repro.core.cluster.CalliopeCluster.
        rejoin_msu` brings the machine back with its files intact.
        """
        self._trace("crash", self.name)
        self.up = False
        if self.coordinator_channel is not None and self.coordinator_channel.open:
            self.coordinator_channel.close()
        for group in list(self.groups.values()):
            if group.channel is not None and group.channel.open:
                group.channel.close()
        for disk_proc in self.disk_processes.values():
            if disk_proc._proc.is_alive:
                disk_proc._proc.interrupt("crash")
        if self.iop._proc.is_alive:
            self.iop._proc.interrupt("crash")
        if self._cache_report_proc is not None and self._cache_report_proc.is_alive:
            self._cache_report_proc.interrupt("crash")
        if self._heartbeat_proc is not None and self._heartbeat_proc.is_alive:
            self._heartbeat_proc.interrupt("crash")
        if self.cache is not None:
            self.cache.clear()  # cache memory does not survive a power cut
        self._drop_channels()
        self.groups.clear()
        self._stream_disk.clear()
        self._stream_group.clear()
        self.iop.play_streams.clear()
        self.iop.record_streams.clear()
        for disk_proc in self.disk_processes.values():
            disk_proc.play_streams.clear()
            disk_proc.record_streams.clear()

    def hang(self) -> None:
        """Freeze the MSU silently: processes stop, connections stay up.

        The failure mode :meth:`crash` cannot model — a wedged kernel
        whose TCP connections linger.  The Coordinator gets no break
        signal; only the heartbeat monitor notices the silence.  Streams
        and state are lost exactly as in a crash, and :meth:`reboot` /
        :meth:`repro.core.cluster.CalliopeCluster.rejoin_msu` recover it
        the same way.
        """
        self._trace("hang", self.name)
        self.up = False
        for disk_proc in self.disk_processes.values():
            if disk_proc._proc.is_alive:
                disk_proc._proc.interrupt("hang")
        if self.iop._proc.is_alive:
            self.iop._proc.interrupt("hang")
        if self._cache_report_proc is not None and self._cache_report_proc.is_alive:
            self._cache_report_proc.interrupt("hang")
        if self._heartbeat_proc is not None and self._heartbeat_proc.is_alive:
            self._heartbeat_proc.interrupt("hang")
        self._drop_channels()
        self.groups.clear()
        self._stream_disk.clear()
        self._stream_group.clear()
        self.iop.play_streams.clear()
        self.iop.record_streams.clear()
        for disk_proc in self.disk_processes.values():
            disk_proc.play_streams.clear()
            disk_proc.record_streams.clear()

    def reboot(self) -> None:
        """Restart the device processes after a crash (file systems kept)."""
        if self.up:
            return
        self.up = True
        for disk_proc in self.disk_processes.values():
            if not disk_proc._proc.is_alive:
                disk_proc._proc = self.sim.process(
                    disk_proc.run(), name=f"diskproc:{disk_proc.disk_id}"
                )
        if not self.iop._proc.is_alive:
            self.iop._proc = self.sim.process(self.iop.run(), name="iop")

    # -- administrative interface (§2.3.1) ------------------------------------------------

    def admin_load(
        self,
        disk_id: str,
        name: str,
        content_type: str,
        packets,
        duration_us: Optional[int] = None,
    ) -> FileHandle:
        """Pre-load content outside the measured interval (no sim time).

        ``packets`` is an iterable of
        :class:`~repro.media.content.SourcePacket`-compatible tuples.
        """
        fs = self.filesystems[disk_id]
        handle = fs.create(name, content_type)
        writer = IBTreeWriter(self.ibtree_config)
        last_us = 0
        for packet in packets:
            delivery_us, payload = packet[0], packet[1]
            kind = packet[2] if len(packet) > 2 else 0
            page = writer.feed(PacketRecord(delivery_us, payload, kind))
            last_us = delivery_us
            if page is not None:
                fs.append_block_sync(handle, page)
        pages, root = writer.finish()
        for page in pages:
            fs.append_block_sync(handle, page)
        handle.root = root
        handle.duration_us = duration_us if duration_us is not None else last_us
        return handle

    def admin_link_fast_scan(
        self, disk_id: str, name: str, ff_name: str = "", fb_name: str = ""
    ) -> None:
        """Associate fast-forward / fast-backward companions with content."""
        fs = self.filesystems[disk_id]
        handle = fs.open(name)
        if ff_name:
            if not fs.exists(ff_name):
                raise StorageError(f"fast-forward file {ff_name!r} not loaded")
            handle.fast_forward = ff_name
        if fb_name:
            if not fs.exists(fb_name):
                raise StorageError(f"fast-backward file {fb_name!r} not loaded")
            handle.fast_backward = fb_name

    def admin_sync_all(self) -> Generator:
        """Simulation process: flush every file system's metadata (§2.3.3).

        The metadata is small enough to cache entirely in memory; this
        writes it to each volume's reserved region so a power cycle can
        :meth:`admin_remount` it.
        """
        for disk_id in sorted(self.filesystems):
            yield from self.filesystems[disk_id].sync_metadata()

    def admin_remount(self) -> Generator:
        """Simulation process: re-read all metadata from disk (power cycle).

        Rebuilds each file system from its volume's serialized metadata —
        the in-memory state is discarded, exactly as a reboot would.  The
        disk processes are re-pointed at the fresh file systems.
        """
        for disk_id in sorted(self.filesystems):
            volume = self.filesystems[disk_id].volume
            mounted = yield from MsuFileSystem.mount(volume)
            self.filesystems[disk_id] = mounted
            self.disk_processes[disk_id].fs = mounted

    def disk_ids(self) -> List[str]:
        """The MSU's disk identifiers, sorted."""
        return sorted(self.filesystems)

    def free_blocks(self, disk_id: str) -> int:
        """Unreserved free blocks on one disk."""
        return self.filesystems[disk_id].allocator.free_blocks
