"""The MSU's lock-free shared-memory queues (§2.3).

"Instead of using expensive semaphore operations, the MSU processes
communicate using a shared memory queue structure that relies on the
atomicity of memory read and write instructions to produce atomic enqueue
and dequeue operations."

That structure is the classic single-producer/single-consumer ring: the
producer writes the slot then advances ``head``; the consumer reads the
slot then advances ``tail``; each index is written by exactly one side, so
plain atomic word writes suffice.  We reproduce the ring faithfully
(bounded, index-based) and add a simulation-side wakeup event so a
consumer process can sleep instead of spinning.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.sim import Event, Simulator, Store

__all__ = ["SpscQueue", "Signal"]


class Signal:
    """A coalescing wakeup flag for a single waiting process.

    Unlike a Store of tokens, multiple :meth:`set` calls while the waiter
    is busy collapse into one wakeup — the disk and network processes use
    this so "there is work" notifications never accumulate.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._event: Event = None
        self._pending = False

    def set(self) -> None:
        """Wake the waiter (or remember that it should not sleep next time)."""
        event = self._event
        if event is not None and not event.triggered:
            self._event = None
            event.succeed()
        else:
            self._pending = True

    def wait(self) -> Event:
        """Event firing at the next :meth:`set` (immediately if pending)."""
        if self._pending:
            self._pending = False
            event = Event(self.sim, name=f"signal:{self.name}")
            event.succeed()
            return event
        if self._event is None or self._event.triggered:
            self._event = Event(self.sim, name=f"signal:{self.name}")
        return self._event


class SpscQueue:
    """A bounded single-producer/single-consumer ring buffer."""

    def __init__(self, sim: Simulator, capacity: int = 64, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self._slots: List[Any] = [None] * (capacity + 1)  # one slot wasted
        self._head = 0  # producer-owned
        self._tail = 0  # consumer-owned
        self._wakeup = Store(sim, name=f"spsc:{name}")
        self.enqueued = 0
        self.dequeued = 0

    @property
    def capacity(self) -> int:
        """Usable slots."""
        return len(self._slots) - 1

    def __len__(self) -> int:
        return (self._head - self._tail) % len(self._slots)

    @property
    def full(self) -> bool:
        """True when another put would fail."""
        return len(self) == self.capacity

    def try_put(self, item: Any) -> bool:
        """Producer side: enqueue, or return False when full."""
        nxt = (self._head + 1) % len(self._slots)
        if nxt == self._tail:
            return False
        self._slots[self._head] = item
        self._head = nxt  # the single atomic "commit" write
        self.enqueued += 1
        self._wakeup.put(True)
        return True

    def put(self, item: Any) -> None:
        """Producer side: enqueue or raise (callers size queues to fit)."""
        if not self.try_put(item):
            raise OverflowError(f"SPSC queue {self.name!r} full")

    def try_get(self) -> Optional[Any]:
        """Consumer side: dequeue, or None when empty."""
        if self._tail == self._head:
            return None
        item = self._slots[self._tail]
        self._slots[self._tail] = None
        self._tail = (self._tail + 1) % len(self._slots)  # atomic commit
        self.dequeued += 1
        return item

    def wait(self):
        """Event that fires when a put has happened (may be stale; poll
        :meth:`try_get` after waking)."""
        return self._wakeup.get()

    def cancel_wait(self, event) -> None:
        """Withdraw a pending :meth:`wait` event."""
        self._wakeup.cancel(event)
