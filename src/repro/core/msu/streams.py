"""Per-stream MSU state: double buffers, schedules, positions (§2.2.1, §2.3).

A playback stream owns two page buffers: the network process sends from
the *front* buffer while the disk process loads the *back* one; when the
front drains the two swap.  A recording stream owns an IB-tree writer and
a queue of completed pages awaiting their disk slot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from collections import deque

from repro.net.protocols import ProtocolModule
from repro.storage.filesystem import FileHandle
from repro.storage.ibtree import IBTreeConfig, IBTreeReader, IBTreeWriter, PacketRecord

__all__ = [
    "StreamState", "LoadedPage", "PlayStream", "ChannelStream", "PatchStream",
    "RecordStream", "RateVariant", "DECOARSE_HOLD_PACKETS",
]

#: How many packets a stream sends per-packet after a VCR-visible
#: transition (start, pause/resume, seek, rate switch) before the IOP may
#: batch its wakeups again under coarsened pacing.
DECOARSE_HOLD_PACKETS = 64


class StreamState(enum.Enum):
    """Playback life cycle."""

    LOADING = "loading"  # waiting for the first buffer / post-seek refill
    PLAYING = "playing"
    PAUSED = "paused"
    DONE = "done"


class RateVariant(enum.Enum):
    """Which file of the rate family is playing (§2.3.1)."""

    NORMAL = "normal"
    FAST_FORWARD = "fast-forward"
    FAST_BACKWARD = "fast-backward"


@dataclass
class LoadedPage:
    """One parsed data page sitting in an MSU memory buffer."""

    page_index: int
    records: List[PacketRecord]
    next_record: int = 0

    @property
    def exhausted(self) -> bool:
        return self.next_record >= len(self.records)

    def peek(self) -> Optional[PacketRecord]:
        """The next unsent record, if any."""
        if self.exhausted:
            return None
        return self.records[self.next_record]

    def advance(self) -> None:
        self.next_record += 1


class PlayStream:
    """One playback stream: a file, two buffers and a schedule anchor."""

    #: Stream-kind flags, overridden by the multicast subclasses so the
    #: IOP/MSU paths can branch without isinstance checks.
    is_channel = False
    is_patch = False
    #: Multicast channel this stream belongs to (channel/patch streams).
    channel_id: Optional[int] = None

    def __init__(
        self,
        stream_id: int,
        group_id: int,
        handle: FileHandle,
        protocol: ProtocolModule,
        rate: float,
        display_address: Tuple[str, int],
        config: IBTreeConfig = IBTreeConfig(),
    ):
        self.stream_id = stream_id
        self.group_id = group_id
        self.handle = handle
        self.protocol = protocol
        self.rate = rate
        self.display_address = display_address
        self.config = config
        self.state = StreamState.LOADING
        self.variant = RateVariant.NORMAL
        #: The normal-rate file; ``handle`` may point at a fast-scan
        #: companion after a rate switch (§2.3.1).
        self.normal_handle = handle
        #: (page_index, record_index) to start from after a seek.
        self.skip_on_page: Optional[Tuple[int, int]] = None
        #: True while a seek is walking the IB-tree: blocks refills so the
        #: disk process cannot reload the old position meanwhile.
        self.seeking = False
        #: sim time corresponding to delivery offset 0 of the current file.
        self.anchor: Optional[float] = None
        self.pause_started: Optional[float] = None
        self.next_page = 0  # next page index the disk process should load
        self.buffers: Deque[LoadedPage] = deque()  # front = buffers[0]
        self.refill_wanted = True
        self.position_us = 0  # delivery offset of the last record sent
        self.packets_sent = 0
        self.epoch = 0  # bumped by seeks/switches to drop in-flight reads
        #: True while the file is still being appended (live ingest): the
        #: stream follows the growing tail and must not be reaped as
        #: finished when it momentarily catches up with the writer.
        self.live = False
        #: Coarsened-pacing guard (DESIGN.md §13): while positive, the IOP
        #: sends this stream strictly per packet, decrementing per send.
        #: Every VCR-visible transition re-arms it so batching never blurs
        #: the schedule around an interactive operation.
        self.decoarse_packets = DECOARSE_HOLD_PACKETS

    # -- buffer protocol (network side) -----------------------------------

    @property
    def double_buffered(self) -> bool:
        """True while both buffers are resident."""
        return len(self.buffers) >= 2

    def front(self) -> Optional[LoadedPage]:
        """The page currently being transmitted."""
        while self.buffers and self.buffers[0].exhausted:
            self.buffers.popleft()
            self.refill_wanted = True
        return self.buffers[0] if self.buffers else None

    def peek_record(self) -> Optional[PacketRecord]:
        """Next record to send, if a buffer is resident."""
        page = self.front()
        return page.peek() if page is not None else None

    def deadline(self, record: PacketRecord) -> float:
        """Absolute send deadline for ``record``."""
        if self.anchor is None:
            raise RuntimeError("stream has no anchor yet")
        return self.anchor + record.delivery_us / 1e6

    @property
    def at_end(self) -> bool:
        """All pages read and all records sent."""
        if self.live:
            # A live tail-follower is only idle, never finished; the MSU
            # clears ``live`` once the ingest drains, and the stream then
            # ends at the true end of file.
            return False
        return self.next_page >= self.handle.nblocks and self.front() is None

    # -- buffer protocol (disk side) ----------------------------------------

    def wants_page(self) -> bool:
        """Whether the disk process should load another page."""
        return (
            self.state is not StreamState.DONE
            and not self.seeking
            and len(self.buffers) < 2
            and self.next_page < self.handle.nblocks
        )

    def attach_page(self, epoch: int, page_index: int, records: List[PacketRecord]) -> None:
        """Disk process delivers a parsed page (dropped if from a stale epoch)."""
        if epoch != self.epoch:
            return
        page = LoadedPage(page_index, records)
        if self.skip_on_page is not None and self.skip_on_page[0] == page_index:
            page.next_record = self.skip_on_page[1]
            self.skip_on_page = None
        self.buffers.append(page)

    # -- schedule control -----------------------------------------------------

    def start(self, now: float, first_delivery_us: int) -> None:
        """Anchor the schedule so the first record is due now."""
        self.anchor = now - first_delivery_us / 1e6
        self.state = StreamState.PLAYING

    def pause(self, now: float) -> None:
        self.state = StreamState.PAUSED
        self.pause_started = now
        self.decoarse_packets = DECOARSE_HOLD_PACKETS

    def resume(self, now: float) -> None:
        if self.state is not StreamState.PAUSED:
            # A "play" can land while the stream is LOADING (mid-seek, or
            # right after a channel downgrade) or already playing/done.
            # Only PAUSED streams have a schedule to restart; promoting a
            # LOADING stream here would hand the IOP a PLAYING stream
            # with no anchor.
            return
        if self.anchor is None:
            # Paused before the first buffer anchored the schedule (e.g.
            # right after a channel downgrade): back to LOADING, and the
            # IOP anchors it once buffered, as for any fresh stream.
            self.pause_started = None
            self.state = StreamState.LOADING
            return
        if self.pause_started is not None:
            self.anchor += now - self.pause_started
            self.pause_started = None
        self.state = StreamState.PLAYING
        self.decoarse_packets = DECOARSE_HOLD_PACKETS

    def flush_buffers(self) -> None:
        """Drop loaded pages (seek / rate switch) and invalidate reads."""
        self.buffers.clear()
        self.epoch += 1
        self.refill_wanted = True
        self.decoarse_packets = DECOARSE_HOLD_PACKETS

    def reader(self) -> IBTreeReader:
        """An IB-tree reader over the current file."""
        return IBTreeReader(self.handle, self.config)


class ChannelStream(PlayStream):
    """A multicast channel's shared stream: one schedule, many receivers.

    ``display_address`` is a multicast group address; the network fans
    each packet out to every subscribed member.  Subscribers join and
    leave without touching the schedule anchor — the whole point is that
    one duty-cycle slot and one paced schedule serve all of them.
    """

    is_channel = True

    def __init__(self, *args, channel_id: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        self.channel_id = channel_id
        #: viewer group_id -> (stream_id, unicast display address).
        self.subscribers: Dict[int, Tuple[int, Tuple[str, int]]] = {}
        #: Set on the first subscribe, so an emptied channel can be told
        #: apart from one whose subscribers have not attached yet.
        self.ever_subscribed = False
        #: Per-subscriber delivery accounting: one count per (packet,
        #: subscriber) pair actually fanned out.
        self.fanout_packets = 0

    def subscribe(
        self, group_id: int, stream_id: int, address: Tuple[str, int]
    ) -> None:
        self.subscribers[group_id] = (stream_id, address)
        self.ever_subscribed = True

    def unsubscribe(self, group_id: int) -> None:
        self.subscribers.pop(group_id, None)

    @property
    def idle(self) -> bool:
        """Every subscriber left after at least one had joined."""
        return self.ever_subscribed and not self.subscribers


class PatchStream(PlayStream):
    """A joiner's bounded unicast patch: pages ``[start_page, end_page)``.

    Ends as soon as the missed window has been delivered — the viewer
    then lives entirely on the multicast channel it subscribed to.  A
    late VoD joiner patches the opening prefix (``start_page`` 0); a
    rewound live viewer patches a slice of the time-shift ring and
    re-merges with the live fan-out the same way.
    """

    is_patch = True

    def __init__(
        self, *args, end_page: int = 0, channel_id: int = 0,
        start_page: int = 0, **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.channel_id = channel_id
        self.end_page = min(max(1, end_page), self.handle.nblocks)
        if start_page > 0:
            # Clamp into the resident window of a ring-trimmed file.
            self.next_page = min(
                max(start_page, self.handle.trimmed), self.end_page
            )

    def wants_page(self) -> bool:
        return (
            self.state is not StreamState.DONE
            and not self.seeking
            and len(self.buffers) < 2
            and self.next_page < self.end_page
        )

    @property
    def at_end(self) -> bool:
        return self.next_page >= self.end_page and self.front() is None


class RecordStream:
    """One recording stream: a protocol context, a writer, pending pages."""

    def __init__(
        self,
        stream_id: int,
        group_id: int,
        handle: FileHandle,
        protocol: ProtocolModule,
        config: IBTreeConfig = IBTreeConfig(),
    ):
        self.stream_id = stream_id
        self.group_id = group_id
        self.handle = handle
        self.protocol = protocol
        self.config = config
        self.writer = IBTreeWriter(config)
        self.context: Dict = protocol.new_context()
        self.started: Optional[float] = None
        self.pending_pages: Deque[bytes] = deque()
        self.finishing = False
        self.finished = False
        self._final_root: Optional[Tuple[int, int, int]] = None
        self.packets_received = 0
        self.last_delivery_us = 0

    def accept(self, payload: bytes, now: float) -> None:
        """Record one arriving packet (assigns its delivery time)."""
        if self.started is None:
            self.started = now
        arrival_us = int((now - self.started) * 1e6)
        kind = self.protocol.classify(payload, self.context)
        delivery_us = self.protocol.delivery_time_us(payload, arrival_us, self.context)
        # Guard against clock skew between header timestamps and arrivals:
        # delivery offsets are non-decreasing in the IB-tree.
        delivery_us = max(delivery_us, self.last_delivery_us)
        self.last_delivery_us = delivery_us
        page = self.writer.feed(PacketRecord(delivery_us, payload, kind))
        self.packets_received += 1
        if page is not None:
            self.pending_pages.append(page)

    def begin_finish(self) -> None:
        """Client quit: emit trailer pages and mark for completion."""
        if self.finishing:
            return
        self.finishing = True
        pages, root = self.writer.finish()
        self.pending_pages.extend(pages)
        # The root references the trailer pages just queued; it is only
        # installed once they are actually on disk (commit_root), so a
        # crash mid-drain never leaves metadata pointing past EOF.
        self._final_root = root

    def commit_root(self) -> None:
        """Install the tree root: every page it references is on disk."""
        self.handle.root = self._final_root

    def abort(self) -> None:
        """No space for the remaining pages: truncate the recording here.

        The pages already on disk stay readable; the root is withheld
        (it would reference pages that never landed) and the normal
        drain path completes the stream as a short recording.
        """
        self.finishing = True
        self.pending_pages.clear()
        self._final_root = None

    @property
    def drained(self) -> bool:
        """True once every page has been handed to the disk process."""
        return self.finishing and not self.pending_pages
