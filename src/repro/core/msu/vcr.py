"""VCR command engine: pause, play, seek, fast scans (§2.1, §2.3.1).

Seeks traverse the IB-tree's internal pages (simulated disk reads) and the
stream then waits for its next duty-cycle slot while the disk process
refills its buffers — the paper's "few seconds of delay".

Fast forward/backward switch the stream to an offline-filtered companion
file (§2.3.1): the MSU "seeks to the frame in the fast forward file
corresponding to the current frame of the normal rate file".  The
correspondence is by content fraction — a fast-backward file stores the
content in reverse, so its position axis is flipped.
"""

from __future__ import annotations

from typing import Generator

from repro.core.msu.streams import PlayStream, RateVariant, StreamState
from repro.errors import VCRError
from repro.storage.filesystem import MsuFileSystem

__all__ = ["content_fraction", "entry_position_us", "seek_stream", "switch_variant"]


def content_fraction(stream: PlayStream) -> float:
    """Fraction of the underlying *content* the stream has reached."""
    duration = max(1, stream.handle.duration_us)
    frac = min(1.0, stream.position_us / duration)
    if stream.variant is RateVariant.FAST_BACKWARD:
        return 1.0 - frac
    return frac


def entry_position_us(handle, variant: RateVariant, fraction: float) -> int:
    """Position in ``handle``'s time axis for a content ``fraction``."""
    fraction = min(1.0, max(0.0, fraction))
    if variant is RateVariant.FAST_BACKWARD:
        fraction = 1.0 - fraction
    return int(fraction * handle.duration_us)


def seek_stream(stream: PlayStream, target_us: int) -> Generator:
    """Simulation process: reposition ``stream`` at ``target_us``.

    Walks the IB-tree internal pages (paying their block reads), then
    leaves the stream LOADING for the disk process to refill; the network
    process re-anchors the schedule once the group's buffers return.
    """
    stream.state = StreamState.LOADING
    stream.seeking = True
    stream.flush_buffers()
    try:
        position = yield from stream.reader().seek(max(0, target_us))
    finally:
        stream.seeking = False
    if position is None:
        # Past the end: park the stream at EOF; it will terminate.
        stream.next_page = stream.handle.nblocks
        stream.skip_on_page = None
        stream.state = StreamState.PLAYING
        return
    page_index, record_index = position
    stream.next_page = page_index
    stream.skip_on_page = (page_index, record_index)
    return


def switch_variant(
    stream: PlayStream, fs: MsuFileSystem, variant: RateVariant
) -> Generator:
    """Simulation process: move the stream onto another rate-family file.

    The MSU "remembers which files contain the normal rate, fast forward,
    and fast backward versions of the same content"; those links live in
    the normal file's metadata.
    """
    if stream.variant is variant:
        return
    normal = stream.normal_handle
    if variant is RateVariant.NORMAL:
        target_name = normal.name
    elif variant is RateVariant.FAST_FORWARD:
        target_name = normal.fast_forward
    else:
        target_name = normal.fast_backward
    if not target_name or not fs.exists(target_name):
        raise VCRError(
            f"content {normal.name!r} has no {variant.value} version loaded"
        )
    fraction = content_fraction(stream)
    target = fs.open(target_name)
    stream.handle = target
    stream.variant = variant
    target_us = entry_position_us(target, variant, fraction)
    yield from seek_stream(stream, target_us)
