"""The Multimedia Storage Unit (§2.3).

One process per device plus a central control process, communicating
through lock-free shared-memory queues:

* :mod:`repro.core.msu.queues` — the single-producer/single-consumer queue
  that replaces "expensive semaphore operations".
* :mod:`repro.core.msu.streams` — per-stream state: double buffers,
  schedule anchoring, position tracking.
* :mod:`repro.core.msu.disk_process` — the round-robin duty-cycle disk
  scheduler with double-buffer refill and recording write-back.
* :mod:`repro.core.msu.network_process` — the paced sender/receiver (the
  I/O process, IOP).
* :mod:`repro.core.msu.vcr` — VCR command engine including fast-scan file
  switching.
* :mod:`repro.core.msu.msu` — the MSU itself: hardware, file systems,
  processes and the control loop.
"""

from repro.core.msu.msu import Msu

__all__ = ["Msu"]
