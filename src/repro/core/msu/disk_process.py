"""The MSU disk process: round-robin duty-cycle scheduling (§2.2.1, §2.3.3).

One disk process per disk.  Each pass over the active streams is one duty
cycle: every playback stream missing a buffer gets one 256 KiB read slot,
and every recording stream with a completed page gets one write slot.  The
paper's MSU "services the customers for each disk in a round-robin
fashion, resulting in random seeks between disk transfers" — there is no
head scheduling here (that is the elevator experiment's job, at the
hardware layer).

With a page cache installed (the interval/prefix extension), the duty
cycle consults the cache before committing a read slot: a hit costs a
memory copy instead of a seek-plus-transfer, freeing that slot for
another stream — which is how a disk serves more concurrent viewers than
its raw bandwidth allows.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.cache.manager import MsuPageCache
from repro.errors import OutOfSpaceError
from repro.core.msu.queues import Signal
from repro.core.msu.streams import PlayStream, RecordStream
from repro.sim import Simulator
from repro.storage.filesystem import MsuFileSystem
from repro.storage.ibtree import IBTreeReader

__all__ = ["DiskProcess"]


class DiskProcess:
    """Duty-cycle scheduler for one disk's streams."""

    def __init__(
        self,
        sim: Simulator,
        fs: MsuFileSystem,
        disk_id: str,
        on_page_loaded: Optional[Callable] = None,
        on_record_drained: Optional[Callable] = None,
        on_page_written: Optional[Callable] = None,
        cache: Optional[MsuPageCache] = None,
    ):
        self.sim = sim
        self.fs = fs
        self.disk_id = disk_id
        self.play_streams: List[PlayStream] = []
        self.record_streams: List[RecordStream] = []
        self.wakeup = Signal(sim, name=f"disk:{disk_id}")
        #: Called with (stream,) when a page lands in a stream buffer.
        self.on_page_loaded = on_page_loaded
        #: Called with (stream,) when a finishing recording is fully on disk.
        self.on_record_drained = on_record_drained
        #: Called with (stream,) after each recorded page lands on disk —
        #: the live subsystem's hook for ring-window reclamation.
        self.on_page_written = on_page_written
        #: Shared MSU page cache; None reproduces the paper's no-cache MSU.
        self.cache = cache
        self.pages_read = 0  # pages that actually spent a disk slot
        self.pages_from_cache = 0  # pages served by the cache instead
        self.pages_written = 0
        self.cycles = 0
        self._proc = sim.process(self.run(), name=f"diskproc:{disk_id}")

    # -- stream management (called by the control process) --------------------

    def add_play(self, stream: PlayStream) -> None:
        """Admit a playback stream to this disk's duty cycle."""
        self.play_streams.append(stream)
        if self.cache is not None:
            # Make the stream's position visible immediately so a leader's
            # next page is already retained for it.
            self.cache.interval.observe(
                (self.disk_id, stream.handle.name),
                stream.stream_id, stream.next_page,
            )
        self.wakeup.set()

    def add_record(self, stream: RecordStream) -> None:
        """Admit a recording stream to this disk's duty cycle."""
        self.record_streams.append(stream)
        self.wakeup.set()

    def remove(self, stream) -> None:
        """Drop a stream (slot freed for others)."""
        if stream in self.play_streams:
            self.play_streams.remove(stream)
            if self.cache is not None:
                self.cache.forget_stream(stream.stream_id)
        if stream in self.record_streams:
            self.record_streams.remove(stream)

    # -- the duty cycle itself ---------------------------------------------------

    def run(self) -> Generator:
        """One read or write slot per active stream per cycle, forever."""
        while True:
            did_work = False
            # Coarsened cycles coalesce cache-hit copy delays: each hit's
            # memory-copy time accrues here and is paid in one sleep at the
            # end of the pass (same total time, one wakeup).  Pages attach
            # at the head of the window instead of spaced through it —
            # work-ahead, per the pacing contract (DESIGN.md §13).
            copy_debt = 0.0
            coalesce = self.sim.effective_batch() > 1
            for stream in list(self.play_streams):
                if not stream.wants_page():
                    continue
                epoch = stream.epoch
                page_index = stream.next_page
                stream.next_page += 1
                buf = None
                key = (self.disk_id, stream.handle.name)
                if self.cache is not None:
                    buf = self.cache.lookup(key, page_index, stream.stream_id)
                if buf is not None:
                    self.pages_from_cache += 1
                    delay = self.cache.copy_time(len(buf))
                    if delay > 0:
                        if coalesce:
                            copy_debt += delay
                        else:
                            yield self.sim.sleep(delay)
                else:
                    buf = yield from self.fs.read_file_block(
                        stream.handle, page_index
                    )
                    self.pages_read += 1
                    if self.cache is not None:
                        self.cache.fill(key, page_index, buf, stream.stream_id)
                records = IBTreeReader.parse_page(buf)
                stream.attach_page(epoch, page_index, records)
                did_work = True
                if self.on_page_loaded is not None:
                    self.on_page_loaded(stream)
            for stream in list(self.record_streams):
                if not stream.pending_pages:
                    if stream.drained and not stream.finished:
                        stream.finished = True
                        stream.commit_root()
                        self.remove(stream)
                        if self.on_record_drained is not None:
                            self.on_record_drained(stream)
                    continue
                page = stream.pending_pages.popleft()
                try:
                    yield from stream.handle.append_block(page)
                except OutOfSpaceError:
                    # One stream's exhausted space must not kill the whole
                    # disk's duty cycle: truncate that recording and let
                    # the normal drain path close it out.
                    stream.abort()
                    continue
                self.pages_written += 1
                did_work = True
                if self.on_page_written is not None:
                    self.on_page_written(stream)
                if stream.drained and not stream.finished:
                    stream.finished = True
                    stream.commit_root()
                    self.remove(stream)
                    if self.on_record_drained is not None:
                        self.on_record_drained(stream)
            if copy_debt > 0:
                yield self.sim.sleep(copy_debt)
            self.cycles += 1
            if not did_work:
                yield self.wakeup.wait()
