"""The MSU network process (IOP): paced sending and recording (§2.3, §3.2).

One process drives the delivery NIC.  On each wakeup it

1. drains arriving recording packets from the record sockets, assigning
   delivery times through the stream's protocol module;
2. starts any stream group whose members all have their first buffer
   (group members anchor together so composite streams stay in sync, §2.2);
3. sends every packet whose deadline has passed, earliest deadline first,
   recording lateness against the schedule (the Graph 1/2 metric);
4. sleeps until the next deadline — quantized to the 10 ms FreeBSD timer
   (§2.2.1) — or until the disk process or control process signals.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from repro.core.msu.queues import Signal
from repro.core.msu.streams import PlayStream, RecordStream, StreamState
from repro.storage.ibtree import KIND_CONTROL
from repro.hardware.timer import SystemTimer
from repro.metrics.lateness import LatenessCollector
from repro.net.network import UdpSocket
from repro.sim import Simulator
from repro.units import us

__all__ = ["NetworkProcess"]

#: Extra MSU bookkeeping cost per data packet sent (stream lookup, schedule
#: check, buffer advance).  Calibrated so MSU goodput is ~90 % of the
#: baseline ttcp path (§3.2.1): the send path saturates between 23 and 24
#: 1.5 Mbit/s streams, which is where Graph 1 collapses.
MSU_PACKET_OVERHEAD = us(140.0)

#: How often the IOP polls record sockets while a recording is active.
RECORD_POLL = 0.002


class NetworkProcess:
    """The I/O process for one MSU delivery interface."""

    def __init__(
        self,
        sim: Simulator,
        socket: UdpSocket,
        timer: SystemTimer,
        on_stream_done: Optional[Callable] = None,
    ):
        self.sim = sim
        self.socket = socket
        self.timer = timer
        self.wakeup = Signal(sim, name="iop")
        self.play_streams: List[PlayStream] = []
        self.record_streams: List[RecordStream] = []
        self._record_sockets: Dict[int, UdpSocket] = {}  # stream_id -> socket
        self.collector = LatenessCollector("msu")
        #: Experiment hook: while True, buffered streams stay LOADING; call
        #: :meth:`release_starts` to anchor everything at one instant (the
        #: paper's synchronized-start variable-rate test, §3.2.2).
        self.hold_starts = False
        #: Called with (stream,) when a playback stream reaches end of file.
        self.on_stream_done = on_stream_done
        #: Called with (stream,) whenever a record stream made a page.
        self.disk_kick: Optional[Callable] = None
        self.packets_sent = 0
        self._proc = sim.process(self.run(), name="iop")

    # -- stream management -------------------------------------------------

    def add_play(self, stream: PlayStream) -> None:
        """Register a playback stream (starts once its group is buffered)."""
        self.play_streams.append(stream)
        self.wakeup.set()

    def add_record(self, stream: RecordStream, socket: UdpSocket) -> None:
        """Register a recording stream and the socket its media arrives on."""
        self.record_streams.append(stream)
        self._record_sockets[stream.stream_id] = socket
        socket.notify = self.wakeup.set
        self.wakeup.set()

    def remove(self, stream) -> None:
        """Detach a finished or cancelled stream."""
        if stream in self.play_streams:
            self.play_streams.remove(stream)
        if stream in self.record_streams:
            self.record_streams.remove(stream)
            sock = self._record_sockets.pop(stream.stream_id, None)
            if sock is not None:
                sock.notify = None
        # Re-arm the loop: it may be sleeping toward the removed stream's
        # deadline (a stale target) or parked waiting on it alone.
        self.wakeup.set()

    # -- group start synchronization ----------------------------------------------

    def _group_members(self, group_id: int) -> List[PlayStream]:
        return [s for s in self.play_streams if s.group_id == group_id]

    def _stream_ready(self, stream: PlayStream) -> bool:
        if stream.seeking or stream.front() is None:
            return False
        return stream.double_buffered or stream.next_page >= stream.handle.nblocks

    def release_starts(self, stagger=None) -> None:
        """Start every held group at one instant (experiment hook).

        ``stagger`` optionally maps stream_id -> seconds to delay that
        stream's schedule; with no stagger all schedules align exactly
        (the paper's synchronized variable-rate test, §3.2.2).
        """
        self.hold_starts = False
        self._maybe_start_groups()
        if stagger:
            for stream in self.play_streams:
                offset = stagger.get(stream.stream_id, 0.0)
                if stream.anchor is not None and offset > 0:
                    stream.anchor += offset
        self.wakeup.set()

    def all_loaded(self) -> bool:
        """True when every stream has its opening buffers resident."""
        return all(self._stream_ready(s) for s in self.play_streams)

    def _maybe_start_groups(self) -> None:
        if self.hold_starts:
            return
        loading_groups = {
            s.group_id for s in self.play_streams if s.state is StreamState.LOADING
        }
        for group_id in loading_groups:
            members = self._group_members(group_id)
            # A group anchors only when every member is (re)loading and
            # buffered — a half-seeked group must not re-anchor early.
            if all(
                m.state is StreamState.LOADING and self._stream_ready(m)
                for m in members
            ):
                for member in members:
                    record = member.peek_record()
                    first_us = record.delivery_us if record else 0
                    member.start(self.sim.now, first_us)

    # -- recording ingest ----------------------------------------------------------

    def _drain_recordings(self) -> None:
        for stream in list(self.record_streams):
            sock = self._record_sockets.get(stream.stream_id)
            if sock is None:
                continue
            while True:
                dgram = sock.try_recv()
                if dgram is None:
                    break
                stream.accept(dgram.payload, self.sim.now)
            if stream.pending_pages and self.disk_kick is not None:
                self.disk_kick(stream)

    # -- transmission ------------------------------------------------------------

    def _next_due(self):
        """(stream, record, deadline) with the earliest deadline, if any."""
        best = None
        for stream in self.play_streams:
            if stream.state is not StreamState.PLAYING:
                continue
            record = stream.peek_record()
            if record is None:
                continue
            deadline = stream.deadline(record)
            if best is None or deadline < best[2]:
                best = (stream, record, deadline)
        return best

    def _burst_eligible(self, stream: PlayStream) -> bool:
        """May ``stream`` be sent coarsened this round? (DESIGN.md §13)

        Batching is reserved for undisturbed steady state: no recording
        active (record ingest interleaves with sends on an exact poll
        cadence), no recent VCR activity (``decoarse_packets`` re-arms on
        pause/resume/seek and on injected faults), no live or multicast
        flow (their receivers see wire times directly) and no pressure on
        the delivery interface's output queue.
        """
        if stream.decoarse_packets > 0 or stream.seeking:
            return False
        if stream.is_channel or stream.live:
            return False
        if self.record_streams:
            return False
        nic = self.socket.host.nic
        return nic is None or not nic.queue_pressure

    def _collect_burst(self, stream: PlayStream, batch: int):
        """Take up to ``batch`` consecutive records from the front page.

        A burst never crosses a page boundary (buffer-swap bookkeeping
        stays identical to the per-packet path) and stops short of any
        interleaved control record, which must demultiplex to its own
        port one packet at a time.  Returns ``(page, records)``; the
        caller consumes the records from that exact page object.
        """
        page = stream.front()
        if page is None:
            return None, []
        records = []
        for record in page.records[page.next_record : page.next_record + batch]:
            if record.kind == KIND_CONTROL:
                break
            records.append(record)
        return page, records

    def _reap_finished(self) -> None:
        for stream in list(self.play_streams):
            if stream.state is StreamState.PLAYING and stream.at_end:
                stream.state = StreamState.DONE
                self.remove(stream)
                if self.on_stream_done is not None:
                    self.on_stream_done(stream)

    def run(self) -> Generator:
        """The IOP main loop."""
        while True:
            self._drain_recordings()
            self._maybe_start_groups()
            # Send everything due, earliest deadline first.
            while True:
                due = self._next_due()
                if due is None or due[2] > self.sim.now + 1e-9:
                    break
                stream, record, deadline = due
                batch = self.sim.effective_batch()
                if batch > 1 and self._burst_eligible(stream):
                    page, records = self._collect_burst(stream, batch)
                    if len(records) > 1:
                        # Coarsened send (DESIGN.md §13): the first record
                        # is due now and absorbs the burst's whole
                        # bookkeeping hold — at most (n-1) packets' worth
                        # of CPU/NIC overhead of extra lateness — while
                        # every later record goes out EARLY (work-ahead).
                        # One hold and one host pass cover what would
                        # otherwise be n separate wakeups.
                        n = len(records)
                        # Claim the records up front: a seek landing while
                        # the burst is in flight flushes the buffers, and
                        # the advance must not touch the new page.
                        page.next_record += n
                        yield self.sim.sleep(n * MSU_PACKET_OVERHEAD)
                        yield from self.socket.send_many(
                            stream.display_address,
                            [r.payload for r in records],
                        )
                        now = self.sim.now
                        spacing = {
                            b.delivery_us - a.delivery_us
                            for a, b in zip(records, records[1:])
                        }
                        if len(spacing) == 1:
                            # CBR run: lateness is an arithmetic ramp —
                            # store it as one compact entry.
                            self.collector.record_ramp(
                                now - stream.deadline(records[0]),
                                -spacing.pop() / 1e6,
                                n,
                            )
                        else:
                            for r in records:
                                self.collector.record(stream.deadline(r), now)
                        stream.position_us = records[-1].delivery_us
                        stream.packets_sent += n
                        self.packets_sent += n
                        if page.exhausted and self.disk_kick is not None:
                            # Buffers swap: the drained one must refill
                            # while the other transmits (§2.2.1).
                            self.disk_kick(stream)
                        continue
                if stream.decoarse_packets > 0:
                    stream.decoarse_packets -= 1
                yield self.sim.sleep(MSU_PACKET_OVERHEAD)
                destination = stream.display_address
                if (
                    record.kind == KIND_CONTROL
                    and stream.protocol.playback_ports() > 1
                ):
                    # Interleaved control messages demultiplex back onto
                    # the protocol's control port (§2.3.2: "On output,
                    # the opposite process is performed").
                    destination = (destination[0], destination[1] + 1)
                yield from self.socket.send(destination, record.payload)
                self.collector.record(deadline, self.sim.now)
                stream.position_us = record.delivery_us
                stream.packets_sent += 1
                self.packets_sent += 1
                if stream.is_channel:
                    # One send, many receivers: account each fan-out copy
                    # against the channel (per-subscriber accounting).
                    stream.fanout_packets += len(stream.subscribers)
                page = stream.front()
                if page is not None:
                    page.advance()
                    if page.exhausted and self.disk_kick is not None:
                        # Buffers swap: the drained one must refill while
                        # the other transmits (double buffering, §2.2.1).
                        self.disk_kick(stream)
            self._reap_finished()
            # Figure out when to wake next.
            nxt = self._next_due()
            target = nxt[2] if nxt is not None else None
            if self.record_streams:
                poll = self.sim.now + RECORD_POLL
                target = poll if target is None else min(target, poll)
            wake_event = self.wakeup.wait()
            if target is None:
                yield wake_event
            else:
                tick = self.timer.next_tick_at_or_after(target)
                delay = max(0.0, tick - self.sim.now)
                yield self.sim.any_of([wake_event, self.sim.timeout(delay)])
