"""Client sessions and display ports (§2.1).

A display port associates a string name, a content type and a UDP
(address, port).  Ports for composite types are built from
previously-registered ports of the component types.  All ports belong to a
single client-Coordinator session and vanish when it drops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.database import Customer
from repro.errors import TypeMismatchError, UnknownPortError
from repro.media.content import ContentTypeRegistry

__all__ = ["DisplayPort", "Session", "SessionTable"]


@dataclass
class DisplayPort:
    """One registered display port (atomic or composite)."""

    name: str
    type_name: str
    address: Optional[Tuple[str, int]] = None  # atomic ports only
    component_ports: Tuple[str, ...] = ()  # composite ports only

    @property
    def is_composite(self) -> bool:
        return bool(self.component_ports)


@dataclass
class Session:
    """One client-Coordinator session and its ports."""

    session_id: int
    customer: Customer
    client_host: str
    ports: Dict[str, DisplayPort] = field(default_factory=dict)
    active_groups: List[int] = field(default_factory=list)

    def register_port(self, port: DisplayPort) -> None:
        self.ports[port.name] = port

    def drop_group(self, group_id: int) -> None:
        """Forget a finished or failed group (idempotent)."""
        if group_id in self.active_groups:
            self.active_groups.remove(group_id)

    def unregister_port(self, name: str) -> None:
        self.ports.pop(name, None)

    def port(self, name: str) -> DisplayPort:
        try:
            return self.ports[name]
        except KeyError:
            raise UnknownPortError(f"no display port {name!r} in session") from None

    def atomic_ports_for(
        self, port_name: str, types: ContentTypeRegistry
    ) -> List[DisplayPort]:
        """Resolve a port to its atomic members, type-checking components."""
        port = self.port(port_name)
        if not port.is_composite:
            return [port]
        members = []
        for comp_name in port.component_ports:
            comp = self.port(comp_name)
            if comp.is_composite:
                raise TypeMismatchError(
                    f"composite port {port.name!r} may not nest {comp_name!r}"
                )
            members.append(comp)
        return members


class SessionTable:
    """All live sessions, keyed by id."""

    def __init__(self):
        self._sessions: Dict[int, Session] = {}
        self._next_id = 1

    def open(self, customer: Customer, client_host: str) -> Session:
        session = Session(self._next_id, customer, client_host)
        self._sessions[session.session_id] = session
        self._next_id += 1
        return session

    def get(self, session_id: int) -> Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise UnknownPortError(f"no session {session_id}") from None

    def lookup(self, session_id: int) -> Optional[Session]:
        """Like :meth:`get` but returns None instead of raising."""
        return self._sessions.get(session_id)

    def close(self, session_id: int) -> Optional[Session]:
        """Drop a session; its port registrations are deallocated (§2.1)."""
        return self._sessions.pop(session_id, None)

    def __len__(self) -> int:
        return len(self._sessions)
