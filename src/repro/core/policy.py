"""Duty-cycle arithmetic and admission policies (§2.2.1).

"To allocate bandwidth of a single disk, we give the disk a duty cycle
which is divided into slots.  Each slot is long enough to read or write a
single disk block for one client stream.  The number of slots in a cycle
is the maximum number of block transfers that can be accomplished during
the time it takes for a single stream to transmit its block."

:class:`DutyCycleModel` computes those quantities from the calibrated
hardware parameters, and :class:`SlotAdmission` is the slot-counting
admission policy built on it — an alternative to the Coordinator's
default rate-based accounting (both are exposed so the ablation tests can
compare them against the measured Graph 1 capacity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import AdmissionError
from repro.hardware.params import DiskParams, ScsiParams
from repro.units import BLOCK_SIZE

__all__ = ["DutyCycleModel", "SlotAdmission"]


@dataclass(frozen=True)
class DutyCycleModel:
    """Slot arithmetic for one disk serving uniform-rate streams."""

    disk: DiskParams = DiskParams()
    scsi: ScsiParams = ScsiParams()
    block_size: int = BLOCK_SIZE
    #: Expected concurrent commands while streaming (drives the driver
    #: load penalty; an MSU under load keeps both disks busy).
    expected_concurrency: int = 2
    #: Whether the delivery NIC is active (it always is while streaming).
    nic_active: bool = True

    def expected_seek_time(self) -> float:
        """Mean seek for uniformly random block addresses.

        For uniform independent positions E[sqrt(|x - y|)] over the unit
        interval is 8/15 ~ 0.533, applied to the sqrt seek curve.
        """
        return self.disk.seek_min + self.disk.seek_max_extra * (8.0 / 15.0)

    def block_service_time(self) -> float:
        """Expected time for one 256 KiB slot under streaming load."""
        seek = self.expected_seek_time()
        rotation = self.disk.avg_rotational_latency
        transfer = self.block_size / self.disk.media_rate
        others = max(0, self.expected_concurrency - 1)
        penalty = self.scsi.per_command_load_penalty * others**0.5
        if self.nic_active:
            penalty += self.scsi.nic_active_base
            penalty += self.scsi.nic_active_penalty * others**0.5
        return seek + rotation + self.scsi.command_overhead + transfer + penalty

    def cycle_length(self, stream_rate: float) -> float:
        """Seconds a stream takes to transmit one block (the duty cycle)."""
        if stream_rate <= 0:
            raise ValueError(f"non-positive stream rate {stream_rate}")
        return self.block_size / stream_rate

    def slots(self, stream_rate: float) -> int:
        """Block transfers one disk completes per duty cycle (§2.2.1)."""
        return max(1, int(self.cycle_length(stream_rate) // self.block_service_time()))

    def startup_delay_bound(self, stream_rate: float, striped_disks: int = 1) -> float:
        """Worst-case wait for a first disk slot.

        Non-striped: at most one duty cycle.  Striped over N disks the
        cycle covers all disks, so the bound is N times longer — the
        §2.3.3 VCR-latency argument against striping.
        """
        if striped_disks < 1:
            raise ValueError("striped_disks must be >= 1")
        return self.cycle_length(stream_rate) * striped_disks


class SlotAdmission:
    """Slot-counting admission for uniform-rate streams on one disk."""

    def __init__(self, model: DutyCycleModel, stream_rate: float):
        self.model = model
        self.stream_rate = stream_rate
        self.capacity = model.slots(stream_rate)
        self._used: Dict[int, str] = {}
        self._next = 0

    @property
    def used_slots(self) -> int:
        """Slots currently assigned to streams."""
        return len(self._used)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._used)

    def admit(self, owner: str = "") -> int:
        """Assign one slot; raises :class:`AdmissionError` when full."""
        if self.free_slots <= 0:
            raise AdmissionError(
                f"duty cycle full: {self.capacity} slots of "
                f"{self.model.block_service_time() * 1000:.0f} ms each"
            )
        slot = self._next
        self._next += 1
        self._used[slot] = owner
        return slot

    def release(self, slot: int) -> None:
        """Return a slot to the cycle."""
        if slot not in self._used:
            raise AdmissionError(f"slot {slot} is not assigned")
        del self._used[slot]
