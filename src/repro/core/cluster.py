"""Cluster assembly: Figure 1 in code.

A :class:`CalliopeCluster` wires up a Coordinator machine, N MSUs, the
intra-server Ethernet and the FDDI delivery network, and provides the
administrative helpers experiments and examples share: pre-loading
content, installing fast-scan companions and connecting clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.cache.manager import CacheConfig
from repro.core.coordinator import Coordinator
from repro.edge.proxy import EdgeConfig, EdgeProxy
from repro.core.msu.msu import Msu
from repro.errors import CalliopeError
from repro.failover import FailoverConfig
from repro.hardware.params import MachineParams
from repro.live.manager import LiveConfig
from repro.media.content import ContentType
from repro.media.filtering import make_fast_backward, make_fast_forward
from repro.media.mpeg import packetize_cbr
from repro.multicast import MulticastConfig
from repro.net.network import ControlChannel, Network
# Module-direct import: the repro.recovery package pulls in repro.core
# for reconciliation, so going through its __init__ here would cycle.
from repro.recovery.journal import JournalStore, RecoveryConfig
from repro.sim import Simulator
from repro.storage.ibtree import IBTreeConfig
from repro.units import ms

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scaleout import ScaleOutConfig
    from repro.scaleout.standby import StandbyCoordinator, TakeoverOutcome

__all__ = ["ClusterConfig", "CalliopeCluster"]


@dataclass
class ClusterConfig:
    """Shape of a Calliope installation."""

    n_msus: int = 1
    #: SCSI topology per MSU (the evaluation testbed: 2 disks, one HBA).
    disks_per_hba: Tuple[int, ...] = (2,)
    #: Intra-server network message latency (Ethernet RPC).
    intra_latency: float = ms(1.0)
    #: Delivery network latency (FDDI).
    delivery_latency: float = ms(0.5)
    types: Optional[List[ContentType]] = None
    ibtree_config: IBTreeConfig = field(default_factory=IBTreeConfig)
    #: Build striped MSUs (the §2.3.3 alternative layout) instead of the
    #: paper's per-disk file systems.
    striped_msus: bool = False
    #: Give every MSU an interval/prefix page cache (extension); None
    #: reproduces the paper's deliberate no-cache design (§2.3.3).
    cache: Optional[CacheConfig] = None
    #: Heartbeat detection + stream migration (extension); None
    #: reproduces the paper's TCP-break-only failure handling (§2.2).
    failover: Optional[FailoverConfig] = field(default_factory=FailoverConfig)
    #: Batched multicast channels + patching streams (extension); None
    #: reproduces the paper's one-unicast-stream-per-viewer delivery.
    multicast: Optional[MulticastConfig] = None
    #: Coordinator WAL + snapshots + MSU-state reconciliation (extension);
    #: None reproduces the paper's unrecoverable Coordinator.
    recovery: Optional[RecoveryConfig] = field(default_factory=RecoveryConfig)
    #: Edge proxy tier — popularity-aware prefix caches between the MSUs
    #: and the clients (extension); None keeps the paper's two-tier shape.
    edge: Optional[EdgeConfig] = None
    #: Live-TV tier (EPG lineup, channel ingest, rewind-live); None
    #: keeps the server pure video-on-demand.
    live: Optional[LiveConfig] = None
    #: Coordinator scale-out — warm standby + sharded admission
    #: (extension); None keeps the paper's single serial Coordinator.
    scaleout: Optional["ScaleOutConfig"] = None
    seed: int = 42


class CalliopeCluster:
    """A whole installation: Coordinator + MSUs + both networks."""

    def __init__(self, sim: Simulator, config: ClusterConfig = ClusterConfig()):
        self.sim = sim
        self.config = config
        self.intra_net = Network(sim, "intra", latency=config.intra_latency)
        self.delivery_net = Network(sim, "delivery", latency=config.delivery_latency)
        self.coordinator = Coordinator(
            sim, types=config.types, block_size=config.ibtree_config.data_page_size,
            failover=config.failover, multicast=config.multicast,
            edge=config.edge, live=config.live,
        )
        self.journal: Optional[JournalStore] = None
        self.coordinator_down = False
        if config.recovery is not None:
            self.journal = JournalStore(
                snapshot_every=config.recovery.snapshot_every
            )
            self.coordinator.attach_journal(self.journal)
        #: Warm standbys tailing the journal (repro.scaleout).
        self.standbys: List["StandbyCoordinator"] = []
        #: Completed standby promotions, in order.
        self.takeovers: List["TakeoverOutcome"] = []
        #: Sim time the current/most recent leader actually died.
        self.leader_lost_at = 0.0
        self._beacon_running = False
        if config.scaleout is not None:
            # Even a single shard gets the escrow/service machinery, so
            # a 1-shard run is an honest baseline for the E24 scaling.
            self._enable_shards(self.coordinator)
        heartbeat_period = (
            config.failover.heartbeat.period if config.failover is not None else 0.0
        )
        self.msus: List[Msu] = []
        self._client_channels: Dict[str, ControlChannel] = {}
        self._vcr_listeners: Dict[str, object] = {}
        #: group_id -> channel, populated as MSUs open VCR connections.
        self.vcr_channels: Dict[int, ControlChannel] = {}
        for i in range(config.n_msus):
            msu = Msu(
                sim,
                f"msu{i}",
                self.delivery_net,
                machine_params=MachineParams(
                    name=f"msu{i}", disks_per_hba=config.disks_per_hba
                ),
                seed=config.seed + i,
                ibtree_config=config.ibtree_config,
                client_channel_factory=self._make_vcr_channel,
                striped=config.striped_msus,
                cache_config=config.cache,
                heartbeat_period=heartbeat_period,
            )
            channel = ControlChannel(
                sim, self.coordinator.name, msu.name,
                latency=config.intra_latency, network=self.intra_net,
            )
            self.coordinator.attach_msu(channel)
            msu.attach_coordinator(channel)
            self.msus.append(msu)
        self.edges: List[EdgeProxy] = []
        if config.edge is not None:
            for i in range(config.edge.n_edges):
                proxy = EdgeProxy(
                    sim, f"edge{i}", self.delivery_net, config.edge
                )
                self.edges.append(proxy)
                self._connect_edge(proxy)
        if config.scaleout is not None and config.scaleout.standby:
            self.create_standby()

    # -- coordinator scale-out (repro.scaleout) -----------------------------------

    def _enable_shards(self, coord: Coordinator) -> None:
        """Install the configured escrow split on ``coord``."""
        scaleout = self.config.scaleout
        coord.enable_shards(
            scaleout.shards,
            refill_fraction=scaleout.refill_fraction,
            service_time=scaleout.admit_service_time,
        )

    def create_standby(self) -> "StandbyCoordinator":
        """Bring up a warm standby tailing this cluster's journal."""
        if self.journal is None:
            raise CalliopeError("warm standby requires the recovery journal")
        # Imported here: repro.scaleout pulls recovery/replay back in,
        # so a module-level import would be circular.
        from repro.scaleout.standby import StandbyCoordinator

        scaleout = self.config.scaleout
        standby = StandbyCoordinator(
            self,
            poll=scaleout.standby_poll if scaleout is not None else 0.1,
            leader_heartbeat=(
                scaleout.leader_heartbeat if scaleout is not None else None
            ),
            name=f"coordinator-standby{len(self.standbys)}",
        )
        standby.shadow.tracer = self.coordinator.tracer
        standby.shadow.on_capacity_lost = self.coordinator.on_capacity_lost
        self.standbys.append(standby)
        if not self._beacon_running:
            self._beacon_running = True
            self.sim.process(self._leader_beacon(), name="leader.beacon")
        return standby

    def _leader_beacon(self):
        """The acting leader advertises liveness to every standby.

        A crashed leader simply stops beating; each standby's watchdog
        turns the silence into a dead verdict after its configured
        detection latency — no oracle shortcut.
        """
        scaleout = self.config.scaleout
        period = (
            scaleout.leader_heartbeat.period if scaleout is not None else 0.1
        )
        while True:
            yield self.sim.timeout(period)
            if self.coordinator_down or self.coordinator.dead:
                continue
            for standby in self.standbys:
                standby.leader_beat()

    def promote_standby(self, standby: "StandbyCoordinator") -> None:
        """Swap ``standby``'s shadow in as the acting Coordinator.

        Called by the standby's own takeover path (detector verdict) or
        directly by tests.  Unlike :meth:`restart_coordinator` there is
        no ``begin_recovery`` window: the shadow trusts its tailed
        tables, re-opens admissions immediately and reconciles each MSU
        lazily against its next heartbeat's stream positions.
        """
        coord = standby.shadow
        coord.replayed_records = standby.records_tailed
        coord.activate()
        self.standbys.remove(standby)
        self.coordinator = coord
        self.coordinator_down = False
        coord.attach_journal(self.journal)
        if coord.shards is not None:
            # Now the leader: escrow moves originate (and journal) here.
            coord.shards.journal = coord._journal
        up_msus = []
        for msu in self.msus:
            if not msu.up:
                continue
            channel = ControlChannel(
                self.sim, coord.name, msu.name,
                latency=self.config.intra_latency, network=self.intra_net,
            )
            coord.attach_msu(channel)
            msu.attach_coordinator(channel)
            up_msus.append(msu.name)
        coord.arm_heartbeat_reconcile(up_msus)
        # An MSU that died while the old leader was already gone never
        # journaled its loss, so the replayed database still schedules
        # it.  Declare it failed now — the warm equivalent of the cold
        # restart's missing-StateReport rule; if the machine is merely
        # rebooting it will say MsuHello and re-register.
        up = set(up_msus)
        for msu_name, state in list(coord.db.msus.items()):
            if state.available and msu_name not in up:
                coord._msu_failed(msu_name, reason="takeover")
        for proxy in self.edges:
            if not proxy.down:
                self._connect_edge(proxy)
        coord._retry_queue()

    def _connect_edge(self, proxy: EdgeProxy) -> None:
        """Wire one edge proxy to the (current) Coordinator."""
        channel = ControlChannel(
            self.sim, self.coordinator.name, proxy.name,
            latency=self.config.intra_latency, network=self.intra_net,
        )
        self.coordinator.attach_edge(channel)
        proxy.attach_coordinator(channel)

    # -- client plumbing ----------------------------------------------------------

    def _make_vcr_channel(self, client_host: str, group_id: int) -> ControlChannel:
        """MSUs call this to open the per-group client control stream."""
        msu_end = f"group{group_id}.msu"
        channel = ControlChannel(
            self.sim, msu_end, client_host, latency=self.config.delivery_latency
        )
        self.vcr_channels[group_id] = channel
        listener = self._vcr_listeners.get(client_host)
        if listener is not None:
            listener(group_id, channel, msu_end)
        return _MsuEndView(channel, msu_end)

    def register_vcr_listener(self, client_host: str, callback) -> None:
        """Clients register to be handed their incoming VCR channels."""
        self._vcr_listeners[client_host] = callback

    def connect_client(self, client_host: str) -> ControlChannel:
        """Open the client <-> Coordinator session channel."""
        if self.coordinator_down:
            raise CalliopeError("coordinator is down")
        channel = ControlChannel(
            self.sim, client_host, self.coordinator.name,
            latency=self.config.intra_latency, network=self.intra_net,
        )
        self.coordinator.connect_client(channel, client_host)
        self._client_channels[client_host] = channel
        return channel

    # -- failure injection ---------------------------------------------------------

    def fail_msu(self, index: int, crash: bool = False) -> None:
        """Take an MSU down (failure injection).

        ``crash=False`` breaks only the Coordinator connection (a control
        network partition); ``crash=True`` kills the whole machine: device
        processes stop and every client's VCR connection closes.  Either
        way the Coordinator sees the TCP break and marks the MSU
        unavailable (§2.2).  Disks and file systems survive — rejoining
        with :meth:`rejoin_msu` restores it to the scheduling database.
        """
        msu = self.msus[index]
        if crash:
            msu.crash()
        else:
            if msu.coordinator_channel is not None:
                msu.coordinator_channel.close()
            msu.up = False

    def hang_msu(self, index: int) -> None:
        """Freeze an MSU silently (failure injection).

        Unlike :meth:`fail_msu`, no connection breaks: the Coordinator
        learns of the loss only through missed heartbeats — the failure
        mode the failover subsystem's detector exists for.
        """
        self.msus[index].hang()

    def rejoin_msu(self, index: int) -> None:
        """Reconnect a failed MSU; it says hello and is rescheduled."""
        msu = self.msus[index]
        # A hung MSU's old control connection may still be open; retire it
        # before the fresh hello so its late break is recognizably stale.
        if msu.coordinator_channel is not None and msu.coordinator_channel.open:
            msu.coordinator_channel.close()
        msu.reboot()
        msu.up = True
        if self.coordinator_down:
            # Nobody to say hello to; restart_coordinator reconnects it.
            return
        channel = ControlChannel(
            self.sim, self.coordinator.name, msu.name,
            latency=self.config.intra_latency, network=self.intra_net,
        )
        self.coordinator.attach_msu(channel)
        msu.attach_coordinator(channel)

    def recover(self, index: int) -> None:
        """Bring a failed MSU back (alias for :meth:`rejoin_msu`)."""
        self.rejoin_msu(index)

    def fail_edge(self, index: int) -> None:
        """Kill an edge proxy (failure injection).

        Its pinned prefixes and running serves are gone; the broken
        control connection tells the Coordinator, which refunds the
        in-flight serves and drops the placement view.  Clients fall
        through to plain MSU admission until the edge returns.
        """
        self.edges[index].crash()

    def recover_edge(self, index: int) -> None:
        """Bring a crashed edge back, cold, and re-wire it."""
        proxy = self.edges[index]
        proxy.recover()
        if not self.coordinator_down:
            self._connect_edge(proxy)

    def crash_coordinator(self) -> None:
        """Kill the Coordinator machine (failure injection).

        Every control connection — MSUs, client sessions — breaks.  MSUs
        keep serving their admitted streams unsupervised; anything they
        report into the closed channels is lost (MSU-wins reconciliation
        recovers it later).  Requires the recovery journal: without it a
        Coordinator loss is, as in the paper, not recoverable.
        """
        if self.journal is None:
            raise CalliopeError("no recovery journal configured")
        if self.coordinator_down:
            return
        self.leader_lost_at = self.sim.now
        coord = self.coordinator
        coord.halt()
        for channel in list(coord._msu_channels.values()):
            if channel.open:
                channel.close()
        for channel in list(coord._session_channels.values()):
            if channel.open:
                channel.close()
        for channel in list(self._client_channels.values()):
            if channel.open:
                channel.close()
        self._client_channels.clear()
        for proxy in self.edges:
            if (
                proxy.coordinator_channel is not None
                and proxy.coordinator_channel.open
            ):
                proxy.coordinator_channel.close()
            proxy.coordinator_channel = None
        self.coordinator_down = True

    def restart_coordinator(self) -> None:
        """Cold-start a fresh Coordinator from the journal and reconcile.

        The new instance restores the last snapshot, replays the WAL
        tail, reconnects every live MSU and probes each for a
        ``StateReport``; reconciliation completes when all have answered
        (or the report grace period expires).
        """
        if self.journal is None:
            raise CalliopeError("no recovery journal configured")
        if not self.coordinator_down:
            return
        config = self.config
        old = self.coordinator
        coord = Coordinator(
            self.sim, types=config.types,
            block_size=config.ibtree_config.data_page_size,
            failover=config.failover, multicast=config.multicast,
            edge=config.edge, live=config.live,
        )
        coord.tracer = old.tracer
        coord.on_capacity_lost = old.on_capacity_lost
        if config.scaleout is not None:
            # Installed before replay so shard-grant/steal records land.
            self._enable_shards(coord)
        from repro.recovery.replay import recover

        coord.replayed_records = recover(coord, self.journal)
        self.coordinator = coord
        self.coordinator_down = False
        coord.attach_journal(self.journal)
        expected = [
            state.name for state in coord.db.msus.values() if state.available
        ]
        coord.begin_recovery(expected, config.recovery.report_grace)
        for msu in self.msus:
            if not msu.up:
                continue
            channel = ControlChannel(
                self.sim, coord.name, msu.name,
                latency=config.intra_latency, network=self.intra_net,
            )
            coord.attach_msu(channel)
            msu.attach_coordinator(channel)
        # Live edges reconnect too; each hello triggers edge-wins
        # reconciliation against the replayed placement view.
        for proxy in self.edges:
            if not proxy.down:
                self._connect_edge(proxy)

    # -- administrative helpers -----------------------------------------------------

    def msu_named(self, name: str) -> Msu:
        for msu in self.msus:
            if msu.name == name:
                return msu
        raise CalliopeError(f"no MSU named {name!r}")

    def load_content(
        self,
        name: str,
        type_name: str,
        packets: Sequence,
        msu_index: int = 0,
        disk_index: int = 0,
        duration_us: Optional[int] = None,
    ):
        """Pre-load packets as stored content and register it (admin path)."""
        msu = self.msus[msu_index]
        disk_id = msu.disk_ids()[disk_index]
        handle = msu.admin_load(disk_id, name, type_name, packets, duration_us)
        self.coordinator.admin_add_content(
            name, type_name, msu.name, disk_id,
            blocks=handle.nblocks, duration_us=handle.duration_us,
        )
        return handle

    def load_composite(
        self,
        name: str,
        type_name: str,
        component_packets: Dict[str, Sequence],
        msu_index: int = 0,
    ) -> None:
        """Pre-load a composite item: one file per component, same MSU."""
        msu = self.msus[msu_index]
        names = []
        for i, (comp_type, packets) in enumerate(sorted(component_packets.items())):
            comp_name = f"{name}.{comp_type}"
            disk_id = msu.disk_ids()[i % len(msu.disk_ids())]
            handle = msu.admin_load(disk_id, comp_name, comp_type, packets)
            self.coordinator.admin_add_content(
                comp_name, comp_type, msu.name, disk_id,
                blocks=handle.nblocks, duration_us=handle.duration_us,
            )
            names.append(comp_name)
        self.coordinator.admin_add_content(
            name, type_name, msu.name, "", components=tuple(names)
        )

    def install_fast_scans(
        self,
        name: str,
        bitstream: bytes,
        rate: float,
        packet_size: int,
        step: int = 15,
        msu_index: int = 0,
        disk_index: int = 0,
    ) -> None:
        """Run the offline filter and load ff/fb companions (§2.3.1).

        ``bitstream`` is the original MPEG-like stream that was loaded as
        ``name``; the filter parses it, selects every ``step``-th frame and
        the companions are loaded and linked through the admin interface.
        """
        msu = self.msus[msu_index]
        disk_id = msu.disk_ids()[disk_index]
        ff_stream, _ = make_fast_forward(bitstream, step)
        fb_stream, _ = make_fast_backward(bitstream, step)
        ff_name, fb_name = f"{name}.ff", f"{name}.fb"
        msu.admin_load(disk_id, ff_name, "mpeg1", packetize_cbr(ff_stream, rate, packet_size))
        msu.admin_load(disk_id, fb_name, "mpeg1", packetize_cbr(fb_stream, rate, packet_size))
        msu.admin_link_fast_scan(disk_id, name, ff_name, fb_name)


class _MsuEndView:
    """Presents a VCR channel to the MSU under the MSU's own name.

    The MSU sends and receives as ``msu.name``; the wire end is the
    per-group alias the cluster created.  This keeps the channel API
    symmetric without the MSU knowing its alias.
    """

    def __init__(self, channel: ControlChannel, msu_end: str):
        self._channel = channel
        self._msu_end = msu_end

    @property
    def open(self) -> bool:
        return self._channel.open

    def send(self, _sender: str, message, nbytes: int = 128) -> None:
        self._channel.send(self._msu_end, message, nbytes)

    def recv(self, _end: str):
        return self._channel.recv(self._msu_end)

    def close(self) -> None:
        self._channel.close()
