"""Admission control and the scheduling queue (§2.2).

"When Calliope receives a read request, the Coordinator finds an MSU with
a disk that both contains the requested content and has enough bandwidth
available to satisfy the request. ... If a client's request cannot be
satisfied, the Coordinator queues the request until an MSU with the
necessary resources becomes available."

For recording the Coordinator must find disk *space* as well as bandwidth,
sized from the client's length estimate and the content type's storage
consumption rate; unused space returns when the recording completes.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import asdict, dataclass
from typing import Callable, Deque, Optional, Tuple

from repro.core.database import AdminDatabase, ContentEntry, DiskState, MsuState
from repro.media.content import ContentType

__all__ = [
    "Allocation",
    "AdmissionControl",
    "allocation_state",
    "allocation_from_state",
]


@dataclass
class Allocation:
    """Resources granted to one stream: undo-able bookkeeping."""

    msu_name: str
    disk_id: str
    bandwidth: float
    reserved_blocks: int = 0
    #: Content the stream plays (release decrements its active count).
    content_name: str = ""
    #: True when the grant charges the MSU's cache budget instead of the
    #: disk's raw bandwidth (an interval-cache leader covers the stream).
    cache_covered: bool = False
    #: Non-empty when the grant rides the zero-disk-cost edge lane: the
    #: charge lands on this edge proxy's uplink book and touches no MSU
    #: resource at all (``msu_name``/``disk_id`` are then empty).
    edge_name: str = ""


def allocation_state(alloc: Allocation) -> dict:
    """JSON-safe image of one allocation (journal/snapshot format)."""
    return asdict(alloc)


def allocation_from_state(state: dict) -> Allocation:
    """Rebuild an allocation from its :func:`allocation_state` image."""
    return Allocation(**state)


class AdmissionControl:
    """Bandwidth/space accounting over the admin database."""

    def __init__(self, db: AdminDatabase, block_size: int):
        self.db = db
        self.block_size = block_size
        #: Requests waiting for resources (the paper's scheduling queue).
        self.queue: Deque = deque()
        self.admitted = 0
        self.queued = 0
        self.rejected = 0
        #: Admissions served from an MSU page cache rather than a disk
        #: slot (the popularity-aware second chance of place_read).
        self.cache_admitted = 0
        #: Grants that rode the zero-disk-cost edge lane.
        self.edge_admitted = 0
        #: The edge tier's uplink books (a PlacementManager when edges
        #: are configured): must expose ``charge``/``release``/``feasible``.
        #: None means no edge tier — place_edge then always declines.
        self.edge_books = None
        #: Recovery hook: ``callback(kind, payload)`` fired for every
        #: charge/release so the write-ahead log can replay the books
        #: mutation-for-mutation on restart.  None disables it.
        self.on_journal: Optional[Callable[[str, dict], None]] = None
        #: Books observer (repro.scaleout's escrowed ShardSet): duck type
        #: with ``on_charge(alloc)``/``on_release(alloc)``/
        #: ``on_release_msu(name)``, called in lockstep with every disk
        #: bandwidth mutation so a sharded escrow split stays an exact
        #: decomposition of these books.  None disables it.
        self.observer = None

    def _journal(self, kind: str, payload: dict) -> None:
        if self.on_journal is not None:
            self.on_journal(kind, payload)

    # -- queueing -----------------------------------------------------------

    def enqueue(self, request) -> None:
        """Park a request, keeping the queue sorted by priority band.

        ``request.priority`` (default normal) orders the queue: resume
        tickets of interrupted streams drain first, then degraded-mode
        single-copy requests, then everything else.  Within a band the
        order stays FIFO, which is the paper's behavior when no failure
        is in progress (every request is then normal priority).
        """
        priority = getattr(request, "priority", 2)
        index = len(self.queue)
        for i, queued in enumerate(self.queue):
            if getattr(queued, "priority", 2) > priority:
                index = i
                break
        self.queue.insert(index, request)
        self.queued += 1

    # -- placement ----------------------------------------------------------

    def place_read(
        self,
        entry: ContentEntry,
        ctype: ContentType,
        msu_pin: Optional[str] = None,
        allow_cache: bool = True,
    ) -> Optional[Allocation]:
        """Admit a playback of ``entry``; None when resources are short.

        Each copy of the content lives wholly on one disk (no striping);
        with replicas present the least-loaded feasible copy is used.
        ``msu_pin`` restricts placement to one MSU — composite members
        must share a machine (§2.2).

        When no copy has raw disk bandwidth left, a *cache-covered*
        second chance applies (extension): a location where the title is
        already playing has an interval-cache leader whose retained pages
        can serve a trailing stream, so the grant charges the MSU's
        advertised cache bandwidth instead of the exhausted disk.  This
        is what lets popular content exceed its home disk's duty-cycle
        capacity without a replica.
        """
        rate = ctype.bandwidth_rate
        best = None
        best_cached = None
        for msu_name, disk_id in entry.locations():
            if msu_pin is not None and msu_name != msu_pin:
                continue
            state = self.db.msus.get(msu_name)
            if state is None or not state.available:
                continue
            disk = state.disks.get(disk_id)
            if disk is None:
                continue
            if state.delivery_free() < rate:
                continue
            if disk.bandwidth_free() >= rate:
                load = disk.bandwidth_used / disk.bandwidth_capacity
                if best is None or load < best[0]:
                    best = (load, state, disk)
            elif (
                allow_cache
                and state.cache_free() >= rate
                and entry.active_at((msu_name, disk_id)) > 0
            ):
                cache_load = state.cache_used / state.cache_capacity
                if best_cached is None or cache_load < best_cached[0]:
                    best_cached = (cache_load, state, disk)
        cache_covered = False
        if best is None:
            if best_cached is None:
                return None
            best = best_cached
            cache_covered = True
        _, state, disk = best
        if cache_covered:
            self.cache_admitted += 1
        self.admitted += 1
        return self.apply(
            Allocation(
                state.name, disk.disk_id, rate,
                content_name=entry.name, cache_covered=cache_covered,
            )
        )

    def place_channel(
        self,
        entry: ContentEntry,
        ctype: ContentType,
        msu_pin: Optional[str] = None,
    ) -> Optional[Allocation]:
        """Admit a multicast channel: one real disk slot, one delivery flow.

        A channel is the *leader* every later cache/patch grant leans on,
        so it must own raw disk bandwidth — the cache-covered second
        chance of :meth:`place_read` does not apply.
        """
        return self.place_read(entry, ctype, msu_pin=msu_pin, allow_cache=False)

    def place_patch(
        self,
        entry: ContentEntry,
        ctype: ContentType,
        msu_name: str,
        disk_id: str,
        prefix_covered: bool = False,
    ) -> Optional[Allocation]:
        """Admit a late joiner's bounded patch on the channel's MSU/disk.

        The patch is a short unicast flow of the title's opening pages.
        When the prefix cache pins those pages (``prefix_covered``) the
        charge lands on the MSU's cache budget and costs no disk slot;
        otherwise it takes disk bandwidth like any read, with the usual
        interval-cache second chance (the channel itself is an active
        leader on this location).  Either way the patch occupies a
        delivery-network flow until it drains and is refunded.
        """
        rate = ctype.bandwidth_rate
        state = self.db.msus.get(msu_name)
        if state is None or not state.available:
            return None
        disk = state.disks.get(disk_id)
        if disk is None or state.delivery_free() < rate:
            return None
        cache_covered = False
        if prefix_covered and state.cache_free() >= rate:
            cache_covered = True
        elif disk.bandwidth_free() >= rate:
            cache_covered = False
        elif (
            state.cache_free() >= rate
            and entry.active_at((msu_name, disk_id)) > 0
        ):
            cache_covered = True
        else:
            return None
        if cache_covered:
            self.cache_admitted += 1
        self.admitted += 1
        return self.apply(
            Allocation(
                msu_name, disk_id, rate,
                content_name=entry.name, cache_covered=cache_covered,
            )
        )

    def place_edge(
        self,
        entry: ContentEntry,
        ctype: ContentType,
        edge_name: str,
    ) -> Optional[Allocation]:
        """Admit an edge-covered serve: the zero-disk-cost lane.

        The grant charges the edge proxy's uplink only — no MSU disk
        slot, no MSU delivery flow, no cache budget, and deliberately no
        ``note_active`` bump (the edge holds no interval-cache leader a
        follower could trail on a disk).  It still flows through
        :meth:`apply`/:meth:`release`, so the journal, replay and audits
        see it like any other grant.
        """
        if self.edge_books is None:
            return None
        rate = ctype.bandwidth_rate
        if not self.edge_books.feasible(edge_name, rate):
            return None
        self.edge_admitted += 1
        return self.apply(
            Allocation(
                "", "", rate, content_name=entry.name, edge_name=edge_name
            )
        )

    def charge_direct(
        self,
        entry: Optional[ContentEntry],
        rate: float,
        msu_name: str,
        disk_id: str,
    ) -> Allocation:
        """Charge a unicast slot without a feasibility check.

        Used when a viewer *downgrades* from a multicast channel to a
        private stream: the MSU is already delivering to them, so the
        books must follow the stream even if it briefly overcommits the
        disk (the duty cycle absorbs it; admission stops new entrants).
        """
        name = entry.name if entry is not None else ""
        return self.apply(Allocation(msu_name, disk_id, rate, content_name=name))

    def place_record(
        self,
        ctype: ContentType,
        estimate_seconds: float,
        msu_name: Optional[str] = None,
    ) -> Optional[Allocation]:
        """Admit a recording: needs bandwidth *and* estimated disk space.

        Picks the least-loaded (by bandwidth) qualifying disk; pinning
        ``msu_name`` supports composite recordings whose members must land
        on the same MSU (§2.2).
        """
        rate = ctype.bandwidth_rate
        blocks = self.estimate_blocks(ctype, estimate_seconds)
        best: Optional[Tuple[float, MsuState, DiskState]] = None
        for state in self.db.available_msus():
            if msu_name is not None and state.name != msu_name:
                continue
            if state.delivery_free() < rate:
                continue
            for disk in state.disks.values():
                if disk.bandwidth_free() < rate or disk.free_blocks < blocks:
                    continue
                load = disk.bandwidth_used / disk.bandwidth_capacity
                if best is None or load < best[0]:
                    best = (load, state, disk)
        if best is None:
            return None
        _, state, disk = best
        self.admitted += 1
        return self.apply(
            Allocation(state.name, disk.disk_id, rate, reserved_blocks=blocks)
        )

    def estimate_blocks(self, ctype: ContentType, estimate_seconds: float) -> int:
        """Disk blocks a recording of this type/length will consume (§2.2)."""
        nbytes = ctype.storage_rate * max(0.0, estimate_seconds)
        return max(1, math.ceil(nbytes / self.block_size)) + 1  # +1 trailer

    # -- charge / release --------------------------------------------------------

    def apply(self, alloc: Allocation, reserve_blocks: bool = True) -> Allocation:
        """Charge ``alloc`` to the books — the exact inverse of release.

        The placement methods above decide *what* to grant; this is the
        single point where a grant lands on the books, so the recovery
        journal observes every charge and can replay it verbatim on a
        Coordinator restart.  ``reserve_blocks=False`` skips the recording
        space debit — the reconciliation path rebuilds free-block counts
        from MSU allocator truth instead.

        Edge-lane grants (``alloc.edge_name``) touch no MSU book: the
        whole charge routes to the edge tier's uplink accounting.
        """
        if alloc.edge_name:
            if self.edge_books is not None:
                self.edge_books.charge(alloc)
            self._journal("charge", {"alloc": allocation_state(alloc)})
            return alloc
        if self.observer is not None:
            # Before any book mutation: the escrow may journal grant/steal
            # records, and a snapshot triggered by those appends must not
            # capture a half-applied charge.
            self.observer.on_charge(alloc)
        if alloc.content_name:
            entry = self.db.contents.get(alloc.content_name)
            if entry is not None:
                entry.note_active((alloc.msu_name, alloc.disk_id), +1)
        state = self.db.msus.get(alloc.msu_name)
        if state is not None:
            state.delivery_used += alloc.bandwidth
            state.active_streams += 1
            if alloc.cache_covered:
                state.cache_used += alloc.bandwidth
            disk = state.disks.get(alloc.disk_id)
            if disk is not None:
                if not alloc.cache_covered:
                    disk.bandwidth_used += alloc.bandwidth
                if alloc.reserved_blocks and reserve_blocks:
                    disk.free_blocks -= alloc.reserved_blocks
        self._journal("charge", {"alloc": allocation_state(alloc)})
        return alloc

    def release(self, alloc: Allocation, blocks_used: int = 0) -> None:
        """Return a stream's resources (and a recording's unused space).

        The journal append comes *after* the books move (like ``apply``):
        the append may trigger a snapshot install, and a snapshot taken
        mid-release would capture still-charged books while truncating
        the very record that undoes them.
        """
        if alloc.edge_name:
            if self.edge_books is not None:
                self.edge_books.release(alloc)
        else:
            if self.observer is not None:
                self.observer.on_release(alloc)
            self._release_books(alloc, blocks_used)
        self._journal(
            "release",
            {"alloc": allocation_state(alloc), "blocks_used": blocks_used},
        )

    def _release_books(self, alloc: Allocation, blocks_used: int) -> None:
        if alloc.content_name:
            entry = self.db.contents.get(alloc.content_name)
            if entry is not None:
                entry.note_active((alloc.msu_name, alloc.disk_id), -1)
        state = self.db.msus.get(alloc.msu_name)
        if state is None:
            return
        state.delivery_used = max(0.0, state.delivery_used - alloc.bandwidth)
        state.active_streams = max(0, state.active_streams - 1)
        if alloc.cache_covered:
            state.cache_used = max(0.0, state.cache_used - alloc.bandwidth)
        disk = state.disks.get(alloc.disk_id)
        if disk is not None:
            if not alloc.cache_covered:
                disk.bandwidth_used = max(
                    0.0, disk.bandwidth_used - alloc.bandwidth
                )
            if alloc.reserved_blocks:
                unused = max(0, alloc.reserved_blocks - blocks_used)
                disk.free_blocks += unused

    # -- audit ------------------------------------------------------------------

    def audit(self, eps: float = 1e-6) -> list:
        """Book-keeping anomalies that must never occur, as strings.

        These are the one-sided safety checks that hold at *any* instant:
        no book may go negative, active-stream counters may not underflow,
        and the cache budget may not overcommit (unlike disk bandwidth,
        which ``charge_direct`` may deliberately overcommit during a
        channel downgrade).  Exact conservation against live allocations
        is only meaningful at drain and lives with the caller.
        """
        problems = []
        for state in self.db.msus.values():
            if state.delivery_used < -eps:
                problems.append(
                    f"{state.name}: delivery_used {state.delivery_used} < 0"
                )
            if state.cache_used < -eps:
                problems.append(f"{state.name}: cache_used {state.cache_used} < 0")
            if state.cache_used > state.cache_capacity + eps:
                problems.append(
                    f"{state.name}: cache_used {state.cache_used} exceeds "
                    f"capacity {state.cache_capacity}"
                )
            if state.active_streams < 0:
                problems.append(
                    f"{state.name}: active_streams {state.active_streams} < 0"
                )
            for disk in state.disks.values():
                if disk.bandwidth_used < -eps:
                    problems.append(
                        f"{state.name}/{disk.disk_id}: bandwidth_used "
                        f"{disk.bandwidth_used} < 0"
                    )
                if disk.free_blocks < 0:
                    problems.append(
                        f"{state.name}/{disk.disk_id}: free_blocks "
                        f"{disk.free_blocks} < 0"
                    )
        for entry in self.db.contents.values():
            for location, count in entry.active.items():
                if count < 0:
                    problems.append(
                        f"content {entry.name!r}: active count {count} < 0 "
                        f"at {location}"
                    )
        if self.edge_books is not None:
            for view in self.edge_books.edges.values():
                if view.uplink_used < -eps:
                    problems.append(
                        f"edge {view.name}: uplink_used {view.uplink_used} < 0"
                    )
                if view.attached and view.uplink_used > view.uplink_bps + eps:
                    problems.append(
                        f"edge {view.name}: uplink_used {view.uplink_used} "
                        f"exceeds capacity {view.uplink_bps}"
                    )
        return problems

    def release_msu(self, msu_name: str) -> None:
        """Zero the accounting of a failed MSU (its streams died with it)."""
        state = self.db.msus.get(msu_name)
        if state is None:
            return
        if self.observer is not None:
            self.observer.on_release_msu(msu_name)
        state.delivery_used = 0.0
        state.active_streams = 0
        state.cache_used = 0.0
        for disk in state.disks.values():
            disk.bandwidth_used = 0.0
        self.db.clear_active(msu_name)
        # Journaled after the wipe, like release(): a snapshot install
        # triggered by this append must observe the zeroed books.
        self._journal("release-msu", {"name": msu_name})
