"""Structured event tracing for server-side observability.

A :class:`Tracer` attached to a Coordinator or MSU records stream
life-cycle events (scheduled, started, VCR, terminated ...) with their
simulation timestamps.  Operators (and tests) can then reconstruct what
the server did and render per-group timelines — the kind of log a
production Calliope would ship to syslog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence."""

    time: float
    source: str  # "coordinator", "msu0", ...
    category: str  # "schedule", "vcr", "terminate", ...
    subject: str  # content name, group id, stream id ...
    detail: str = ""

    def render(self) -> str:
        extra = f" {self.detail}" if self.detail else ""
        return f"{self.time:10.3f}  {self.source:<12} {self.category:<12} {self.subject}{extra}"


class Tracer:
    """An append-only event log with simple query helpers."""

    def __init__(self, clock, capacity: int = 100_000):
        """``clock`` is a zero-argument callable returning the sim time."""
        self._clock = clock
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def record(self, source: str, category: str, subject, detail: str = "") -> None:
        """Append one event (drops silently past capacity)."""
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(self._clock(), source, str(category), str(subject), detail)
        )

    # -- queries -----------------------------------------------------------

    def by_category(self, category: str) -> List[TraceEvent]:
        """Events of one category, in time order."""
        return [e for e in self.events if e.category == category]

    def by_subject(self, subject) -> List[TraceEvent]:
        """Events about one subject, in time order."""
        wanted = str(subject)
        return [e for e in self.events if e.subject == wanted]

    def between(self, start: float, end: float) -> List[TraceEvent]:
        """Events with start <= time < end."""
        return [e for e in self.events if start <= e.time < end]

    def counts(self) -> Dict[str, int]:
        """category -> number of events."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.category] = out.get(event.category, 0) + 1
        return out

    # -- rendering ------------------------------------------------------------

    def render(self, subject: Optional[str] = None) -> str:
        """A text timeline (optionally filtered to one subject)."""
        events = self.by_subject(subject) if subject is not None else self.events
        lines = [f"{'time':>10}  {'source':<12} {'event':<12} subject"]
        lines.extend(event.render() for event in events)
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped at capacity")
        return "\n".join(lines)
