"""Time-series utilization probes.

Experiments that report utilizations (§3.3) need windowed measurements,
not just end-of-run totals.  A probe samples a monotone counter (CPU busy
seconds, bytes moved, packets sent) on a fixed period and exposes the
per-window rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List

from repro.sim import Simulator

__all__ = ["CounterProbe", "UtilizationProbe"]


@dataclass(frozen=True)
class Sample:
    """One sampling window."""

    start: float
    end: float
    delta: float

    @property
    def rate(self) -> float:
        span = self.end - self.start
        return self.delta / span if span > 0 else 0.0


class CounterProbe:
    """Samples a monotone counter every ``period`` seconds.

    Accumulation is lazy (DESIGN.md §13): each wakeup appends three floats
    to flat arrays; the :class:`Sample` series is materialized only when
    read, so a probe ticking through a city-scale run costs no per-window
    object churn.
    """

    def __init__(
        self,
        sim: Simulator,
        counter: Callable[[], float],
        period: float = 1.0,
        name: str = "",
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.sim = sim
        self.counter = counter
        self.period = period
        self.name = name
        self._starts: List[float] = []
        self._ends: List[float] = []
        self._deltas: List[float] = []
        self._proc = sim.process(self._run(), name=f"probe:{name}")

    def _run(self) -> Generator:
        last_time = self.sim.now
        last_value = float(self.counter())
        while True:
            yield self.sim.sleep(self.period)
            value = float(self.counter())
            self._starts.append(last_time)
            self._ends.append(self.sim.now)
            self._deltas.append(value - last_value)
            last_time, last_value = self.sim.now, value

    @property
    def samples(self) -> List[Sample]:
        """The completed sampling windows, materialized on read."""
        return [
            Sample(s, e, d)
            for s, e, d in zip(self._starts, self._ends, self._deltas)
        ]

    def rates(self) -> List[float]:
        """Per-window rates (delta/second)."""
        return [
            d / (e - s) if e > s else 0.0
            for s, e, d in zip(self._starts, self._ends, self._deltas)
        ]

    def mean_rate(self) -> float:
        """Average rate across completed windows."""
        rates = self.rates()
        return sum(rates) / len(rates) if rates else 0.0

    def peak_rate(self) -> float:
        """The busiest window's rate."""
        rates = self.rates()
        return max(rates) if rates else 0.0

    def stop(self) -> None:
        """Halt sampling (the probe's process is interrupted)."""
        if self._proc.is_alive:
            self._proc.interrupt("probe stopped")


class UtilizationProbe(CounterProbe):
    """A CounterProbe over a busy-seconds counter: rates are utilizations.

    E.g. ``UtilizationProbe(sim, lambda: machine.cpu.busy_time)`` yields
    per-window CPU utilizations in [0, 1].
    """

    def utilizations(self) -> List[float]:
        """Alias of :meth:`rates` for busy-time counters."""
        return self.rates()

    def mean_utilization(self) -> float:
        return self.mean_rate()

    def peak_utilization(self) -> float:
        return self.peak_rate()
