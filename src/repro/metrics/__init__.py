"""Measurement helpers shared by experiments and examples."""

from repro.metrics.lateness import LatenessCollector, LatenessCdf
from repro.metrics.probes import CounterProbe, UtilizationProbe
from repro.metrics.tracing import TraceEvent, Tracer
from repro.metrics.report import format_cdf_table, quantile_summary

__all__ = [
    "CounterProbe",
    "TraceEvent",
    "Tracer",
    "LatenessCdf",
    "LatenessCollector",
    "UtilizationProbe",
    "format_cdf_table",
    "quantile_summary",
]
