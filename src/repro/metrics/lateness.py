"""Packet-lateness accounting: the metric of Graphs 1 and 2.

The paper plots, per workload, the cumulative percent of packets delivered
within a given number of milliseconds of their deadline, in 1 ms bins
(early or on-time packets land in bin 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["LatenessCollector", "LatenessCdf"]


@dataclass
class LatenessCdf:
    """A cumulative lateness distribution in 1 ms bins."""

    #: ``percent[i]`` = percent of packets sent <= i milliseconds late.
    percent: np.ndarray
    count: int
    max_late_ms: float

    def fraction_within(self, ms_late: float) -> float:
        """Fraction of packets no more than ``ms_late`` ms past deadline."""
        if self.count == 0:
            return 1.0
        index = int(ms_late)
        if index >= len(self.percent):
            return 1.0
        return float(self.percent[index]) / 100.0


class LatenessCollector:
    """Accumulates (deadline, actual send time) pairs for one workload."""

    def __init__(self, name: str = ""):
        self.name = name
        self._late_seconds: List[float] = []

    def record(self, deadline: float, sent_at: float) -> None:
        """Record one packet send against its schedule deadline."""
        self._late_seconds.append(sent_at - deadline)

    def __len__(self) -> int:
        return len(self._late_seconds)

    @property
    def late_seconds(self) -> List[float]:
        """Raw signed lateness samples (negative = early)."""
        return self._late_seconds

    def cdf(self, max_ms: int = 1000) -> LatenessCdf:
        """Build the Graph 1/2-style cumulative distribution."""
        n = len(self._late_seconds)
        if n == 0:
            return LatenessCdf(np.full(max_ms + 1, 100.0), 0, 0.0)
        late_ms = np.maximum(0.0, np.array(self._late_seconds) * 1000.0)
        bins = np.minimum(late_ms.astype(int), max_ms)
        hist = np.bincount(bins, minlength=max_ms + 1)
        percent = 100.0 * np.cumsum(hist) / n
        return LatenessCdf(percent, n, float(late_ms.max()))

    def percent_within(self, ms_late: float) -> float:
        """Percent of packets sent no more than ``ms_late`` ms late."""
        if not self._late_seconds:
            return 100.0
        arr = np.array(self._late_seconds) * 1000.0
        return 100.0 * float(np.mean(arr <= ms_late))

    def max_lateness_ms(self) -> float:
        """Worst lateness observed (>= 0)."""
        if not self._late_seconds:
            return 0.0
        return max(0.0, max(self._late_seconds) * 1000.0)

    def audit(self) -> List[str]:
        """Deadline-accounting anomalies, as strings.

        Every recorded sample must be a finite number: a NaN or infinite
        lateness means a stream's schedule anchor went bad upstream, which
        the CDF math would otherwise silently absorb.
        """
        bad = [s for s in self._late_seconds if not np.isfinite(s)]
        if bad:
            return [f"{self.name or 'collector'}: {len(bad)} non-finite "
                    f"lateness samples (first: {bad[0]!r})"]
        return []
