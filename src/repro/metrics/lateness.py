"""Packet-lateness accounting: the metric of Graphs 1 and 2.

The paper plots, per workload, the cumulative percent of packets delivered
within a given number of milliseconds of their deadline, in 1 ms bins
(early or on-time packets land in bin 0).

Accumulation is *lazy* (DESIGN.md §13): the collector stores raw samples —
and, for coarsened pacing bursts, compact arithmetic *ramps* of samples —
and only materializes the numpy series when a statistic is read.  A burst
of N packets sent together against evenly spaced deadlines therefore costs
O(1) space and time to record instead of N appends, which is what lets the
city-scale runs keep exact per-packet accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["LatenessCollector", "LatenessCdf"]


@dataclass
class LatenessCdf:
    """A cumulative lateness distribution in 1 ms bins."""

    #: ``percent[i]`` = percent of packets sent <= i milliseconds late.
    percent: np.ndarray
    count: int
    max_late_ms: float

    def fraction_within(self, ms_late: float) -> float:
        """Fraction of packets no more than ``ms_late`` ms past deadline."""
        if self.count == 0:
            return 1.0
        index = int(ms_late)
        if index >= len(self.percent):
            return 1.0
        return float(self.percent[index]) / 100.0


class LatenessCollector:
    """Accumulates (deadline, actual send time) pairs for one workload."""

    __slots__ = ("name", "_singles", "_ramps", "_count", "_materialized")

    def __init__(self, name: str = ""):
        self.name = name
        self._singles: List[float] = []
        #: (first_late, step, n) arithmetic runs from coarsened bursts.
        self._ramps: List[Tuple[float, float, int]] = []
        self._count = 0
        self._materialized = None  # cached numpy array of all samples

    def record(self, deadline: float, sent_at: float) -> None:
        """Record one packet send against its schedule deadline."""
        self._singles.append(sent_at - deadline)
        self._count += 1
        self._materialized = None

    def record_ramp(self, first_late: float, step: float, n: int) -> None:
        """Record ``n`` packets whose lateness forms an arithmetic run.

        A coarsened burst sends packets ``i = 0..n-1`` at one instant
        against deadlines spaced ``-step`` apart, so packet ``i`` is
        ``first_late + i * step`` seconds late (usually negative: early).
        Stored as a compact run; expanded only when a series is read.
        """
        if n <= 0:
            raise ValueError(f"ramp length must be positive: {n}")
        self._ramps.append((first_late, step, n))
        self._count += n
        self._materialized = None

    def reset(self) -> None:
        """Drop all accumulated samples (experiment warm-up boundary)."""
        self._singles.clear()
        self._ramps.clear()
        self._count = 0
        self._materialized = None

    def __len__(self) -> int:
        return self._count

    def _samples(self) -> np.ndarray:
        """Materialize every sample (singles + expanded ramps), cached."""
        if self._materialized is None:
            parts = []
            if self._singles:
                parts.append(np.asarray(self._singles, dtype=float))
            for first, step, n in self._ramps:
                parts.append(first + step * np.arange(n, dtype=float))
            if parts:
                self._materialized = np.concatenate(parts)
            else:
                self._materialized = np.empty(0, dtype=float)
        return self._materialized

    @property
    def late_seconds(self) -> List[float]:
        """Raw signed lateness samples (negative = early)."""
        return list(self._samples())

    def cdf(self, max_ms: int = 1000) -> LatenessCdf:
        """Build the Graph 1/2-style cumulative distribution."""
        samples = self._samples()
        n = len(samples)
        if n == 0:
            return LatenessCdf(np.full(max_ms + 1, 100.0), 0, 0.0)
        late_ms = np.maximum(0.0, samples * 1000.0)
        bins = np.minimum(late_ms.astype(int), max_ms)
        hist = np.bincount(bins, minlength=max_ms + 1)
        percent = 100.0 * np.cumsum(hist) / n
        return LatenessCdf(percent, n, float(late_ms.max()))

    def percent_within(self, ms_late: float) -> float:
        """Percent of packets sent no more than ``ms_late`` ms late."""
        samples = self._samples()
        if len(samples) == 0:
            return 100.0
        return 100.0 * float(np.mean(samples * 1000.0 <= ms_late))

    def max_lateness_ms(self) -> float:
        """Worst lateness observed (>= 0)."""
        samples = self._samples()
        if len(samples) == 0:
            return 0.0
        return max(0.0, float(samples.max()) * 1000.0)

    def audit(self) -> List[str]:
        """Deadline-accounting anomalies, as strings.

        Every recorded sample must be a finite number: a NaN or infinite
        lateness means a stream's schedule anchor went bad upstream, which
        the CDF math would otherwise silently absorb.
        """
        samples = self._samples()
        bad = samples[~np.isfinite(samples)]
        if len(bad):
            return [f"{self.name or 'collector'}: {len(bad)} non-finite "
                    f"lateness samples (first: {bad[0]!r})"]
        return []
