"""Plain-text rendering of experiment results."""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.metrics.lateness import LatenessCdf

__all__ = [
    "format_cdf_table",
    "quantile_summary",
    "format_cache_summary",
    "format_failover_summary",
    "format_multicast_summary",
    "format_recovery_summary",
]


def format_cdf_table(
    curves: Dict[str, LatenessCdf],
    points_ms: Iterable[int] = (0, 10, 25, 50, 100, 150, 200, 300),
) -> str:
    """Render several lateness CDFs as a table of checkpoints.

    This is the textual form of Graphs 1 and 2: one column per curve, one
    row per "milliseconds late" checkpoint.
    """
    names = list(curves)
    header = f"{'ms late':>8} | " + " | ".join(f"{n:>24}" for n in names)
    lines = [header, "-" * len(header)]
    for ms in points_ms:
        cells = [f"{curves[n].fraction_within(ms) * 100.0:>23.1f}%" for n in names]
        lines.append(f"{ms:>8} | " + " | ".join(cells))
    tail = [
        f"{'count':>8} | " + " | ".join(f"{curves[n].count:>24}" for n in names),
        f"{'max ms':>8} | " + " | ".join(f"{curves[n].max_late_ms:>24.1f}" for n in names),
    ]
    return "\n".join(lines + tail)


def quantile_summary(cdf: LatenessCdf) -> List[Tuple[str, float]]:
    """Key checkpoints the paper quotes in §3.2 text."""
    return [
        ("within 50 ms (%)", cdf.fraction_within(50) * 100.0),
        ("within 150 ms (%)", cdf.fraction_within(150) * 100.0),
        ("max lateness (ms)", cdf.max_late_ms),
    ]


def format_cache_summary(snapshot) -> List[Tuple[str, float]]:
    """Key figures of one MSU page cache (a CacheSnapshot-like object).

    The three quantities the cache experiment reports: how often a read
    slot was saved, how full the pool ran, and how many slots that saved
    in absolute terms.
    """
    return [
        ("hit ratio (%)", snapshot.hit_ratio * 100.0),
        ("pool occupancy peak (%)",
         100.0 * snapshot.pool_peak / snapshot.pool_capacity
         if snapshot.pool_capacity else 0.0),
        ("disk slots saved", float(snapshot.slots_saved)),
        ("pinned prefix pages", float(snapshot.pinned_pages)),
    ]


def format_failover_summary(point) -> List[Tuple[str, float]]:
    """Key figures of one failover run (a FailoverPoint-like object).

    How many streams the failure touched, how many came back, how long
    viewers stared at a frozen frame, and how long until the cluster's
    full serving capacity was restored.
    """
    resumed_pct = (
        100.0 * point.resumed / point.victim_streams
        if point.victim_streams else 0.0
    )
    return [
        ("streams on victim", float(point.victim_streams)),
        ("resumed (%)", resumed_pct),
        ("mean resume gap (s)", point.mean_resume_gap_s),
        ("max resume gap (s)", point.max_resume_gap_s),
        ("detection budget (s)", point.detection_budget_s),
        ("time to full capacity (s)", point.time_to_full_capacity_s),
    ]


def format_multicast_summary(manager) -> List[Tuple[str, float]]:
    """Key figures of one multicast run (a ChannelManager-like object).

    How many viewers each channel carried on average, what share of them
    arrived late enough to need a patch, and how many unicast disk/
    delivery slots the channels saved outright.
    """
    return [
        ("channels created", float(manager.channels_created)),
        ("viewers joined", float(manager.viewers_joined)),
        ("channel occupancy (viewers/channel)", manager.occupancy()),
        ("patch ratio (%)", manager.patch_ratio() * 100.0),
        ("slots saved", float(manager.slots_saved())),
        ("merges (patches drained)", float(manager.merges)),
        ("downgrades to unicast", float(manager.downgrades)),
    ]


def format_recovery_summary(outcome) -> List[Tuple[str, float]]:
    """Key figures of one Coordinator restart (a RecoveryOutcome).

    How long the cold start took, how much journal it replayed, and what
    the MSU-wins reconciliation had to repair.
    """
    return [
        ("time to recover (s)", outcome.time_to_recover),
        ("WAL records replayed", float(outcome.wal_records)),
        ("snapshot seq", float(outcome.snapshot_seq)),
        ("MSUs reported", float(outcome.msus_reported)),
        ("MSUs missing", float(outcome.msus_missing)),
        ("streams kept", float(outcome.streams_kept)),
        ("streams dropped", float(outcome.streams_dropped)),
        ("streams adopted", float(outcome.streams_adopted)),
        ("channels kept", float(outcome.channels_kept)),
        ("tickets recovered", float(outcome.tickets_recovered)),
        ("discrepancies logged", float(len(outcome.discrepancies))),
    ]
