"""Run a :class:`ChaosSchedule` against a full simulated cluster.

The :class:`ChaosCluster` builds a deliberately mean installation — small
pages, fast heartbeats, multicast batching, page caches — loads a couple
of titles with a replica each, injects every fault at its scheduled
simulated time, runs the mid-simulation invariants on a fixed cadence,
and then *drains*: every downed MSU rejoins, every live viewer quits,
sessions close, and the strict conservation invariants run over the
quiesced books.

Everything is derived from the schedule's seed, so a run is a pure
function of its :class:`~repro.verify.faults.ChaosSchedule` — the
property the shrinker relies on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Dict, List, Optional

from repro.cache.manager import CacheConfig
from repro.clients import Client
from repro.clients.workload import ChannelSurfer
from repro.core import CalliopeCluster, ClusterConfig
from repro.core.replication import ReplicationManager
from repro.edge import EdgeConfig
from repro.errors import CalliopeError
from repro.failover import FailoverConfig, HeartbeatConfig
from repro.live import ChannelSpec, LiveConfig, LiveSource
from repro.media import MpegEncoder, packetize_cbr
from repro.multicast import MulticastConfig
from repro.net import messages as m
from repro.sim import Simulator
from repro.storage import IBTreeConfig
from repro.units import MPEG1_RATE
from repro.verify.faults import ChaosSchedule, FaultOp
from repro.verify.invariants import InvariantRegistry, Violation, builtin_registry

__all__ = ["ChaosConfig", "ChaosCluster", "ChaosReport"]

#: Small pages keep titles short to write and quick to stream.
SMALL = IBTreeConfig(data_page_size=16 * 1024, internal_page_size=1024, max_keys=32)

#: Fast failure detection so a 20-second horizon sees whole failover arcs.
FAST = HeartbeatConfig(
    period=0.1, miss_threshold=2, suspect_backoff=0.1,
    backoff_factor=2.0, suspect_probes=1,
)

#: The ghost channel id the deliberate double-charge bug books against.
GHOST_CHANNEL = 99_999

#: Eager edge tier: one proxy, short pinned prefixes (serves must finish
#: inside the drain window), a hot placement loop so a 20-second horizon
#: sees pins appear, serve, and churn.
EDGE = EdgeConfig(
    n_edges=1, prefix_pages=24, placement_period=0.5,
    promote_score=0.5, evict_score=0.05, report_period=0.5,
)


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of the cluster a schedule runs against."""

    n_msus: int = 2
    n_titles: int = 2
    #: Media length per title, seconds (short: streams end inside a run).
    length: float = 8.0
    #: Seconds past the horizon the drain is given to quiesce.
    drain: float = 12.0
    #: Cadence of the mid-simulation invariant sweep.
    check_period: float = 0.5
    #: Seed offset for title content (independent of the fault seed).
    content_seed: int = 11
    #: Edge proxy tier fronting the MSUs (None runs without edges).
    edge: Optional[EdgeConfig] = EDGE
    #: Live channels on the air during the run (0 runs without live TV).
    n_channels: int = 2
    #: Broadcast length per channel, seconds (ends inside the horizon).
    live_length: float = 6.0
    #: Time-shift ring depth, seconds of media kept behind the live edge.
    ring_seconds: float = 3.0
    #: Admission shards (1 keeps the single serial Coordinator; the
    #: defaults stay at 1/False so pinned pre-scale-out plans replay
    #: bit-identically).
    n_shards: int = 1
    #: Keep a warm standby tailing the journal from bring-up.
    standby: bool = False


@dataclass
class ChaosReport:
    """Outcome of one schedule run."""

    schedule: ChaosSchedule
    violations: List[Violation]
    stats: Dict[str, int]
    checks_run: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        acted = ", ".join(
            f"{k}={v}" for k, v in sorted(self.stats.items()) if v
        )
        return (
            f"seed {self.schedule.seed}: {len(self.schedule)} ops, "
            f"{self.checks_run} checks -> {verdict} ({acted})"
        )


class ChaosCluster:
    """A cluster wired to execute one fault schedule deterministically."""

    def __init__(
        self,
        schedule: ChaosSchedule,
        config: Optional[ChaosConfig] = None,
        registry: Optional[InvariantRegistry] = None,
    ) -> None:
        self.schedule = schedule
        self.chaos_config = config or ChaosConfig()
        self.registry = registry or builtin_registry()
        self.sim = Simulator()
        lineup = tuple(
            ChannelSpec(
                name=f"live{c}",
                type_name="mpeg1",
                source_host=f"feed{c}",
                start_at=0.6 + 0.2 * c,
                duration_seconds=self.chaos_config.live_length,
            )
            for c in range(self.chaos_config.n_channels)
        )
        live = None
        if lineup:
            # A forgiving surf gate: storms drain, honest tunes pass.
            live = LiveConfig(
                lineup=lineup,
                ring_seconds=self.chaos_config.ring_seconds,
                surf_rate=15.0,
                surf_burst=12.0,
                off_air_grace=6.0,
            )
        scaleout = None
        if self.chaos_config.n_shards > 1 or self.chaos_config.standby:
            from repro.scaleout import ScaleOutConfig

            scaleout = ScaleOutConfig(
                shards=self.chaos_config.n_shards,
                standby=self.chaos_config.standby,
            )
        self.cluster = CalliopeCluster(
            self.sim,
            ClusterConfig(
                n_msus=self.chaos_config.n_msus,
                disks_per_hba=(1,),
                ibtree_config=SMALL,
                failover=FailoverConfig(heartbeat=FAST),
                multicast=MulticastConfig(batch_window=0.2, patch_horizon=6.0),
                cache=CacheConfig(),
                edge=self.chaos_config.edge,
                live=live,
                scaleout=scaleout,
                seed=schedule.seed,
            ),
        )
        self.cluster.coordinator.db.add_customer("user")
        self.live_channel_names = [spec.name for spec in lineup]
        self.live_sources: List[LiveSource] = []
        for c, spec in enumerate(lineup):
            source = LiveSource(self.sim, self.cluster, spec.source_host)
            source.add_feed(
                spec.name,
                packetize_cbr(
                    MpegEncoder(
                        seed=self.chaos_config.content_seed + 100 + c
                    ).bitstream(self.chaos_config.live_length),
                    MPEG1_RATE, 1024,
                ),
            )
            self.live_sources.append(source)
        self.violations: List[Violation] = []
        self.stats: Dict[str, int] = {}
        self.viewers: List[SimpleNamespace] = []
        self.surfers: List[ChannelSurfer] = []
        self._viewer_seq = 0
        self._surfer_seq = 0
        self._base_latency = self.cluster.delivery_net.latency
        self._base_disk_params = [
            (drive, drive.params)
            for msu in self.cluster.msus
            for drive in msu.machine.disks
        ]
        self._load_titles()
        for op in self.schedule.ops:
            self.sim.at(op.at, self._apply, op)
        self.sim.process(self._periodic_checks(), name="chaos.checks")

    # -- invariant plumbing (checkers read these like a CalliopeCluster) ----

    @property
    def coordinator(self):
        return self.cluster.coordinator

    @property
    def coordinator_down(self):
        return self.cluster.coordinator_down

    @property
    def msus(self):
        return self.cluster.msus

    @property
    def edges(self):
        return self.cluster.edges

    @property
    def delivery_net(self):
        return self.cluster.delivery_net

    @property
    def takeovers(self):
        return self.cluster.takeovers

    @property
    def config(self):
        return self.cluster.config

    # -- content ------------------------------------------------------------

    def _load_titles(self) -> None:
        cfg = self.chaos_config
        for t in range(cfg.n_titles):
            packets = packetize_cbr(
                MpegEncoder(seed=cfg.content_seed + t).bitstream(cfg.length),
                MPEG1_RATE, 1024,
            )
            self.cluster.load_content(
                f"title{t}", "mpeg1", packets, msu_index=t % cfg.n_msus
            )

    def _replicate_titles(self) -> None:
        """Give every title a second copy so failover has somewhere to go."""
        cfg = self.chaos_config
        if cfg.n_msus < 2:
            return
        manager = ReplicationManager(self.cluster)
        for t in range(cfg.n_titles):
            target = (t + 1) % cfg.n_msus
            msu = self.cluster.msus[target]
            manager.replicate(f"title{t}", msu.name, msu.disk_ids()[0])

    def _sync_all(self):
        """Flush metadata so a mid-run power cycle remounts every title."""
        for msu in self.cluster.msus:
            yield from msu.admin_sync_all()

    # -- fault application ---------------------------------------------------

    def _bump(self, key: str) -> None:
        self.stats[key] = self.stats.get(key, 0) + 1

    def _apply(self, op: FaultOp) -> None:
        handler = getattr(self, f"_op_{op.kind}", None)
        if handler is None:
            raise CalliopeError(f"no handler for fault kind {op.kind!r}")
        # Any injected fault suspends coarsened pacing cluster-wide for a
        # while (DESIGN.md §13): the interesting dynamics around a fault
        # must play out on the exact per-packet schedule.
        self.sim.decoarsen()
        handler(op)

    def _live_views(self) -> List[SimpleNamespace]:
        """Viewers with a running group, in deterministic group-id order."""
        live = [
            viewer
            for viewer in self.viewers
            if viewer.view is not None
            and not viewer.view.done_event.triggered
            and not viewer.view.quit_requested
            and viewer.view.channel is not None
            and viewer.view.channel.open
        ]
        live.sort(key=lambda viewer: viewer.view.group_id)
        return live

    def _op_client_join(self, op: FaultOp) -> None:
        index = self._viewer_seq
        self._viewer_seq += 1
        self.sim.process(
            self._viewer_life(f"cl{index}", op), name=f"chaos.cl{index}"
        )

    def _viewer_life(self, name: str, op: FaultOp):
        title = f"title{op.args['title'] % self.chaos_config.n_titles}"
        try:
            # Construction dials the Coordinator; with it down the join
            # fails the way a real connect would.
            client = Client(
                self.sim, self.cluster, name,
                reconnect_retries=2, reconnect_backoff=0.3,
            )
        except CalliopeError:
            self._bump("joins_failed")
            return
        viewer = SimpleNamespace(name=name, client=client, view=None)
        self.viewers.append(viewer)
        try:
            yield from client.open_session("user")
            yield from client.register_port("tv", "mpeg1")
            view = yield from client.play_with_timeout(
                title, "tv", op.args.get("patience", 3.0)
            )
        except CalliopeError:
            self._bump("joins_failed")
            return
        if view is None:
            self._bump("joins_abandoned")
            return
        viewer.view = view
        self._bump("joins")

    def _op_client_quit(self, op: FaultOp) -> None:
        live = self._live_views()
        if not live:
            return
        viewer = live[op.args["pick"] % len(live)]
        try:
            viewer.client.quit(viewer.view.group_id)
            self._bump("quits")
        except CalliopeError:
            pass

    def _op_vcr_storm(self, op: FaultOp) -> None:
        live = self._live_views()
        if not live:
            return
        viewer = live[op.args["pick"] % len(live)]
        self._bump("storms")
        self.sim.process(
            self._storm(viewer, op.args["commands"], op.args["position"]),
            name=f"chaos.storm{viewer.view.group_id}",
        )

    def _storm(self, viewer: SimpleNamespace, commands, position: float):
        vcr = {"play": m.VCR_PLAY, "pause": m.VCR_PAUSE, "seek": m.VCR_SEEK}
        for command in commands:
            view = viewer.view
            if view.done_event.triggered or view.quit_requested:
                return
            try:
                viewer.client.vcr(view.group_id, vcr[command], position)
            except CalliopeError:
                return
            yield self.sim.timeout(0.15)

    def _op_msu_hang(self, op: FaultOp) -> None:
        index = op.args["msu"] % len(self.cluster.msus)
        if self.cluster.msus[index].up:
            self.cluster.hang_msu(index)
            self._bump("hangs")

    def _op_msu_crash(self, op: FaultOp) -> None:
        index = op.args["msu"] % len(self.cluster.msus)
        if self.cluster.msus[index].up:
            self.cluster.fail_msu(index, crash=True)
            self._bump("crashes")

    def _op_msu_rejoin(self, op: FaultOp) -> None:
        index = op.args["msu"] % len(self.cluster.msus)
        if not self.cluster.msus[index].up:
            self.cluster.rejoin_msu(index)
            self._bump("rejoins")

    def _op_msu_powercycle(self, op: FaultOp) -> None:
        index = op.args["msu"] % len(self.cluster.msus)
        self._bump("powercycles")
        self.sim.process(self._powercycle(index), name=f"chaos.cycle{index}")

    def _powercycle(self, index: int):
        msu = self.cluster.msus[index]
        if msu.up:
            self.cluster.fail_msu(index, crash=True)
        yield self.sim.timeout(0.4)
        yield from msu.admin_remount()
        if not msu.up:
            self.cluster.rejoin_msu(index)

    def _op_net_loss(self, op: FaultOp) -> None:
        net = self.cluster.delivery_net
        net.loss_rate = op.args["rate"]
        self._bump("loss_windows")
        self.sim.schedule(op.args["duration"], setattr, net, "loss_rate", 0.0)

    def _op_net_delay(self, op: FaultOp) -> None:
        net = self.cluster.delivery_net
        net.latency = self._base_latency * op.args["factor"]
        self._bump("delay_windows")
        self.sim.schedule(
            op.args["duration"], setattr, net, "latency", self._base_latency
        )

    def _op_net_partition(self, op: FaultOp) -> None:
        live = self._live_views()
        if not live:
            return
        viewer = live[op.args["pick"] % len(live)]
        net = self.cluster.delivery_net
        net.partition(viewer.name)
        self._bump("partitions")
        self.sim.schedule(op.args["duration"], net.heal, viewer.name)

    def _op_disk_slow(self, op: FaultOp) -> None:
        index = op.args["msu"] % len(self.cluster.msus)
        msu = self.cluster.msus[index]
        factor = op.args["factor"]
        restore = []
        for drive in msu.machine.disks:
            restore.append((drive, drive.params))
            drive.params = dataclasses.replace(
                drive.params, media_rate=drive.params.media_rate / factor
            )
        self._bump("slow_windows")
        self.sim.schedule(op.args["duration"], self._restore_disks, restore)

    @staticmethod
    def _restore_disks(restore) -> None:
        for drive, params in restore:
            drive.params = params

    def _op_coordinator_crash(self, op: FaultOp) -> None:
        if not self.cluster.coordinator_down:
            self.cluster.crash_coordinator()
            self._bump("coordinator_crashes")

    def _op_coordinator_restart(self, op: FaultOp) -> None:
        if self.cluster.coordinator_down:
            self.cluster.restart_coordinator()
            self._bump("coordinator_restarts")

    def _op_coordinator_failover(self, op: FaultOp) -> None:
        """Kill the leader with a warm standby armed to take over.

        A standby is brought up (and fully synced) on first use if the
        config did not start one; the crash then exercises the whole
        detect-promote-reconcile arc with no restart in sight.
        """
        if self.cluster.journal is None or self.cluster.coordinator_down:
            return
        if not self.cluster.standbys:
            standby = self.cluster.create_standby()
            standby.sync()
        self.cluster.crash_coordinator()
        self._bump("failovers")

    def _op_shard_partition(self, op: FaultOp) -> None:
        """One admission shard falls off the coordinator interconnect.

        While partitioned it neither admits (its requests park on the
        durable scheduling queue) nor yields escrow to siblings; healing
        re-runs the queue.
        """
        shards = self.cluster.coordinator.shards
        if shards is None or shards.n <= 1:
            return
        shard = op.args["shard"] % shards.n
        shards.partition(shard)
        self._bump("shard_partitions")
        self.sim.schedule(op.args["duration"], self._heal_shard, shard)

    def _heal_shard(self, shard: int) -> None:
        # Through the *current* coordinator: a restart or takeover may
        # have swapped instances since the partition landed.
        shards = self.cluster.coordinator.shards
        if shards is not None:
            shards.heal(shard)
            self.cluster.coordinator._retry_queue()

    def _op_edge_crash(self, op: FaultOp) -> None:
        edges = self.cluster.edges
        if not edges:
            return
        index = op.args.get("edge", 0) % len(edges)
        if not edges[index].down:
            self.cluster.fail_edge(index)
            self._bump("edge_crashes")

    def _op_edge_restart(self, op: FaultOp) -> None:
        edges = self.cluster.edges
        if not edges:
            return
        index = op.args.get("edge", 0) % len(edges)
        if edges[index].down:
            self.cluster.recover_edge(index)
            self._bump("edge_restarts")

    def _op_bug_double_charge(self, op: FaultOp) -> None:
        """Deliberate accounting bug (harness self-test).

        Books a patch charge against a channel that already closed — the
        double-charge shape a refactor of the merge path could introduce.
        The ledger invariant must catch it both mid-run (closed channel
        with outstanding charges) and at drain (ledger never balances).
        """
        manager = self.cluster.coordinator.channel_manager
        if manager is None:
            return
        ledger = manager.ledger
        ledger.open_channel(GHOST_CHANNEL, "ghost", MPEG1_RATE)
        ledger.close_channel(GHOST_CHANNEL)
        ledger.charge_patch(GHOST_CHANNEL, 1, MPEG1_RATE, False)
        self._bump("bugs_injected")

    def _op_live_ingest_stall(self, op: FaultOp) -> None:
        """One channel's feed goes silent, then resumes shifted."""
        if not self.live_sources:
            return
        source = self.live_sources[op.args["channel"] % len(self.live_sources)]
        # ``at 0.0`` arms the stall for the next packet of whatever
        # broadcast is in flight (one stall per broadcast at most).
        source.stall(0.0, op.args["duration"])
        self._bump("ingest_stalls")

    def _op_surf_storm(self, op: FaultOp) -> None:
        """A burst of channel surfers floods the live lineup."""
        if not self.live_channel_names:
            return
        self._bump("surf_storms")
        for i in range(op.args["surfers"]):
            name = f"surf{self._surfer_seq}"
            self._surfer_seq += 1
            try:
                # Construction dials the Coordinator, like a real tuner.
                surfer = ChannelSurfer(
                    self.sim, self.cluster, name, self.live_channel_names,
                    hops=op.args["hops"], dwell_mean=0.8, tune_timeout=1.5,
                    rewind_seconds=2.0, seed=op.args["pick"] + i,
                )
            except CalliopeError:
                self._bump("joins_failed")
                continue
            surfer.start()
            self.surfers.append(surfer)

    # -- checking and the drain ----------------------------------------------

    def _periodic_checks(self):
        while True:
            yield self.sim.timeout(self.chaos_config.check_period)
            self.violations.extend(self.registry.check(self, "mid"))

    def _restore_environment(self) -> None:
        """Undo every open-ended environmental fault before draining."""
        net = self.cluster.delivery_net
        net.loss_rate = 0.0
        net.latency = self._base_latency
        for host in sorted(net._partitioned):
            net.heal(host)
        for drive, params in self._base_disk_params:
            drive.params = params
        shards = self.cluster.coordinator.shards
        if shards is not None and shards.partitioned:
            for shard in sorted(shards.partitioned):
                shards.heal(shard)
            self.cluster.coordinator._retry_queue()

    def run(self) -> ChaosReport:
        """Execute the schedule, drain, and return the verdict."""
        sim = self.sim
        horizon = self.schedule.horizon
        sim.run(until=0.05)
        self._replicate_titles()
        sync = sim.process(self._sync_all(), name="chaos.sync")
        sim.run(until=horizon)

        # Drain: a clean world again, then let everything wind down.  The
        # Coordinator restarts first so rejoining MSUs have someone to
        # say hello to.
        self._restore_environment()
        if self.cluster.coordinator_down:
            # A standby mid-detection wins over a cold restart — racing
            # both would seat two leaders.
            if self.cluster.standbys:
                self.cluster.standbys[0].takeover()
            else:
                self.cluster.restart_coordinator()
        for index, msu in enumerate(self.cluster.msus):
            if not msu.up:
                self.cluster.rejoin_msu(index)
        for index, proxy in enumerate(self.cluster.edges):
            if proxy.down:
                self.cluster.recover_edge(index)
        sim.run(until=horizon + 0.5)
        for viewer in self._live_views():
            try:
                viewer.client.quit(viewer.view.group_id)
            except CalliopeError:
                pass
        sim.run(until=horizon + 2.0)
        manager = self.cluster.coordinator.live_manager
        if manager is not None:
            # A channel still on the air (a stalled feed, or one the
            # restarted Coordinator re-opened) is signed off now so the
            # fan-out can drain inside the window.
            for channel_id in sorted(manager.channels):
                manager.stop_channel(channel_id)
        for viewer in self.viewers:
            viewer.client.close_session()
        sim.run(until=horizon + self.chaos_config.drain)

        if not sync.triggered:
            self.violations.append(
                Violation("harness", "metadata sync never completed",
                          sim.now, "drain")
            )
        self.violations.extend(self.registry.check(self, "drain"))
        return ChaosReport(
            schedule=self.schedule,
            violations=list(self.violations),
            stats=dict(self.stats),
            checks_run=self.registry.checks_run,
        )
