"""Seed-deterministic fault plans for the chaos harness.

A :class:`ChaosSchedule` is a flat list of timestamped :class:`FaultOp`
records.  All randomness happens here, at *generation* time, from one
``random.Random(seed)``; applying a schedule is purely deterministic, so
the same schedule always produces the same simulation — the property the
shrinker and the repro files depend on.

The op vocabulary covers the failure surface the subsystems expose:

====================  ======================================================
``client_join``       a new viewer opens a session and plays a title
``client_quit``       a live viewer quits its group
``vcr_storm``         a burst of pause/seek/play commands on a live viewer
``msu_hang``          silent freeze; only heartbeats reveal it
``msu_crash``         kernel death; control connections break
``msu_powercycle``    crash, then remount from disk and rejoin
``msu_rejoin``        bring a downed MSU back
``net_loss``          delivery-network packet loss for a while
``net_delay``         delivery-network latency spike for a while
``net_partition``     one client falls off the delivery network for a while
``disk_slow``         one MSU's disks serve at a fraction of media rate
``coordinator_crash``   kill the Coordinator; MSUs keep serving alone
``coordinator_restart`` cold-start a Coordinator from the journal and
                        reconcile against live MSU state
``coordinator_failover`` kill the leader with a warm standby armed; the
                        standby detects the silence and takes over
``shard_partition``     one admission shard falls off the coordinator
                        interconnect for a while, then heals
``edge_crash``        an edge proxy dies; its pins and serves vanish
``edge_restart``      bring a downed edge proxy back (empty cache)
``live_ingest_stall`` one live channel's broadcaster goes silent for a
                      while, then resumes shifted (dead satellite uplink)
``surf_storm``        a burst of channel surfers joins the live lineup,
                      flipping, pausing and rewinding live
``bug_double_charge`` deliberately charge a drained channel's ledger twice
                      (harness self-test: the ledger invariant must catch
                      it and the shrinker must isolate it)
====================  ======================================================
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["FAULT_KINDS", "SCALEOUT_FAULT_KINDS", "FaultOp", "ChaosSchedule"]

#: The default generation vocabulary, with weights.  Deliberately frozen
#: at the pre-scale-out set: plan generation draws from ``random.Random``
#: over the sorted kind names, so *adding* a kind here would silently
#: reshuffle every seed's plan and invalidate pinned expectations.
FAULT_KINDS: Dict[str, float] = {
    "client_join": 34.0,
    "client_quit": 12.0,
    "vcr_storm": 16.0,
    "msu_hang": 5.0,
    "msu_crash": 4.0,
    "msu_powercycle": 5.0,
    "msu_rejoin": 9.0,
    "net_loss": 4.0,
    "net_delay": 3.0,
    "net_partition": 3.0,
    "disk_slow": 5.0,
    "coordinator_crash": 3.0,
    "coordinator_restart": 4.0,
    "edge_crash": 3.0,
    "edge_restart": 4.0,
    "live_ingest_stall": 3.0,
    "surf_storm": 5.0,
}

#: Extended vocabulary for scale-out clusters (``cli verify --shards/
#: --standby``): the default set plus leader failover and shard
#: partitions.  Opt-in via ``ChaosSchedule.generate(kinds=...)``.
SCALEOUT_FAULT_KINDS: Dict[str, float] = {
    **FAULT_KINDS,
    "coordinator_failover": 2.0,
    "shard_partition": 3.0,
}

#: VCR command bursts a storm draws from.
_STORMS: Tuple[Tuple[str, ...], ...] = (
    ("pause", "play"),
    ("pause", "seek", "play"),
    ("seek", "seek", "play"),
    ("pause", "play", "pause", "play"),
)


@dataclass(frozen=True)
class FaultOp:
    """One timestamped fault: what to do, when, and with which knobs."""

    at: float
    kind: str
    args: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"at": self.at, "kind": self.kind, "args": dict(self.args)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultOp":
        return cls(float(data["at"]), str(data["kind"]), dict(data["args"]))


@dataclass(frozen=True)
class ChaosSchedule:
    """A seed-deterministic fault plan over one simulated horizon."""

    seed: int
    horizon: float
    ops: Tuple[FaultOp, ...]

    # -- generation -------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        n_ops: int,
        horizon: float = 20.0,
        n_msus: int = 2,
        n_titles: int = 2,
        kinds: Optional[Dict[str, float]] = None,
        n_edges: int = 1,
        n_channels: int = 2,
    ) -> "ChaosSchedule":
        """Draw ``n_ops`` weighted ops over ``[0.5, horizon)``.

        Times, targets and knobs all come from one ``random.Random(seed)``
        so the same arguments always yield the identical plan.
        """
        rng = random.Random(seed)
        weights = dict(FAULT_KINDS if kinds is None else kinds)
        names = sorted(weights)
        ops = []
        for _ in range(max(0, n_ops)):
            at = round(rng.uniform(0.5, horizon), 4)
            kind = rng.choices(names, weights=[weights[k] for k in names])[0]
            ops.append(
                FaultOp(
                    at, kind,
                    cls._draw_args(
                        rng, kind, n_msus, n_titles, n_edges, n_channels
                    ),
                )
            )
        ops.sort(key=lambda op: (op.at, op.kind))
        return cls(seed=seed, horizon=horizon, ops=tuple(ops))

    @staticmethod
    def _draw_args(
        rng: random.Random, kind: str, n_msus: int, n_titles: int,
        n_edges: int = 1, n_channels: int = 2,
    ) -> Dict[str, Any]:
        if kind in ("msu_hang", "msu_crash", "msu_powercycle", "msu_rejoin"):
            return {"msu": rng.randrange(n_msus)}
        if kind in ("edge_crash", "edge_restart"):
            return {"edge": rng.randrange(max(1, n_edges))}
        if kind == "client_join":
            return {
                "title": rng.randrange(n_titles),
                "patience": round(rng.uniform(2.0, 5.0), 2),
            }
        if kind in ("client_quit", "net_partition", "vcr_storm"):
            args: Dict[str, Any] = {"pick": rng.randrange(1 << 16)}
            if kind == "vcr_storm":
                args["commands"] = list(rng.choice(_STORMS))
                args["position"] = round(rng.uniform(0.0, 6.0), 2)
            if kind == "net_partition":
                args["duration"] = round(rng.uniform(0.3, 1.5), 2)
            return args
        if kind == "net_loss":
            return {
                "rate": round(rng.uniform(0.02, 0.25), 3),
                "duration": round(rng.uniform(0.5, 2.5), 2),
            }
        if kind == "net_delay":
            return {
                "factor": round(rng.uniform(2.0, 10.0), 1),
                "duration": round(rng.uniform(0.5, 2.5), 2),
            }
        if kind == "disk_slow":
            return {
                "msu": rng.randrange(n_msus),
                "factor": round(rng.uniform(1.5, 4.0), 1),
                "duration": round(rng.uniform(0.5, 2.0), 2),
            }
        if kind == "live_ingest_stall":
            return {
                "channel": rng.randrange(max(1, n_channels)),
                "duration": round(rng.uniform(0.3, 1.5), 2),
            }
        if kind == "surf_storm":
            return {
                "surfers": rng.randrange(2, 6),
                "hops": rng.randrange(1, 3),
                "pick": rng.randrange(1 << 16),
            }
        if kind in (
            "coordinator_crash", "coordinator_restart", "coordinator_failover"
        ):
            return {}
        if kind == "shard_partition":
            # Modulo the configured shard count at apply time, so one
            # plan is valid against any cluster shape.
            return {
                "shard": rng.randrange(16),
                "duration": round(rng.uniform(0.3, 1.5), 2),
            }
        if kind == "bug_double_charge":
            return {}
        raise ValueError(f"unknown fault kind {kind!r}")

    # -- editing (the shrinker works on index sets) -----------------------

    def without(self, indices: Sequence[int]) -> "ChaosSchedule":
        """A copy with the ops at ``indices`` removed."""
        drop = set(indices)
        kept = tuple(op for i, op in enumerate(self.ops) if i not in drop)
        return ChaosSchedule(seed=self.seed, horizon=self.horizon, ops=kept)

    def with_op(self, op: FaultOp) -> "ChaosSchedule":
        """A copy with one extra op, keeping time order."""
        ops = sorted(self.ops + (op,), key=lambda o: (o.at, o.kind))
        return ChaosSchedule(seed=self.seed, horizon=self.horizon, ops=tuple(ops))

    def __len__(self) -> int:
        return len(self.ops)

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "horizon": self.horizon,
            "ops": [op.to_dict() for op in self.ops],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosSchedule":
        return cls(
            seed=int(data["seed"]),
            horizon=float(data["horizon"]),
            ops=tuple(FaultOp.from_dict(op) for op in data["ops"]),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChaosSchedule":
        return cls.from_dict(json.loads(text))
