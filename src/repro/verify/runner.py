"""Execute, shrink, and persist chaos schedules.

A schedule run is a pure function of the schedule (the harness derives
everything else from its seed), so minimization is plain delta
debugging: greedily drop chunks of ops, keep any candidate that still
violates an invariant, and halve the chunk until single ops stick.  The
result is the smallest fault plan this greedy pass can find — typically
one to three ops — written to a replayable JSON repro file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.verify.faults import ChaosSchedule
from repro.verify.harness import ChaosCluster, ChaosConfig, ChaosReport
from repro.verify.invariants import InvariantRegistry

__all__ = [
    "run_schedule", "shrink", "write_repro", "load_repro", "verify_seeds",
]


def run_schedule(
    schedule: ChaosSchedule,
    config: Optional[ChaosConfig] = None,
    registry: Optional[InvariantRegistry] = None,
) -> ChaosReport:
    """Run one schedule on a fresh cluster; report violations found."""
    return ChaosCluster(schedule, config, registry).run()


def shrink(
    schedule: ChaosSchedule,
    config: Optional[ChaosConfig] = None,
    max_runs: int = 80,
) -> Tuple[ChaosSchedule, ChaosReport]:
    """Minimize a failing schedule; returns (smallest plan, its report).

    Uses ddmin-style greedy chunk removal: each pass tries to delete
    windows of ops (halving the window until 1) and keeps any deletion
    that still fails, repeating to a fixpoint or the ``max_runs``
    budget.  A schedule that passes is returned unchanged.
    """
    report = run_schedule(schedule, config)
    runs = 1
    if report.ok:
        return schedule, report
    current, best = schedule, report
    improved = True
    while improved and runs < max_runs:
        improved = False
        chunk = max(1, len(current) // 2)
        while runs < max_runs:
            start = 0
            while start < len(current) and runs < max_runs:
                stop = min(start + chunk, len(current))
                candidate = current.without(range(start, stop))
                runs += 1
                verdict = run_schedule(candidate, config)
                if not verdict.ok:
                    # Keep the deletion; the window now holds fresh ops.
                    current, best = candidate, verdict
                    improved = True
                else:
                    start = stop
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return current, best


def write_repro(
    schedule: ChaosSchedule,
    path: Union[str, Path],
    report: Optional[ChaosReport] = None,
) -> Path:
    """Persist a schedule (plus the violations it provokes) as JSON."""
    payload = schedule.to_dict()
    if report is not None:
        payload["violations"] = [str(v) for v in report.violations]
        payload["stats"] = dict(report.stats)
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_repro(path: Union[str, Path]) -> ChaosSchedule:
    """Load a schedule previously written by :func:`write_repro`."""
    return ChaosSchedule.from_dict(json.loads(Path(path).read_text()))


def verify_seeds(
    seeds: Sequence[int],
    n_ops: int = 50,
    horizon: float = 20.0,
    config: Optional[ChaosConfig] = None,
) -> List[ChaosReport]:
    """Generate-and-run one schedule per seed; one report each."""
    cfg = config or ChaosConfig()
    reports = []
    for seed in seeds:
        schedule = ChaosSchedule.generate(
            seed, n_ops, horizon=horizon,
            n_msus=cfg.n_msus, n_titles=cfg.n_titles,
        )
        reports.append(run_schedule(schedule, cfg))
    return reports
