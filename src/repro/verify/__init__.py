"""Deterministic chaos harness with cross-subsystem invariant checking.

Three pieces, composable but usable alone:

* :mod:`repro.verify.invariants` — an :class:`InvariantRegistry` where
  each subsystem registers machine-checkable safety properties, runnable
  mid-simulation and at drain.
* :mod:`repro.verify.faults` — a seed-deterministic
  :class:`ChaosSchedule`: MSU hangs/crashes/power cycles, network
  loss/partition/delay, disk slowdowns, client churn and VCR storms,
  injected at simulated times through the existing sim engine.
* :mod:`repro.verify.runner` — runs schedules against a full cluster,
  shrinks a failing schedule to a minimal failing plan, and round-trips
  replayable repro files.
"""

from repro.verify.faults import FAULT_KINDS, ChaosSchedule, FaultOp
from repro.verify.harness import ChaosCluster, ChaosConfig, ChaosReport
from repro.verify.invariants import (
    InvariantRegistry,
    Violation,
    builtin_registry,
)
from repro.verify.runner import (
    load_repro,
    run_schedule,
    shrink,
    verify_seeds,
    write_repro,
)

__all__ = [
    "FAULT_KINDS",
    "ChaosCluster",
    "ChaosConfig",
    "ChaosReport",
    "ChaosSchedule",
    "FaultOp",
    "InvariantRegistry",
    "Violation",
    "builtin_registry",
    "load_repro",
    "run_schedule",
    "shrink",
    "verify_seeds",
    "write_repro",
]
